"""A tour of the Section 10 extensions, driven by a text-parsed query.

The paper's future-work section sketches three refinements of the agnostic
model: range constraints on numerical attributes, per-column probability
distributions, and integer-valued columns measured by lattice-point counts.
All three are implemented in :mod:`repro.certainty.extensions`; this script
shows them side by side on one scenario, with the query written in the
plain-text FO(+,·,<) syntax of :mod:`repro.logic.parser`.

Scenario: an order's total ``quantity * price`` must stay within a budget of
1000, but both the quantity and the price of the ordered product are still
unknown (numerical nulls).

Run with::

    python examples/extensions_tour.py
"""

from __future__ import annotations

from repro import Database, DatabaseSchema, NumNull, RelationSchema, translate
from repro.certainty import (
    Range,
    certainty,
    constrained_certainty,
    distributional_certainty,
    lattice_certainty,
)
from repro.logic import parse_query


def build_database() -> Database:
    schema = DatabaseSchema.of(
        RelationSchema.of("Order", id="base", quantity="num"),
        RelationSchema.of("Price", id="base", amount="num"),
    )
    database = Database(schema)
    database.add("Order", ("o1", NumNull("quantity")))
    database.add("Price", ("o1", NumNull("price")))
    return database


def main() -> None:
    database = build_database()
    query = parse_query(
        "within_budget(o: base) := exists q: num, p: num . "
        "Order(o, q) and Price(o, p) and q * p <= 1000 and q >= 0 and p >= 0")
    candidate = ("o1",)

    agnostic = certainty(query, database, candidate, epsilon=0.02, rng=0)
    print("Agnostic (asymptotic) measure -- nothing known about the nulls:")
    print(f"  mu = {agnostic.value:.4f}   ({agnostic.method}, "
          f"{agnostic.relevant_dimension} relevant nulls)")
    print("  Asymptotically the product q*p exceeds any fixed budget almost "
          "surely, so the confidence is low; domain knowledge changes that.")
    print()

    translation = translate(query, database, candidate)
    quantity = NumNull("quantity").variable
    price = NumNull("price").variable

    ranged = constrained_certainty(
        translation,
        {quantity: Range(0.0, 20.0), price: Range(0.0, 100.0)},
        epsilon=0.02, rng=0)
    print("Range constraints (quantity in [0, 20], price in [0, 100]):")
    print(f"  mu = {ranged.value:.4f}")
    print()

    distributional = distributional_certainty(
        translation,
        {quantity: lambda g: g.integers(1, 11),      # 1..10 items
         price: lambda g: g.lognormal(3.0, 0.5)},    # typical price ~20
        epsilon=0.02, rng=0)
    print("Distributions (quantity uniform 1..10, price log-normal around 20):")
    print(f"  mu = {distributional.value:.4f}")
    print()

    lattice = lattice_certainty(translation, radius=50.0, epsilon=0.02, rng=0)
    print("Integer lattice (both nulls integer-valued, radius 50):")
    print(f"  mu = {lattice.value:.4f}")
    print("  (counting lattice points inside a bounded ball keeps mass on "
          "feasible small values, unlike the asymptotic measure)")


if __name__ == "__main__":
    main()
