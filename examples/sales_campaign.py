"""The introduction's sales-campaign example, end to end.

A team of sales analysts wants the market segments where the company will
have a competitive advantage, but the prices of some products and competitors
are still unknown (nulls).  The segment ``s`` is therefore not a *certain*
answer -- yet it is an answer under explicit arithmetic conditions on the
missing values, and the measure of certainty quantifies how likely those
conditions are.  The paper computes the value of its constraint system (1)
as ``(pi/2 - arctan(10/7)) / (2*pi) ≈ 0.097`` (≈ 0.388 of the positive
quadrant); this script reproduces that number and shows the query-level
pipeline producing the measure for the segment.

Run with::

    python examples/sales_campaign.py
"""

from __future__ import annotations

from repro.certainty import afpras_formula_measure, certainty, constrained_certainty, Range
from repro.constraints.translate import translate
from repro.datagen.intro import (
    EXPECTED_MEASURE_FORMULA_1,
    EXPECTED_MEASURE_QUERY,
    EXPECTED_POSITIVE_QUADRANT,
    SEGMENT,
    intro_constraint_formula,
    intro_database,
    intro_query,
)


def main() -> None:
    database = intro_database()
    query = intro_query()

    print("Database:")
    for relation in database:
        for row in relation:
            print(f"  {relation.name}{row}")
    print()

    # 1. The paper's constraint system (1), evaluated directly.
    formula, variables = intro_constraint_formula()
    value, samples = afpras_formula_measure(formula, variables, epsilon=0.01, rng=0)
    print("Constraint system (1) of the paper:  (α' ≥ 0) ∧ (α ≥ 8) ∧ (0.7·α' ≥ α)")
    print(f"  nu ≈ {value:.4f}  (paper: {EXPECTED_MEASURE_FORMULA_1:.4f}, "
          f"≈ {EXPECTED_POSITIVE_QUADRANT:.3f} of the positive quadrant, "
          f"{samples} samples)")
    print()

    # 2. The full query pipeline: translate the FO query and measure the segment.
    result = certainty(query, database, (SEGMENT,), rng=0)
    print("Query-level measure for segment 's' (displayed query, exact backend):")
    print(f"  mu(q, D, (s)) = {result.value:.4f}   "
          f"(query-derived closed form: {EXPECTED_MEASURE_QUERY:.4f}; see EXPERIMENTS.md "
          "for the one-inequality difference from formula (1))")
    print()

    # 3. Section 10 extension: the analysts know both the competitor's price
    #    and the unknown recommended retail price lie in a plausible range.
    translation = translate(query, database, (SEGMENT,))
    names = {null.name: null.variable for null in database.num_nulls_ordered()}
    ranges = {
        names["price"]: Range(lower=0.0, upper=1000.0),
        names["rrp2"]: Range(lower=0.0, upper=1000.0),
    }
    constrained = constrained_certainty(translation, ranges, epsilon=0.02, rng=0)
    print("With range constraints (price, rrp ∈ [0, 1000]):")
    print(f"  mu = {constrained.value:.4f}  "
          "(restricting to plausible bounded ranges raises the confidence "
          "compared with the agnostic asymptotic value)")


if __name__ == "__main__":
    main()
