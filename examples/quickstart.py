"""Quickstart: the measure of certainty on a two-null toy database.

This is the smallest end-to-end use of the library: build an incomplete
database, write a query with arithmetic, and ask how certain a candidate
answer is.  It reproduces the "sigma_{A>B}(R)" example from the paper's
introduction (a single tuple of two nulls should be selected with measure
1/2) and Proposition 6.1's closed form ``1/4 + arctan(alpha)/(2*pi)``.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import math

from repro import Database, DatabaseSchema, NumNull, RelationSchema, certainty
from repro.logic import Query, exists, num_var, rel


def build_database() -> Database:
    """A relation R(A num, B num) holding the single all-null tuple (⊤1, ⊤2)."""
    schema = DatabaseSchema.of(RelationSchema.of("R", a="num", b="num"))
    database = Database(schema)
    database.add("R", (NumNull("1"), NumNull("2")))
    return database


def selection_query() -> Query:
    """The Boolean query "some tuple of R has A > B" (the sigma_{A>B} example)."""
    a, b = num_var("a"), num_var("b")
    return Query(head=(), body=exists([a, b], rel("R", a, b) & (a > b)),
                 name="a_greater_than_b")


def proposition_61_query(alpha: float) -> Query:
    """The query of Proposition 6.1: ∃x,y R(x,y) ∧ x ≥ 0 ∧ y ≤ alpha·x."""
    x, y = num_var("x"), num_var("y")
    body = exists([x, y], rel("R", x, y) & (x >= 0) & (y <= alpha * x))
    return Query(head=(), body=body, name="prop61")


def main() -> None:
    database = build_database()

    result = certainty(selection_query(), database, rng=0)
    print("sigma_{A>B}(R) with two nulls:")
    print(f"  mu = {result.value:.4f}   (method: {result.method}, expected 0.5)")
    print()

    print("Proposition 6.1: mu = 1/4 + arctan(alpha)/(2*pi)")
    for alpha in (0.0, 1.0, 2.0, -1.0):
        result = certainty(proposition_61_query(alpha), database, rng=0)
        expected = 0.25 + math.atan(alpha) / (2 * math.pi)
        rational = "rational" if alpha in (0.0, 1.0, -1.0) else "irrational"
        print(f"  alpha = {alpha:5.1f}:  mu = {result.value:.6f}  "
              f"expected = {expected:.6f}  ({rational})")
    print()

    print("Comparing backends on alpha = 2 (exact vs AFPRAS vs simulation):")
    query = proposition_61_query(2.0)
    for method in ("exact", "afpras", "fpras", "simulate"):
        result = certainty(query, database, method=method, epsilon=0.02, rng=7)
        print(f"  {method:>8}: mu = {result.value:.4f}  ({result.guarantee}, "
              f"{result.samples} samples)")


if __name__ == "__main__":
    main()
