"""A worked network-server session: serve, query, coalesce, stream, drain.

This example runs the whole PR 5 stack inside one process:

1. it generates a small sales database and starts the network server on
   ephemeral ports (the same server ``python -m repro.cli server`` runs);
2. it queries it with the synchronous :class:`repro.client.ReproClient`
   and shows that remote answers equal a local
   :class:`~repro.service.AnnotationService` run bit for bit;
3. it floods the server with concurrent *identical* queries from async
   clients and reads the single-flight coalescing counters off ``stats``;
4. it streams an adaptive request (each tightened interval as it lands);
5. it drains the server gracefully, as SIGTERM would.

Run with::

    PYTHONPATH=src python examples/client_session.py

Equivalent shell session::

    python -m repro.cli generate --out /tmp/sales --products 120 --orders 120
    python -m repro.cli server --data /tmp/sales --backend columnar &
    python -m repro.cli client --port 7464 --sql "SELECT ..." --adaptive
    python -m repro.cli client --port 7464 --probe stats
    kill -TERM %1      # graceful drain, exit 0
"""

from __future__ import annotations

import asyncio

from repro.client import AsyncReproClient, ReproClient
from repro.datagen.experiments import ExperimentScale, generate_sales_database
from repro.server import EmbeddedServer
from repro.service import AnnotationService, ServiceOptions

SQL = "SELECT P.id FROM Products P WHERE P.rrp * P.dis <= 20 LIMIT 5"


def main() -> None:
    scale = ExperimentScale(products=120, orders=120, markets=12,
                            null_rate=0.15)
    database = generate_sales_database(scale, rng=7)
    service = AnnotationService(database, ServiceOptions(epsilon=0.1, seed=0))

    with EmbeddedServer(service, workers=8) as server:
        print(f"server up: tcp={server.host}:{server.port} "
              f"http={server.host}:{server.http_port}")

        # -- remote == local, bit for bit --------------------------------
        local = AnnotationService(
            database, ServiceOptions(epsilon=0.1, seed=0)).submit(SQL)
        with ReproClient(server.host, server.port) as client:
            remote = client.query(SQL)
            assert [a.values for a in remote.answers] == \
                [a.values for a in local.answers]
            assert [a.certainty.value for a in remote.answers] == \
                [a.certainty.value for a in local.answers]
            print(f"remote run equals local run on "
                  f"{len(remote.answers)} answers, e.g. "
                  f"{remote.answers[0].values} at "
                  f"mu={remote.answers[0].certainty.value:.3f}")

        # -- concurrent duplicates coalesce ------------------------------
        flood_sql = "SELECT O.id FROM Orders O WHERE O.q * O.dis >= 1 LIMIT 5"

        async def flood(copies: int) -> None:
            clients = [await AsyncReproClient.connect(server.host, server.port)
                       for _ in range(copies)]
            await asyncio.gather(*[c.query(flood_sql) for c in clients])
            for c in clients:
                await c.close()

        with ReproClient(server.host, server.port) as client:
            before = client.stats()["server"]
        asyncio.run(flood(8))
        with ReproClient(server.host, server.port) as client:
            counters = client.stats()["server"]
        print(f"flooded 8 identical queries: "
              f"{counters['launched'] - before['launched']} launched, "
              f"{counters['coalesced'] - before['coalesced']} coalesced onto "
              f"in-flight work")

        # -- adaptive streaming ------------------------------------------
        with ReproClient(server.host, server.port) as client:
            print("adaptive request, intervals as they tighten:")
            result = client.query(
                "SELECT M.seg FROM Market M WHERE M.rrp >= 20 LIMIT 4",
                epsilon=0.05, adaptive=True, seed=3,
                on_update=lambda u: print(
                    f"  lineage {u.lineage[:8]} stage {u.stage + 1}/{u.stages}"
                    f" mu={u.value:.3f} in [{u.interval[0]:.3f},"
                    f" {u.interval[1]:.3f}] ({u.samples} samples)"))
            print(f"  final: {len(result.answers)} answers")

    print("server drained cleanly")


if __name__ == "__main__":
    main()
