"""The Section 9 decision-support pipeline: SQL in, annotated answers out.

Generates a synthetic sales database (Products / Orders / Market) with nulls,
runs the paper's three decision-support queries through the engine, and
prints each returned tuple with its measure of certainty -- exactly the
information the paper argues an analyst needs to decide whether a result
"based on incomplete information warrants further investigation".

Run with::

    python examples/decision_support.py [scale]

where the optional ``scale`` multiplies the default database size.
"""

from __future__ import annotations

import sys
import time

from repro.datagen.experiments import (
    EXPERIMENT_QUERIES,
    ExperimentScale,
    generate_sales_database,
)
from repro.engine import annotate


def main(scale_factor: float = 1.0) -> None:
    scale = ExperimentScale(
        products=int(2000 * scale_factor),
        orders=int(2000 * scale_factor),
        markets=int(100 * scale_factor) or 1,
        null_rate=0.08,
    )
    print(f"Generating sales database: {scale.total_tuples} tuples, "
          f"null rate {scale.null_rate:.0%} ...")
    database = generate_sales_database(scale, rng=0)
    print(f"  numerical nulls: {len(database.num_nulls())}")
    print()

    for name, sql in EXPERIMENT_QUERIES.items():
        print(f"=== {name} ===")
        print(f"  {sql}")
        start = time.perf_counter()
        answers = annotate(sql, database, epsilon=0.05, rng=0)
        elapsed = time.perf_counter() - start
        print(f"  {len(answers)} candidate answers in {elapsed:.2f}s "
              "(join + AFPRAS at epsilon=0.05)")
        for answer in answers[:10]:
            certain = "certain" if answer.certainty.is_certain() else \
                f"mu ≈ {answer.certainty.value:.2f}"
            values = ", ".join(f"{column}={value!r}"
                               for column, value in answer.as_dict().items())
            print(f"    {values:<40s} {certain:>12s}  "
                  f"({answer.witnesses} witnesses, "
                  f"{answer.certainty.relevant_dimension} relevant nulls)")
        print()


if __name__ == "__main__":
    factor = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    main(factor)
