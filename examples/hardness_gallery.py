"""A gallery of the paper's complexity results, run on small instances.

The negative results of Sections 4 and 6 are usually presented as pure
theory; because this library implements the reductions behind them, they can
be *executed* on small inputs:

* Proposition 4.1 -- certain answers of CQ(+,·,<) queries encode Hilbert's
  tenth problem, while the measure of certainty of the same query is
  trivially 1;
* Proposition 6.1 -- the measure is irrational for most coefficients;
* Proposition 6.2 / Theorem 6.3 -- the measure of a fixed CQ(<) / FO(<)
  query counts satisfying assignments of a propositional formula encoded in
  the data.

Run with::

    python examples/hardness_gallery.py
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.certainty import certainty, exact_order_measure
from repro.constraints.polynomials import Polynomial
from repro.hardness import (
    Literal,
    PropositionalCNF,
    PropositionalDNF,
    cnf_reduction,
    count_satisfying_assignments,
    diophantine_query,
    dnf_reduction,
    has_integer_root_within,
)


def proposition_41() -> None:
    print("=== Proposition 4.1: certainty is undecidable, the measure is not ===")
    x, y = Polynomial.variable("x"), Polynomial.variable("y")
    # p = x^2 - 2 y^2 (no integer roots besides the origin is false: (0,0) is a root)
    pell = x * x - 2 * (y * y)
    # p = x^2 + y^2 - 3 (no integer roots at all)
    no_roots = x * x + y * y - 3
    for label, polynomial in (("x^2 - 2y^2", pell), ("x^2 + y^2 - 3", no_roots)):
        query, database = diophantine_query(polynomial)
        root = has_integer_root_within(polynomial, bound=10)
        measure = certainty(query, database, epsilon=0.05, rng=0)
        print(f"  p = {label:<14s} integer root within [-10,10]^2: {str(root):<5s} "
              f"(certain answer would be {not root});  mu = {measure.value:.3f}")
    print()


def proposition_61() -> None:
    print("=== Proposition 6.1: the measure can be irrational ===")
    from repro import Database, DatabaseSchema, NumNull, RelationSchema
    from repro.logic import Query, exists, num_var, rel

    schema = DatabaseSchema.of(RelationSchema.of("R", x="num", y="num"))
    database = Database(schema)
    database.add("R", (NumNull("1"), NumNull("2")))
    x, y = num_var("x"), num_var("y")
    for alpha in (0.0, 1.0, 0.5, 3.0):
        query = Query(head=(), body=exists([x, y], rel("R", x, y) & (x >= 0) & (y <= alpha * x)))
        value = certainty(query, database, rng=0).value
        closed_form = 0.25 + math.atan(alpha) / (2 * math.pi)
        print(f"  alpha = {alpha:3.1f}:  mu = {value:.6f}  = 1/4 + arctan(alpha)/2pi "
              f"= {closed_form:.6f}")
    print()


def counting_reductions() -> None:
    print("=== Proposition 6.2 / Theorem 6.3: the measure counts models ===")
    dnf = PropositionalDNF(terms=(
        (Literal("x1"), Literal("x2", False)),
        (Literal("x2"), Literal("x3")),
    ))
    reduction = dnf_reduction(dnf)
    expected = Fraction(count_satisfying_assignments(dnf), reduction.denominator)
    # reduction.translation() is the Prop. 5.3 formula built directly; the
    # generic translator would also produce it but expands the fixed query's
    # quantifiers over the whole active domain, which is exponential.
    exact = exact_order_measure(reduction.translation())
    print(f"  3DNF over {len(reduction.variables)} variables: "
          f"#psi / 2^n = {expected}  |  exact measure = {exact}")

    cnf = PropositionalCNF(clauses=(
        (Literal("x1"), Literal("x2")),
        (Literal("x1", False), Literal("x3")),
    ))
    reduction = cnf_reduction(cnf)
    expected = Fraction(count_satisfying_assignments(cnf), reduction.denominator)
    exact = exact_order_measure(reduction.translation())
    print(f"  3CNF over {len(reduction.variables)} variables: "
          f"#psi / 2^n = {expected}  |  exact measure = {exact}")
    print()


def main() -> None:
    proposition_41()
    proposition_61()
    counting_reductions()


if __name__ == "__main__":
    main()
