"""A worked ``repro serve`` session: cached, parallel, adaptive serving.

This example plays both sides of the service layer:

1. it generates a small sales database and drives the ``repro serve`` line
   protocol exactly as a shell user would (the transcript it prints is what
   you would see typing the same lines into ``python -m repro.cli serve``);
2. it then uses :class:`repro.service.AnnotationService` directly to show
   what the CLI wraps: warm-vs-cold timing, canonical-lineage batching,
   bit-identical parallelism, and streamed adaptive refinement.

Run with::

    PYTHONPATH=src python examples/serve_session.py

Equivalent shell session::

    python -m repro.cli generate --out /tmp/sales --products 120 --orders 120
    printf 'SELECT ...\\n\\stats\\n\\quit\\n' | \\
        python -m repro.cli serve --data /tmp/sales --jobs 4 --seed 0
"""

from __future__ import annotations

import io
import sys
import tempfile
import time
from pathlib import Path

from repro.cli import main as repro_main
from repro.datagen.experiments import (
    EXPERIMENT_QUERIES,
    ExperimentScale,
    generate_sales_database,
)
from repro.service import AnnotationService


def drive_the_cli(data_dir: Path) -> None:
    """Feed a scripted session into ``repro serve`` via its stdin protocol."""
    query = EXPERIMENT_QUERIES["competitive_advantage"]  # carries LIMIT 25
    session = "\n".join([
        query,      # cold: parse, plan, sample
        query,      # warm: served from the certainty cache
        "\\stats",  # the cache/amortisation report
        "\\quit",
        "",
    ])
    print("=== repro serve transcript " + "=" * 39)
    stdin = sys.stdin
    try:
        sys.stdin = io.StringIO(session)
        repro_main(["serve", "--data", str(data_dir),
                    "--epsilon", "0.05", "--seed", "0", "--jobs", "2"])
    finally:
        sys.stdin = stdin


def drive_the_service() -> None:
    """The same lifecycle through the library API, with timings."""
    print("\n=== AnnotationService, directly " + "=" * 34)
    scale = ExperimentScale(products=120, orders=120, markets=12, null_rate=0.15)
    database = generate_sales_database(scale, rng=7)
    service = AnnotationService(database, epsilon=0.05, jobs=2)
    sql = EXPERIMENT_QUERIES["competitive_advantage"]

    start = time.perf_counter()
    cold = service.submit(sql, seed=0)
    cold_ms = (time.perf_counter() - start) * 1e3
    start = time.perf_counter()
    warm = service.submit(sql, seed=0)
    warm_ms = (time.perf_counter() - start) * 1e3
    assert [a.certainty.value for a in cold.answers] == \
        [a.certainty.value for a in warm.answers]
    print(f"cold request: {cold_ms:6.2f} ms "
          f"({cold.stats.groups} lineage groups for {cold.stats.candidates} "
          f"answers, {cold.stats.tuples_batched} tuples batched)")
    print(f"warm request: {warm_ms:6.2f} ms "
          f"({warm.stats.groups_from_cache} groups from cache) -> "
          f"{cold_ms / max(warm_ms, 1e-9):.0f}x faster, identical answers")

    serial = AnnotationService(database).submit(sql, seed=3, jobs=1)
    parallel = AnnotationService(database).submit(sql, seed=3, jobs=4)
    identical = [a.certainty.value for a in serial.answers] == \
        [a.certainty.value for a in parallel.answers]
    print(f"jobs=1 vs jobs=4 at seed 3: bit-identical = {identical}")

    print("adaptive refinement per lineage group (epsilon 0.2 -> 0.025):")
    adaptive = AnnotationService(database, adaptive=True)
    seen = set()

    def show(group, update) -> None:
        if group.canonical.digest in seen or update.samples == 0:
            return
        low, high = update.interval
        print(f"  stage {update.stage}: eps={update.epsilon:.3f} "
              f"value={update.value:.3f} interval=[{low:.3f}, {high:.3f}] "
              f"samples={update.samples}{'  <- final' if update.final else ''}")
        if update.final:
            seen.add(group.canonical.digest)

    adaptive.submit(sql, seed=0, epsilon=0.025, on_update=show)
    print("\nservice stats:")
    print(adaptive.stats().report())


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        data_dir = Path(tmp) / "sales"
        repro_main(["generate", "--out", str(data_dir), "--products", "120",
                    "--orders", "120", "--markets", "12",
                    "--null-rate", "0.15", "--seed", "7"])
        drive_the_cli(data_dir)
    drive_the_service()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
