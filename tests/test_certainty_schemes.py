"""Tests for the AFPRAS (Theorem 8.1) and the CQ(+,<) FPRAS (Theorem 7.1)."""

from __future__ import annotations

import math

import pytest

from repro.certainty.afpras import AfprasOptions, afpras_formula_measure, afpras_measure
from repro.certainty.exact import exact_measure
from repro.certainty.fpras import FprasOptions, fpras_measure
from repro.constraints.atoms import Comparison, Constraint
from repro.constraints.formula import And, Atom, Or
from repro.constraints.linear import NonLinearConstraintError
from repro.constraints.polynomials import Polynomial
from repro.constraints.translate import TranslationResult
from repro.geometry.montecarlo import hoeffding_sample_size
from repro.relational.values import NumNull


def var(name: str) -> Polynomial:
    return Polynomial.variable(name)


def make_translation(formula, variables):
    return TranslationResult(
        formula=formula,
        all_variables=tuple(variables),
        relevant_variables=tuple(name for name in variables if name in formula.variables()),
        null_by_variable={name: NumNull(name.removeprefix("z_")) for name in variables},
    )


class TestAfpras:
    def test_sign_constraint_is_half(self):
        formula = Atom(Constraint(var("z_a"), Comparison.GT))
        value, samples = afpras_formula_measure(formula, ("z_a",), epsilon=0.02, rng=0)
        assert value == pytest.approx(0.5, abs=0.03)
        assert samples == hoeffding_sample_size(0.02)

    def test_empty_variable_list_is_exact(self):
        formula = Atom(Constraint(Polynomial.constant(1.0), Comparison.GT))
        value, samples = afpras_formula_measure(formula, (), epsilon=0.1, rng=0)
        assert value == 1.0 and samples == 0

    def test_three_dimensional_orthant(self):
        formula = And(tuple(Atom(Constraint(var(name), Comparison.GT))
                            for name in ("z_a", "z_b", "z_c")))
        value, _ = afpras_formula_measure(formula, ("z_a", "z_b", "z_c"),
                                          epsilon=0.02, rng=1)
        assert value == pytest.approx(1.0 / 8.0, abs=0.03)

    def test_nonlinear_constraint(self):
        # z_a^2 > z_b is eventually true unless z_a = 0 and z_b > 0: measure ~1.
        formula = Atom(Constraint(var("z_a") * var("z_a") - var("z_b"), Comparison.GT))
        value, _ = afpras_formula_measure(formula, ("z_a", "z_b"), epsilon=0.02, rng=2)
        assert value == pytest.approx(1.0, abs=0.02)

    def test_agrees_with_exact_on_planar_cone(self):
        formula = And((Atom(Constraint(var("z_a"), Comparison.GE)),
                       Atom(Constraint(var("z_b") - 0.5 * var("z_a"), Comparison.LE))))
        translation = make_translation(formula, ("z_a", "z_b"))
        exact = exact_measure(translation).value
        approx = afpras_measure(translation, AfprasOptions(epsilon=0.02), rng=3).value
        assert approx == pytest.approx(exact, abs=0.03)

    def test_relevant_only_optimisation_gives_same_value(self):
        formula = Atom(Constraint(var("z_a"), Comparison.GT))
        translation = make_translation(formula, ("z_a", "z_b", "z_c", "z_d"))
        fast = afpras_measure(translation, AfprasOptions(epsilon=0.02, relevant_only=True),
                              rng=4)
        slow = afpras_measure(translation, AfprasOptions(epsilon=0.02, relevant_only=False),
                              rng=4)
        assert fast.value == pytest.approx(slow.value, abs=0.05)
        assert fast.relevant_dimension == 1
        assert fast.dimension == 4

    def test_result_metadata(self):
        formula = Atom(Constraint(var("z_a"), Comparison.GT))
        translation = make_translation(formula, ("z_a",))
        result = afpras_measure(translation, AfprasOptions(epsilon=0.05, delta=0.1), rng=5)
        assert result.method == "afpras"
        assert result.guarantee == "additive"
        assert result.epsilon == 0.05
        assert result.samples == hoeffding_sample_size(0.05, 0.1)


class TestFpras:
    def test_planar_cone_is_exact(self):
        formula = And((Atom(Constraint(var("z_a"), Comparison.GE)),
                       Atom(Constraint(var("z_b"), Comparison.GE))))
        translation = make_translation(formula, ("z_a", "z_b"))
        result = fpras_measure(translation, FprasOptions(epsilon=0.05), rng=0)
        assert result.value == pytest.approx(0.25)
        assert result.guarantee == "exact"

    def test_three_dimensional_union(self):
        orthant = And(tuple(Atom(Constraint(var(name), Comparison.GT))
                            for name in ("z_a", "z_b", "z_c")))
        opposite = And(tuple(Atom(Constraint(var(name), Comparison.LT))
                             for name in ("z_a", "z_b", "z_c")))
        formula = Or((orthant, opposite))
        translation = make_translation(formula, ("z_a", "z_b", "z_c"))
        result = fpras_measure(translation, FprasOptions(epsilon=0.05), rng=1)
        assert result.value == pytest.approx(0.25, abs=0.05)
        assert result.method == "fpras"
        assert result.details["cones"] == 2

    def test_rejects_nonlinear_formula(self):
        formula = Atom(Constraint(var("z_a") * var("z_b"), Comparison.LT))
        translation = make_translation(formula, ("z_a", "z_b"))
        with pytest.raises(NonLinearConstraintError):
            fpras_measure(translation)

    def test_no_variables_is_exact(self):
        formula = Atom(Constraint(Polynomial.constant(1.0), Comparison.LT))
        translation = make_translation(formula, ())
        assert fpras_measure(translation).value == 0.0

    def test_agreement_with_afpras_in_higher_dimension(self):
        formula = And((
            Atom(Constraint(var("z_a") + var("z_b") - var("z_c"), Comparison.LT)),
            Atom(Constraint(var("z_a"), Comparison.GT)),
        ))
        translation = make_translation(formula, ("z_a", "z_b", "z_c"))
        multiplicative = fpras_measure(translation, FprasOptions(epsilon=0.03), rng=2)
        additive = afpras_measure(translation, AfprasOptions(epsilon=0.02), rng=3)
        assert multiplicative.value == pytest.approx(additive.value, abs=0.05)
