"""Tests for the asyncio network server: app logic and end-to-end serving.

The acceptance-critical properties all live here:

* concurrent clients get answers **bit-identical** to serial execution
  through :class:`AnnotationService` (values, certainties, lineage
  digests);
* duplicate in-flight queries are **coalesced** -- identical payloads,
  exactly one computation, exactly one certainty-cache fill -- and the
  ``/stats`` single-flight counters prove it;
* overload produces the **typed backpressure error** instead of hanging;
* **drain** delivers every in-flight response before shutdown.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.client import (
    AsyncReproClient,
    OverloadedError,
    ReproClient,
    ServerError,
)
from repro.datagen.experiments import ExperimentScale, generate_sales_database
from repro.server import EmbeddedServer, ServerApp
from repro.service import AnnotationService, ServiceOptions


@pytest.fixture(scope="module")
def database():
    scale = ExperimentScale(products=40, orders=40, markets=8, null_rate=0.25)
    return generate_sales_database(scale, rng=3)


def make_service(database, **overrides) -> AnnotationService:
    defaults = dict(epsilon=0.1, seed=5)
    defaults.update(overrides)
    return AnnotationService(database, ServiceOptions(**defaults))


class GatedService:
    """Wrap a service so ``submit`` blocks until the test opens the gate.

    Turns timing-dependent concurrency assertions into deterministic ones:
    while the gate is closed the leader computation cannot finish, so any
    request arriving meanwhile *must* coalesce (or be rejected, for the
    overload tests).
    """

    def __init__(self, inner: AnnotationService) -> None:
        self.inner = inner
        self.gate = threading.Event()
        self.calls = 0

    @property
    def options(self):
        return self.inner.options

    def submit(self, *args, **kwargs):
        self.calls += 1
        assert self.gate.wait(30), "test gate never opened"
        return self.inner.submit(*args, **kwargs)

    def stats(self):
        return self.inner.stats()


SQL = "SELECT P.id FROM Products P WHERE P.rrp * P.dis <= 20 LIMIT 8"
OTHER_SQL = "SELECT O.id FROM Orders O WHERE O.q * O.dis >= 1 LIMIT 8"


async def _collect(app: ServerApp, message: dict) -> list[dict]:
    return [event async for event in app.query_events(message)]


class TestServerApp:
    """Transport-free unit tests driving ``query_events`` directly."""

    def test_terminal_result_event(self, database):
        app = ServerApp(make_service(database))
        events = asyncio.run(_collect(app, {"sql": SQL}))
        try:
            assert events[-1]["type"] == "result"
            assert events[-1]["answers"]
            assert all(answer["lineage"] for answer in events[-1]["answers"])
        finally:
            app.close()

    def test_bad_option_is_typed_error(self, database):
        app = ServerApp(make_service(database))
        events = asyncio.run(_collect(app, {"sql": SQL,
                                            "options": {"epsilon": 5}}))
        app.close()
        assert events == [{"id": None, "type": "error", "code": "bad_request",
                           "message": events[0]["message"]}]

    def test_invalid_sql_is_typed_error(self, database):
        app = ServerApp(make_service(database))
        events = asyncio.run(_collect(app, {"sql": "SELEC nonsense"}))
        app.close()
        assert events[-1]["type"] == "error"
        assert events[-1]["code"] == "invalid_query"

    def test_internal_failure_is_typed_error(self, database):
        class Exploding(GatedService):
            def submit(self, *args, **kwargs):
                raise RuntimeError("boom")

        app = ServerApp(Exploding(make_service(database)))
        events = asyncio.run(_collect(app, {"sql": SQL}))
        app.close()
        assert events[-1]["code"] == "internal"
        assert "boom" in events[-1]["message"]

    def test_draining_rejects_new_queries(self, database):
        app = ServerApp(make_service(database))

        async def scenario():
            app.begin_drain()
            return [event async for event in app.query_events({"sql": SQL})]

        events = asyncio.run(scenario())
        app.close()
        assert events[-1]["code"] == "draining"

    def test_overload_is_typed_and_immediate(self, database):
        gated = GatedService(make_service(database))
        app = ServerApp(gated, max_pending=1)

        async def scenario():
            first = asyncio.ensure_future(_collect(app, {"sql": SQL}))
            await asyncio.sleep(0)  # let the leader register its flight
            rejected = await _collect(app, {"sql": OTHER_SQL})
            gated.gate.set()
            completed = await first
            return rejected, completed

        rejected, completed = asyncio.run(scenario())
        app.close()
        assert rejected[-1]["code"] == "overloaded"
        assert completed[-1]["type"] == "result"
        assert app.stats()["server"]["overloads"] == 1


class TestCoalescing:
    def test_duplicates_share_one_computation_and_one_cache_fill(self, database):
        """The acceptance criterion, made deterministic by the gate."""
        gated = GatedService(make_service(database))
        results: list = []
        with EmbeddedServer(gated, workers=4) as server:
            def issue():
                with ReproClient(server.host, server.port) as client:
                    results.append(client.query(SQL))

            threads = [threading.Thread(target=issue) for _ in range(4)]
            for thread in threads:
                thread.start()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                counters = server.app.stats()["server"]
                if counters["requests"] >= 4:
                    break
                time.sleep(0.01)
            counters = server.app.stats()["server"]
            assert counters["launched"] == 1, counters
            assert counters["coalesced"] == 3, counters
            gated.gate.set()
            for thread in threads:
                thread.join(timeout=30)

        assert len(results) == 4
        assert gated.calls == 1, "duplicates must share one submit"
        payloads = [dict(result.raw, id=None) for result in results]
        assert all(payload == payloads[0] for payload in payloads), \
            "coalesced duplicates must receive identical payloads"

        stats = gated.inner.stats()
        groups = results[0].stats["groups"]
        assert stats.estimates_computed == groups, \
            "exactly one computation per lineage group"
        certainty = next(cache for cache in stats.caches
                         if cache.name == "certainty")
        assert certainty.misses == groups, "exactly one cache miss per group"
        assert certainty.size == groups, "exactly one cache fill per group"

    def test_distinct_queries_do_not_coalesce(self, database):
        service = make_service(database)
        with EmbeddedServer(service) as server:
            with ReproClient(server.host, server.port) as client:
                client.query(SQL)
                client.query(OTHER_SQL)
            counters = server.app.stats()["server"]
        assert counters["launched"] == 2
        assert counters["coalesced"] == 0

    def test_concurrent_submits_share_estimates_across_texts(self, database):
        """The service-level single-flight, keyed by lineage digest."""
        service = make_service(database, epsilon=0.05)
        original = AnnotationService._estimate
        first_call = threading.Event()

        def slow_estimate(self, *args, **kwargs):
            if not first_call.is_set():
                first_call.set()
                time.sleep(0.8)  # hold the first group so the peer overlaps
            return original(self, *args, **kwargs)

        barrier = threading.Barrier(2)
        responses = []

        def submit():
            barrier.wait()
            responses.append(service.submit(SQL))

        try:
            AnnotationService._estimate = slow_estimate
            threads = [threading.Thread(target=submit) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        finally:
            AnnotationService._estimate = original

        groups = responses[0].stats.groups
        stats = service.stats()
        # However the two submits interleaved, each canonical lineage was
        # estimated exactly once across both.
        assert stats.estimates_computed == groups
        assert stats.estimates_reused == groups
        assert stats.single_flight.joins >= 1, \
            "the overlapping group must join the in-flight estimate"
        first = [(a.values, a.certainty.value) for a in responses[0].answers]
        second = [(a.values, a.certainty.value) for a in responses[1].answers]
        assert first == second


class TestConcurrentDeterminism:
    """Satellite: interleaved concurrent serving == serial local execution."""

    def test_async_clients_match_serial_service_bit_for_bit(self, database):
        import sys
        from pathlib import Path
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))
        from loadgen import build_workload

        workload = build_workload(seed=11, size=24, adaptive_share=0.2)

        # Serial reference: the same seeded workload through a fresh local
        # service, one request at a time.
        reference = make_service(database)
        expected = []
        for request in workload:
            options = dict(request["options"])
            response = reference.submit(request["sql"], **options)
            expected.append([
                (answer.values, answer.certainty.value,
                 answer.certainty.epsilon, answer.certainty.samples,
                 answer.lineage_digest)
                for answer in response.answers])

        service = make_service(database)
        with EmbeddedServer(service, workers=8) as server:
            async def drive():
                clients = [await AsyncReproClient.connect(server.host,
                                                          server.port)
                           for _ in range(8)]
                # Interleave: client k takes requests k, k+8, k+16, ...
                async def run_share(client, start):
                    outcomes = []
                    for index in range(start, len(workload), len(clients)):
                        request = workload[index]
                        result = await client.query(request["sql"],
                                                    **request["options"])
                        outcomes.append((index, result))
                    return outcomes

                shares = await asyncio.gather(*[
                    run_share(client, start)
                    for start, client in enumerate(clients)])
                for client in clients:
                    await client.close()
                merged = {}
                for share in shares:
                    for index, result in share:
                        merged[index] = result
                return merged

            served = asyncio.run(drive())

        assert len(served) == len(workload)
        for index in range(len(workload)):
            got = [(answer.values, answer.certainty.value,
                    answer.certainty.epsilon, answer.certainty.samples,
                    answer.lineage_digest)
                   for answer in served[index].answers]
            assert got == expected[index], \
                f"request {index} diverged: {workload[index]['sql']}"


class TestAdaptiveStreaming:
    def test_updates_stream_before_result_and_tighten(self, database):
        service = make_service(database)
        with EmbeddedServer(service) as server:
            with ReproClient(server.host, server.port) as client:
                events = list(client.stream(
                    "SELECT P.id FROM Products P WHERE P.rrp <= 40 LIMIT 3",
                    epsilon=0.05, adaptive=True, seed=5))
        updates, result = events[:-1], events[-1]
        assert updates, "adaptive serving must stream refinements"
        by_lineage: dict = {}
        for update in updates:
            if update.lineage in by_lineage:
                previous = by_lineage[update.lineage]
                assert update.interval[0] >= previous.interval[0] - 1e-12
                assert update.interval[1] <= previous.interval[1] + 1e-12
                assert update.stage == previous.stage + 1
            by_lineage[update.lineage] = update
        answer_lineages = {answer.lineage_digest.hex()
                           for answer in result.answers}
        assert set(by_lineage) <= answer_lineages

    def test_followers_replay_streamed_history(self, database):
        """A coalesced follower sees the leader's updates, not a bare result."""
        gated = GatedService(make_service(database))
        sql = "SELECT P.id FROM Products P WHERE P.rrp <= 40 LIMIT 3"
        streams: list = []
        with EmbeddedServer(gated, workers=4) as server:
            def issue():
                with ReproClient(server.host, server.port) as client:
                    streams.append(list(client.stream(
                        sql, epsilon=0.05, adaptive=True)))

            threads = [threading.Thread(target=issue) for _ in range(3)]
            for thread in threads:
                thread.start()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if server.app.stats()["server"]["requests"] >= 3:
                    break
                time.sleep(0.01)
            gated.gate.set()
            for thread in threads:
                thread.join(timeout=30)
        assert len(streams) == 3
        shapes = [[type(event).__name__ for event in stream]
                  for stream in streams]
        assert shapes[0] == shapes[1] == shapes[2]
        assert len(streams[0]) > 1, "streams must include update events"


class TestDrain:
    def test_drain_delivers_in_flight_responses(self, database):
        service = make_service(database)
        server = EmbeddedServer(service, workers=2).start()
        outcome: dict = {}

        def run_query():
            with ReproClient(server.host, server.port) as client:
                outcome["result"] = client.query(SQL, epsilon=0.001, seed=4)

        thread = threading.Thread(target=run_query)
        thread.start()
        time.sleep(0.15)  # give the query time to get in flight
        clean = server.stop()
        thread.join(timeout=30)
        assert clean, "drain must finish inside the timeout"
        assert outcome["result"].answers, \
            "the in-flight response must be delivered before shutdown"

    def test_drain_with_idle_connections_is_clean(self, database):
        service = make_service(database)
        server = EmbeddedServer(service).start()
        client = ReproClient(server.host, server.port)
        assert client.ping()
        assert server.stop()
        client.close()

    def test_drain_timeout_is_a_real_bound(self, database):
        """Regression: a wedged flight must not keep drain (and the
        process) alive past ``drain_timeout`` -- stuck connection handlers
        are cancelled and ``drain`` reports unclean instead of hanging."""
        from repro.server import NetworkServer
        from repro.server.protocol import dump_line

        gated = GatedService(make_service(database))

        async def scenario() -> tuple[bool, float]:
            server = NetworkServer(gated, port=0, http_port=None,
                                   drain_timeout=0.3)
            await server.start()
            reader, writer = await asyncio.open_connection(server.host,
                                                           server.port)
            writer.write(dump_line({"op": "query", "id": 1, "sql": SQL}))
            await writer.drain()
            deadline = time.monotonic() + 10
            while server.app.stats()["server"]["active"] < 1:
                assert time.monotonic() < deadline, "flight never started"
                await asyncio.sleep(0.01)
            started = time.monotonic()
            clean = await server.drain()
            elapsed = time.monotonic() - started
            writer.close()
            # Unblock the worker and let its flight land before the loop
            # closes, so the executor thread does not outlive the test.
            gated.gate.set()
            await server.app.wait_idle(30)
            return clean, elapsed

        clean, elapsed = asyncio.run(scenario())
        assert clean is False, "a wedged flight cannot drain cleanly"
        assert elapsed < 5.0, f"drain took {elapsed:.1f}s despite the bound"


class TestHttpAdapter:
    @pytest.fixture()
    def server(self, database):
        with EmbeddedServer(make_service(database)) as server:
            yield server

    def _base(self, server) -> str:
        return f"http://{server.host}:{server.http_port}"

    def test_healthz(self, server):
        payload = json.loads(
            urllib.request.urlopen(self._base(server) + "/healthz").read())
        assert payload["status"] == "ok"
        assert payload["max_pending"] == 64

    def test_stats_exposes_single_flight_counters(self, server):
        payload = json.loads(
            urllib.request.urlopen(self._base(server) + "/stats").read())
        assert "coalesced" in payload["server"]
        assert payload["service"]["single_flight"]["name"] == "estimate flights"

    def test_post_query_result_matches_tcp(self, server):
        request = urllib.request.Request(
            self._base(server) + "/query",
            data=json.dumps({"sql": SQL}).encode(),
            headers={"Content-Type": "application/json"})
        body = json.loads(urllib.request.urlopen(request).read())
        assert body["type"] == "result"
        with ReproClient(server.host, server.port) as client:
            tcp = client.query(SQL)
        assert body["answers"] == [dict(raw) for raw in tcp.raw["answers"]]

    def test_post_query_streaming_ndjson(self, server):
        request = urllib.request.Request(
            self._base(server) + "/query",
            data=json.dumps({
                "sql": "SELECT P.id FROM Products P WHERE P.rrp <= 40 LIMIT 3",
                "options": {"adaptive": True, "epsilon": 0.05},
                "stream": True}).encode(),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request) as response:
            assert response.headers["Content-Type"] == "application/x-ndjson"
            events = [json.loads(line) for line in response.read().splitlines()]
        assert events[-1]["type"] == "result"
        assert any(event["type"] == "update" for event in events)

    def test_bad_sql_maps_to_400(self, server):
        request = urllib.request.Request(
            self._base(server) + "/query",
            data=json.dumps({"sql": "SELEC nonsense"}).encode(),
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["code"] == "invalid_query"

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(self._base(server) + "/nope")
        assert excinfo.value.code == 404

    def test_overload_maps_to_503(self, database):
        gated = GatedService(make_service(database))
        with EmbeddedServer(gated, max_pending=1, workers=1) as server:
            def leader():
                with ReproClient(server.host, server.port) as client:
                    client.query(SQL)

            thread = threading.Thread(target=leader)
            thread.start()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if server.app.stats()["server"]["active"] >= 1:
                    break
                time.sleep(0.01)
            request = urllib.request.Request(
                f"http://{server.host}:{server.http_port}/query",
                data=json.dumps({"sql": OTHER_SQL}).encode(),
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 503
            assert json.loads(excinfo.value.read())["code"] == "overloaded"
            gated.gate.set()
            thread.join(timeout=30)


class TestWireRobustness:
    def test_garbage_line_gets_error_and_connection_survives(self, database):
        service = make_service(database)
        with EmbeddedServer(service) as server:
            import socket
            with socket.create_connection((server.host, server.port),
                                          timeout=10) as sock:
                stream = sock.makefile("rwb")
                stream.write(b"this is not json\n")
                stream.flush()
                reply = json.loads(stream.readline())
                assert reply["type"] == "error"
                assert reply["code"] == "bad_request"
                stream.write(b'{"op": "ping", "id": 1}\n')
                stream.flush()
                assert json.loads(stream.readline())["type"] == "pong"

    def test_unknown_op_is_rejected(self, database):
        service = make_service(database)
        with EmbeddedServer(service) as server:
            import socket
            with socket.create_connection((server.host, server.port),
                                          timeout=10) as sock:
                stream = sock.makefile("rwb")
                stream.write(b'{"op": "teleport", "id": 9}\n')
                stream.flush()
                reply = json.loads(stream.readline())
                assert reply == {"id": 9, "type": "error",
                                 "code": "bad_request",
                                 "message": "unknown op 'teleport'"}

    def test_typed_overload_error_reaches_sync_client(self, database):
        gated = GatedService(make_service(database))
        with EmbeddedServer(gated, max_pending=1, workers=1) as server:
            def leader():
                with ReproClient(server.host, server.port) as client:
                    client.query(SQL)

            thread = threading.Thread(target=leader)
            thread.start()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if server.app.stats()["server"]["active"] >= 1:
                    break
                time.sleep(0.01)
            with ReproClient(server.host, server.port) as client:
                with pytest.raises(OverloadedError):
                    client.query(OTHER_SQL)
            gated.gate.set()
            thread.join(timeout=30)

    def test_server_error_carries_code(self, database):
        service = make_service(database)
        with EmbeddedServer(service) as server:
            with ReproClient(server.host, server.port) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.query("SELECT P.bogus FROM Products P")
        assert excinfo.value.code == "invalid_query"
        assert "bogus" in excinfo.value.message
