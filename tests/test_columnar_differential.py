"""Property-based differential harness: columnar engine vs the row oracle.

The vectorized columnar engine (:mod:`repro.engine.vectorized`) promises to
be *observationally identical* to the row-at-a-time reference path of
:mod:`repro.engine.candidates`: same candidate tuples, in the same
first-witness order, with the same witness counts and the same lineage
formulas -- and therefore bit-identical annotated probabilities at a fixed
seed, because the Monte-Carlo streams are keyed by the canonical lineage
digest.

This harness generates hundreds of random (schema, data, query) cases
through :mod:`repro.datagen` -- random table shapes, shared key pools so
joins actually hit, random null rates, random conjunctive queries with
arithmetic, division, base filters, LIMIT and both witness semantics -- and
checks every one of those promises case by case.  Set the
``REPRO_DIFFERENTIAL_CASES`` environment variable to scale the case count
(the nightly CI profile job runs 10x the default).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.certainty.measure import certainty_from_translation
from repro.datagen.generic import ColumnSpec, TableSpec, generate_database
from repro.engine.candidates import enumerate_candidates
from repro.engine.sql.parser import parse_sql
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.service.canonical import canonicalise_lineage

#: Default number of random (schema, data, query) cases; the acceptance
#: criterion requires at least 200 per run.
DEFAULT_CASES = 200

CASES = int(os.environ.get("REPRO_DIFFERENTIAL_CASES", DEFAULT_CASES))

BASE_POOL = ("red", "green", "blue", "amber")
NULL_RATES = (0.0, 0.1, 0.35)
OPERATORS = ("=", "<>", "<", "<=", ">", ">=")


def _random_case(rng: np.random.Generator):
    """One random (schema, specs, sql, limit, group_witnesses) case."""
    table_count = int(rng.integers(1, 4))
    relation_schemas = []
    specs = {}
    key_pool = tuple(f"k{i}" for i in range(int(rng.integers(2, 8))))
    for table_index in range(table_count):
        numeric_count = int(rng.integers(1, 4))
        columns = {"key": "base"}
        if rng.random() < 0.4:
            columns["tag"] = "base"
        for numeric_index in range(numeric_count):
            columns[f"x{numeric_index}"] = "num"
        relation_schema = RelationSchema.of(f"T{table_index}", **columns)
        relation_schemas.append(relation_schema)
        column_specs = {}
        for attribute in relation_schema.attributes:
            null_rate = float(rng.choice(NULL_RATES))
            if attribute.name == "key":
                column_specs["key"] = ColumnSpec(
                    choices=key_pool, null_rate=min(null_rate, 0.1))
            elif attribute.name == "tag":
                column_specs["tag"] = ColumnSpec(choices=BASE_POOL,
                                                 null_rate=null_rate)
            else:
                low = float(rng.uniform(-5.0, 0.0))
                column_specs[attribute.name] = ColumnSpec(
                    uniform=(low, low + float(rng.uniform(1.0, 10.0))),
                    null_rate=null_rate)
        specs[relation_schema.name] = TableSpec(
            rows=int(rng.integers(2, 26)), columns=column_specs)
    schema = DatabaseSchema.of(*relation_schemas)

    # -- query over a random subset of the tables ---------------------------
    query_tables = list(rng.permutation(table_count))[:int(rng.integers(1, table_count + 1))]
    bindings = [chr(ord("A") + position) for position in range(len(query_tables))]
    from_clause = ", ".join(f"T{table} {binding}"
                            for table, binding in zip(query_tables, bindings))
    conditions = []
    for position in range(1, len(bindings)):
        if rng.random() < 0.85:
            other = bindings[int(rng.integers(0, position))]
            conditions.append(f"{other}.key = {bindings[position]}.key")

    def numeric_column(binding_index: int) -> str:
        table_schema = relation_schemas[query_tables[binding_index]]
        names = [attribute.name for attribute in table_schema.attributes
                 if attribute.is_numeric]
        return f"{bindings[binding_index]}.{rng.choice(names)}"

    for _ in range(int(rng.integers(0, 4))):
        operator = str(rng.choice(OPERATORS))
        kind = rng.random()
        left_binding = int(rng.integers(0, len(bindings)))
        if kind < 0.3:  # column vs literal
            literal = f"{float(rng.uniform(-5.0, 5.0)):.3f}"
            conditions.append(f"{numeric_column(left_binding)} {operator} {literal}")
        elif kind < 0.55:  # column vs column
            right_binding = int(rng.integers(0, len(bindings)))
            conditions.append(
                f"{numeric_column(left_binding)} {operator} {numeric_column(right_binding)}")
        elif kind < 0.75:  # arithmetic
            right_binding = int(rng.integers(0, len(bindings)))
            arithmetic = str(rng.choice(("+", "-", "*")))
            literal = f"{float(rng.uniform(-3.0, 3.0)):.3f}"
            conditions.append(
                f"{numeric_column(left_binding)} {arithmetic} "
                f"{numeric_column(right_binding)} {operator} {literal}")
        elif kind < 0.9:  # division (exercises the denominator case split)
            right_binding = int(rng.integers(0, len(bindings)))
            literal = f"{float(rng.uniform(-2.0, 2.0)):.3f}"
            conditions.append(
                f"{numeric_column(left_binding)} / "
                f"{numeric_column(right_binding)} {operator} {literal}")
        else:  # base filter
            value = str(rng.choice(BASE_POOL + key_pool))
            base_operator = "=" if rng.random() < 0.5 else "<>"
            conditions.append(f"{bindings[left_binding]}.key {base_operator} '{value}'")

    if rng.random() < 0.5:
        projected = f"{bindings[0]}.key"
        if len(bindings) > 1 and rng.random() < 0.5:
            projected += f", {numeric_column(len(bindings) - 1)}"
        select_clause = projected
    else:
        select_clause = "*"
    sql = f"SELECT {select_clause} FROM {from_clause}"
    if conditions:
        sql += " WHERE " + " AND ".join(conditions)
    limit = None
    if rng.random() < 0.3:
        limit = int(rng.integers(1, 8))
        sql += f" LIMIT {limit}"
    group_witnesses = bool(rng.random() < 0.7)
    return schema, specs, sql, group_witnesses


def _assert_case_equal(case_index: int, sql: str, reference, columnar) -> None:
    context = f"case {case_index}: {sql!r}"
    assert len(reference) == len(columnar), context
    for expected, actual in zip(reference, columnar):
        assert expected.values == actual.values, context
        assert expected.columns == actual.columns, context
        assert expected.witnesses == actual.witnesses, context
        # Strong form: the very same formula object graph ...
        assert expected.lineage.formula == actual.lineage.formula, context
        assert expected.lineage.relevant_variables == \
            actual.lineage.relevant_variables, context
        # ... and the acceptance-criterion form: equal canonical lineage.
        assert canonicalise_lineage(expected.lineage).digest == \
            canonicalise_lineage(actual.lineage).digest, context


class TestColumnarDifferential:
    def test_random_cases_agree(self):
        """Candidates, order, witnesses and lineage agree on random cases.

        Every case also runs the columnar engine under a random shard count
        (1 keeps the unsharded path in rotation), so the sharded partition/
        merge machinery faces the same random schemas, null rates, LIMITs
        and witness semantics as the engines themselves.
        """
        rng = np.random.default_rng(20200614)
        annotated = 0
        for case_index in range(CASES):
            schema, specs, sql, group_witnesses = _random_case(rng)
            seed = int(rng.integers(0, 2**31))
            shards = int(rng.choice((1, 2, 3, 5, 16)))
            database = generate_database(schema, specs, rng=seed)
            columnar_database = database.with_backend("columnar")
            select = parse_sql(sql)
            # The witness cap keeps pathological cartesian cases bounded; it
            # is part of the contract under test, so both engines get it.
            reference = enumerate_candidates(select, database,
                                             group_witnesses=group_witnesses,
                                             max_witnesses=4000)
            columnar = enumerate_candidates(select, columnar_database,
                                            group_witnesses=group_witnesses,
                                            max_witnesses=4000,
                                            shards=shards)
            _assert_case_equal(case_index, sql, reference, columnar)

            # Bit-identical probabilities: the estimate is a pure function of
            # (canonical lineage digest, seed, epsilon, method), so equal
            # lineage must annotate to the exact same float.  Sampled on the
            # low-dimensional candidates to keep the harness fast.
            for expected, actual in zip(reference, columnar):
                if annotated >= 4 * (case_index + 1):
                    break
                if len(expected.lineage.relevant_variables) > 3:
                    continue
                first = certainty_from_translation(
                    expected.lineage, epsilon=0.3, method="afpras", rng=seed)
                second = certainty_from_translation(
                    actual.lineage, epsilon=0.3, method="afpras", rng=seed)
                assert first.value == second.value, f"case {case_index}: {sql!r}"
                annotated += 1
        assert annotated > 0

    def test_case_count_meets_floor(self):
        """Default and nightly runs cover the acceptance criterion's 200 cases.

        ``REPRO_DIFFERENTIAL_CASES`` exists so developers can scale the
        harness *down* for fast local iteration too; a deliberately reduced
        run skips the floor check instead of going red.
        """
        if "REPRO_DIFFERENTIAL_CASES" in os.environ and CASES < 200:
            pytest.skip(f"case count deliberately scaled down to {CASES}")
        assert CASES >= 200

    def test_generated_columnar_database_round_trips(self):
        """Columnar generation -> rows -> columnar preserves content."""
        rng = np.random.default_rng(7)
        schema, specs, _, _ = _random_case(rng)
        database = generate_database(schema, specs, rng=3, backend="columnar")
        assert database.backend == "columnar"
        rows = database.with_backend("rows")
        back = rows.with_backend("columnar")
        for name in database.relation_names():
            assert database.relation(name).tuples() == back.relation(name).tuples()
        assert database.num_nulls() == rows.num_nulls() == back.num_nulls()
        assert database.base_constants() == rows.base_constants()
        assert database.num_constants() == rows.num_constants()

    @pytest.mark.parametrize("group_witnesses", [True, False])
    def test_bag_and_set_limits_agree(self, group_witnesses):
        """LIMIT truncation picks the same prefix under both backends."""
        rng = np.random.default_rng(99)
        for _ in range(10):
            schema, specs, sql, _ = _random_case(rng)
            database = generate_database(schema, specs, rng=11)
            columnar_database = database.with_backend("columnar")
            select = parse_sql(sql)
            for limit in (1, 3):
                reference = enumerate_candidates(
                    select, database, limit=limit, group_witnesses=group_witnesses)
                columnar = enumerate_candidates(
                    select, columnar_database, limit=limit,
                    group_witnesses=group_witnesses)
                _assert_case_equal(-1, sql, reference, columnar)

    def test_max_witnesses_cap_agrees(self):
        """The witness cap truncates the same DFS prefix on both engines."""
        rng = np.random.default_rng(123)
        for _ in range(10):
            schema, specs, sql, group_witnesses = _random_case(rng)
            shards = int(rng.choice((1, 2, 4)))
            database = generate_database(schema, specs, rng=5)
            columnar_database = database.with_backend("columnar")
            select = parse_sql(sql)
            for cap in (1, 7, 50):
                reference = enumerate_candidates(
                    select, database, max_witnesses=cap,
                    group_witnesses=group_witnesses)
                columnar = enumerate_candidates(
                    select, columnar_database, max_witnesses=cap,
                    group_witnesses=group_witnesses, shards=shards)
                _assert_case_equal(-1, sql, reference, columnar)
