"""Tests for ball volumes and uniform sampling."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.ball import (
    as_generator,
    ball_volume,
    sample_ball,
    sample_direction,
    sample_sphere,
    sphere_area,
)


class TestBallVolume:
    def test_low_dimensions_match_closed_forms(self):
        assert ball_volume(0) == 1.0
        assert ball_volume(1) == pytest.approx(2.0)
        assert ball_volume(2) == pytest.approx(math.pi)
        assert ball_volume(3) == pytest.approx(4.0 / 3.0 * math.pi)

    def test_radius_scaling(self):
        assert ball_volume(2, radius=3.0) == pytest.approx(9.0 * math.pi)
        assert ball_volume(3, radius=2.0) == pytest.approx(8.0 * ball_volume(3))

    def test_zero_dimension_ignores_radius(self):
        assert ball_volume(0, radius=17.0) == 1.0

    def test_rejects_negative_dimension_and_radius(self):
        with pytest.raises(ValueError):
            ball_volume(-1)
        with pytest.raises(ValueError):
            ball_volume(2, radius=-0.5)

    def test_recurrence_v_n_equals_v_n_minus_2_times_2pi_over_n(self):
        for dimension in range(3, 12):
            expected = ball_volume(dimension - 2) * 2.0 * math.pi / dimension
            assert ball_volume(dimension) == pytest.approx(expected)

    def test_sphere_area_is_derivative_of_volume(self):
        for dimension in range(1, 8):
            assert sphere_area(dimension) == pytest.approx(dimension * ball_volume(dimension))

    @given(st.integers(min_value=1, max_value=30), st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=50, deadline=None)
    def test_volume_positive_and_monotone_in_radius(self, dimension, radius):
        assert ball_volume(dimension, radius) > 0
        assert ball_volume(dimension, radius * 1.5) > ball_volume(dimension, radius)


class TestSampling:
    def test_sphere_samples_have_unit_norm(self, rng):
        points = sample_sphere(5, rng, size=200)
        norms = np.linalg.norm(points, axis=1)
        assert np.allclose(norms, 1.0)

    def test_ball_samples_are_inside(self, rng):
        points = sample_ball(4, rng, size=500)
        norms = np.linalg.norm(points, axis=1)
        assert np.all(norms <= 1.0 + 1e-12)

    def test_ball_radius_scaling(self, rng):
        points = sample_ball(3, rng, size=200, radius=5.0)
        assert np.all(np.linalg.norm(points, axis=1) <= 5.0 + 1e-9)
        assert np.any(np.linalg.norm(points, axis=1) > 1.0)

    def test_single_sample_shapes(self, rng):
        assert sample_sphere(3, rng).shape == (3,)
        assert sample_ball(3, rng).shape == (3,)
        assert sample_direction(2, rng).shape == (2,)

    def test_sampling_is_reproducible_with_seed(self):
        first = sample_sphere(4, 42, size=10)
        second = sample_sphere(4, 42, size=10)
        assert np.allclose(first, second)

    def test_sphere_mean_is_near_zero(self):
        points = sample_sphere(3, 0, size=4000)
        assert np.allclose(points.mean(axis=0), 0.0, atol=0.05)

    def test_ball_fraction_in_halfspace_is_half(self):
        points = sample_ball(3, 1, size=4000)
        fraction = float((points[:, 0] > 0).mean())
        assert fraction == pytest.approx(0.5, abs=0.03)

    def test_invalid_dimension_rejected(self):
        with pytest.raises(ValueError):
            sample_sphere(0)
        with pytest.raises(ValueError):
            sample_ball(0)

    def test_as_generator_accepts_seed_generator_and_none(self):
        assert isinstance(as_generator(None), np.random.Generator)
        assert isinstance(as_generator(3), np.random.Generator)
        generator = np.random.default_rng(1)
        assert as_generator(generator) is generator
