"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import main


@pytest.fixture
def data_dir(tmp_path, capsys):
    """A small generated sales database on disk."""
    directory = tmp_path / "data"
    main(["generate", "--out", str(directory), "--products", "30",
          "--orders", "30", "--markets", "6", "--null-rate", "0.2", "--seed", "1"])
    capsys.readouterr()
    return directory


class TestCli:
    def test_generate_then_annotate_named_query(self, tmp_path, capsys):
        data_dir = tmp_path / "data"
        exit_code = main(["generate", "--out", str(data_dir),
                          "--products", "40", "--orders", "40", "--markets", "8",
                          "--null-rate", "0.2", "--seed", "3"])
        assert exit_code == 0
        generated = capsys.readouterr().out
        assert "wrote 88 tuples" in generated
        assert (data_dir / "Products.csv").exists()

        exit_code = main(["annotate", "--data", str(data_dir),
                          "--query-name", "competitive_advantage",
                          "--epsilon", "0.1", "--seed", "0"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "confidence" in output

    def test_annotate_with_inline_sql(self, tmp_path, capsys):
        data_dir = tmp_path / "data"
        main(["generate", "--out", str(data_dir), "--products", "30",
              "--orders", "30", "--markets", "6", "--seed", "1"])
        capsys.readouterr()
        exit_code = main(["annotate", "--data", str(data_dir),
                          "--sql", "SELECT M.seg FROM Market M WHERE M.rrp >= 0 LIMIT 5",
                          "--method", "auto"])
        assert exit_code == 0
        lines = [line for line in capsys.readouterr().out.splitlines() if line.strip()]
        assert len(lines) >= 2  # header plus at least one answer

    def test_annotate_missing_data_directory(self, tmp_path, capsys):
        exit_code = main(["annotate", "--data", str(tmp_path / "empty"),
                          "--query-name", "unfair_discount"])
        assert exit_code == 1

    def test_requires_a_query_source(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["annotate", "--data", str(tmp_path)])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])


class TestCliHardening:
    def test_sql_syntax_error_is_clean(self, data_dir, capsys):
        exit_code = main(["annotate", "--data", str(data_dir),
                          "--sql", "SELEC nonsense FROM nowhere"])
        assert exit_code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err

    def test_unknown_column_error_is_clean(self, data_dir, capsys):
        exit_code = main(["annotate", "--data", str(data_dir),
                          "--sql", "SELECT P.bogus FROM Products P"])
        assert exit_code == 2
        captured = capsys.readouterr()
        assert "bogus" in captured.err
        assert "Traceback" not in captured.err

    def test_jobs_output_is_bit_identical(self, data_dir, capsys):
        query = ["annotate", "--data", str(data_dir),
                 "--query-name", "competitive_advantage",
                 "--epsilon", "0.1", "--seed", "4"]
        assert main(query + ["--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(query + ["--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_adaptive_prints_intervals(self, data_dir, capsys):
        exit_code = main(["annotate", "--data", str(data_dir),
                          "--sql", "SELECT P.id FROM Products P WHERE P.rrp <= 40",
                          "--adaptive", "--epsilon", "0.05", "--seed", "2"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "[" in output and "]" in output  # interval column present


class TestServe:
    def _serve(self, data_dir, monkeypatch, text, extra=()):
        monkeypatch.setattr("sys.stdin", io.StringIO(text))
        return main(["serve", "--data", str(data_dir), "--seed", "5",
                     "--epsilon", "0.1", *extra])

    def test_repeated_queries_are_served_from_cache(self, data_dir, monkeypatch,
                                                    capsys):
        query = "SELECT M.seg FROM Market M WHERE M.rrp >= 0 LIMIT 3\n"
        exit_code = self._serve(data_dir, monkeypatch,
                                query + query + "\\stats\n\\quit\n")
        assert exit_code == 0
        output = capsys.readouterr().out
        assert output.count("confidence") == 2
        # The second run answers every lineage group from the cache.
        assert "0 computed" in output
        assert "estimates reused" in output

    def test_bad_query_keeps_the_loop_alive(self, data_dir, monkeypatch, capsys):
        exit_code = self._serve(
            data_dir, monkeypatch,
            "totally not sql\nSELECT M.seg FROM Market M LIMIT 1\n")
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "confidence" in captured.out

    def test_comments_and_blank_lines_are_skipped(self, data_dir, monkeypatch,
                                                  capsys):
        exit_code = self._serve(data_dir, monkeypatch,
                                "\n# a comment\n-- another\n\\quit\n")
        assert exit_code == 0
        assert "confidence" not in capsys.readouterr().out

    def test_eof_exits_zero_and_prints_the_stats_summary(self, data_dir,
                                                         monkeypatch, capsys):
        """Regression: a piped session ending without ``\\quit`` must still
        exit 0 and report what it served."""
        exit_code = self._serve(data_dir, monkeypatch,
                                "SELECT M.seg FROM Market M LIMIT 2\n")
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "-- session stats --" in output
        assert "estimates computed" in output
        assert "requests            1" in output

    def test_keyboard_interrupt_exits_zero_with_stats(self, data_dir,
                                                      monkeypatch, capsys):
        """Regression: Ctrl-C mid-request used to die with a traceback."""
        class InterruptingStdin:
            def __init__(self):
                self.lines = iter(["SELECT M.seg FROM Market M LIMIT 2\n"])

            def readline(self):
                try:
                    return next(self.lines)
                except StopIteration:
                    raise KeyboardInterrupt

            def isatty(self):
                return False

        monkeypatch.setattr("sys.stdin", InterruptingStdin())
        exit_code = main(["serve", "--data", str(data_dir), "--seed", "5",
                          "--epsilon", "0.1"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "confidence" in output  # the first query was served
        assert "-- session stats --" in output

    def test_interrupt_inside_a_request_is_still_clean(self, data_dir,
                                                       monkeypatch, capsys):
        """Ctrl-C while the service is computing (not between lines)."""
        from repro.service import AnnotationService

        original = AnnotationService.submit

        def interrupted_submit(self, *args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(AnnotationService, "submit", interrupted_submit)
        monkeypatch.setattr("sys.stdin", io.StringIO(
            "SELECT M.seg FROM Market M LIMIT 2\n"))
        exit_code = main(["serve", "--data", str(data_dir), "--seed", "5"])
        monkeypatch.setattr(AnnotationService, "submit", original)
        assert exit_code == 0
        assert "-- session stats --" in capsys.readouterr().out


class TestNetworkVerbs:
    """Argument handling of ``repro server`` / ``repro client``.

    Full network round-trips (spawn, query, SIGTERM drain) live in
    tests/test_server.py and benchmarks/server_smoke.py; these tests cover
    the argparse/validation surface that never opens a socket.
    """

    def test_server_rejects_silly_max_pending(self, data_dir, capsys):
        assert main(["server", "--data", str(data_dir),
                     "--max-pending", "0"]) == 2
        assert "max-pending" in capsys.readouterr().err

    def test_server_rejects_silly_workers(self, data_dir, capsys):
        assert main(["server", "--data", str(data_dir), "--workers", "0"]) == 2
        assert "workers" in capsys.readouterr().err

    def test_client_requires_a_query_or_probe(self):
        with pytest.raises(SystemExit):
            main(["client", "--port", "7464"])

    def test_client_reports_connection_failure(self, capsys):
        exit_code = main(["client", "--port", "1", "--sql",
                          "SELECT * FROM Market"])
        assert exit_code == 1
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err


class TestBackendFlag:
    def test_backend_columnar_matches_rows_output(self, data_dir, capsys):
        sql = ("SELECT P.seg FROM Products P, Market M "
               "WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 5")
        assert main(["annotate", "--data", str(data_dir), "--sql", sql,
                     "--epsilon", "0.2", "--seed", "0",
                     "--backend", "rows"]) == 0
        rows_output = capsys.readouterr().out
        assert main(["annotate", "--data", str(data_dir), "--sql", sql,
                     "--epsilon", "0.2", "--seed", "0",
                     "--backend", "columnar"]) == 0
        columnar_output = capsys.readouterr().out
        assert columnar_output == rows_output

    def test_unknown_backend_rejected_by_argparse(self, data_dir):
        with pytest.raises(SystemExit):
            main(["annotate", "--data", str(data_dir), "--sql",
                  "SELECT * FROM Market", "--backend", "arrow"])

    def test_serve_accepts_backend(self, data_dir, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO(
            "SELECT * FROM Market LIMIT 2\n\\stats\n\\quit\n"))
        assert main(["serve", "--data", str(data_dir), "--epsilon", "0.3",
                     "--seed", "0", "--backend", "columnar"]) == 0
        output = capsys.readouterr().out
        assert "confidence" in output
        assert "requests" in output


class TestShardingFlags:
    JOIN_SQL = ("SELECT P.seg FROM Products P, Market M "
                "WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp LIMIT 5")

    def test_sharded_annotate_matches_unsharded(self, data_dir, capsys):
        baseline = ["annotate", "--data", str(data_dir), "--sql", self.JOIN_SQL,
                    "--epsilon", "0.2", "--seed", "0", "--backend", "columnar"]
        assert main(baseline) == 0
        unsharded = capsys.readouterr().out
        assert main(baseline + ["--shards", "3", "--jobs", "2",
                                "--executor", "process"]) == 0
        sharded = capsys.readouterr().out
        assert sharded == unsharded

    def test_stats_reports_per_backend_and_per_shard(self, data_dir,
                                                     monkeypatch, capsys):
        """Regression: ``\\stats`` must break counters down, not aggregate.

        The pre-PR 4 report only showed whole-service cache totals; a
        sharded columnar service now also reports which backend served the
        requests (with its plan-cache hits/misses) and what each shard did.
        """
        monkeypatch.setattr("sys.stdin", io.StringIO(
            self.JOIN_SQL + "\n" + self.JOIN_SQL + "\n\\stats\n\\quit\n"))
        assert main(["serve", "--data", str(data_dir), "--epsilon", "0.3",
                     "--seed", "0", "--backend", "columnar",
                     "--shards", "2"]) == 0
        output = capsys.readouterr().out
        assert "backend" in output
        assert "columnar" in output
        assert "plan-hits" in output
        assert "shard[0]" in output
        assert "shard[1]" in output
        assert "part-hits" in output

    def test_rows_backend_reports_no_shard_lines(self, data_dir, monkeypatch,
                                                 capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO(
            "SELECT * FROM Market LIMIT 2\n\\stats\n\\quit\n"))
        assert main(["serve", "--data", str(data_dir), "--epsilon", "0.3",
                     "--seed", "0", "--shards", "2"]) == 0
        output = capsys.readouterr().out
        assert "rows" in output
        assert "shard[" not in output  # rows engine never shards

    def test_invalid_shards_rejected(self, data_dir, capsys):
        assert main(["annotate", "--data", str(data_dir),
                     "--query-name", "unfair_discount", "--shards", "0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_executor_rejected_by_argparse(self, data_dir):
        with pytest.raises(SystemExit):
            main(["annotate", "--data", str(data_dir), "--sql",
                  "SELECT * FROM Market", "--executor", "greenlet"])


class TestPlannerAndFusionFlags:
    QUERY = ["annotate", "--query-name", "competitive_advantage",
             "--epsilon", "0.15", "--seed", "6"]

    def test_fusion_output_is_bit_identical(self, data_dir, capsys):
        query = self.QUERY + ["--data", str(data_dir)]
        assert main(query) == 0
        solo = capsys.readouterr().out
        assert main(query + ["--fusion", "8"]) == 0
        fused = capsys.readouterr().out
        assert fused == solo

    def test_planner_auto_output_is_bit_identical(self, data_dir, capsys):
        query = self.QUERY + ["--data", str(data_dir)]
        assert main(query + ["--planner", "manual"]) == 0
        manual = capsys.readouterr().out
        assert main(query + ["--planner", "auto"]) == 0
        auto = capsys.readouterr().out
        assert auto == manual

    def test_unknown_planner_rejected_by_argparse(self, data_dir):
        with pytest.raises(SystemExit):
            main(["annotate", "--data", str(data_dir), "--sql",
                  "SELECT * FROM Market", "--planner", "cascades"])

    def test_negative_fusion_rejected(self, data_dir, capsys):
        assert main(["annotate", "--data", str(data_dir),
                     "--query-name", "unfair_discount", "--fusion", "-1"]) == 2
        assert "fusion" in capsys.readouterr().err

    def test_serve_stats_report_fused_kernels(self, data_dir, monkeypatch,
                                              capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO(
            "SELECT P.id FROM Products P WHERE P.rrp <= 20\n"
            "\\stats\n\\quit\n"))
        assert main(["serve", "--data", str(data_dir), "--epsilon", "0.3",
                     "--seed", "0", "--fusion", "8"]) == 0
        output = capsys.readouterr().out
        assert "fused kernels" in output


class TestCliObservability:
    def test_version_flag(self, capsys):
        from repro import package_version
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {package_version()}"

    def test_query_alias_with_trace_export(self, data_dir, tmp_path, capsys):
        import json
        trace_path = tmp_path / "trace.json"
        exit_code = main(["query", "--data", str(data_dir),
                          "--query-name", "competitive_advantage",
                          "--epsilon", "0.2", "--trace", str(trace_path)])
        assert exit_code == 0
        assert "confidence" in capsys.readouterr().out
        events = json.loads(trace_path.read_text())["traceEvents"]
        names = {event["name"] for event in events if event["ph"] == "X"}
        assert {"parse", "enumerate", "estimate", "serialize"} <= names

    def test_trace_output_is_bit_identical_to_untraced(self, data_dir,
                                                       tmp_path, capsys):
        base = ["annotate", "--data", str(data_dir),
                "--query-name", "competitive_advantage",
                "--epsilon", "0.2", "--seed", "7"]
        assert main(base) == 0
        untraced = capsys.readouterr().out
        assert main(base + ["--trace", str(tmp_path / "t.json")]) == 0
        assert capsys.readouterr().out == untraced

    def test_serve_stats_report_slow_queries(self, data_dir, monkeypatch,
                                             capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO(
            "SELECT P.id FROM Products P WHERE P.rrp <= 20\n"
            "\\stats\n\\quit\n"))
        assert main(["serve", "--data", str(data_dir), "--epsilon", "0.3",
                     "--seed", "0"]) == 0
        output = capsys.readouterr().out
        assert "slow queries" in output
        assert "SELECT P.id FROM Products P" in output

    def test_top_reports_unreachable_server(self, capsys):
        exit_code = main(["top", "--http-port", "1", "--count", "1"])
        assert exit_code == 1
        assert "cannot reach" in capsys.readouterr().err


class TestCliAgainstServer:
    """Client/top subcommands against a real in-process server."""

    @pytest.fixture
    def server(self, data_dir):
        from repro.relational.csv_io import load_database
        from repro.datagen.experiments import sales_schema
        from repro.server import EmbeddedServer
        from repro.service import AnnotationService, ServiceOptions
        database = load_database(sales_schema(), data_dir)
        service = AnnotationService(database,
                                    ServiceOptions(epsilon=0.2, seed=5))
        with EmbeddedServer(service) as running:
            yield running

    def test_client_probe_stats_pretty_and_json(self, server, capsys):
        import json
        host_args = ["--host", server.host, "--port", str(server.port)]
        assert main(["client", *host_args, "--sql",
                     "SELECT P.id FROM Products P WHERE P.rrp <= 20"]) == 0
        capsys.readouterr()
        assert main(["client", *host_args, "--probe", "stats"]) == 0
        pretty = capsys.readouterr().out
        assert "server" in pretty and "cache" in pretty and "{" not in pretty
        assert main(["client", *host_args, "--probe", "stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["server"]["requests"] >= 1

    def test_client_probe_health_and_metrics(self, server, capsys):
        host_args = ["--host", server.host, "--port", str(server.port)]
        assert main(["client", *host_args, "--probe", "health"]) == 0
        health = capsys.readouterr().out
        assert "uptime_seconds" in health and "version" in health
        assert main(["client", *host_args, "--probe", "metrics"]) == 0
        metrics = capsys.readouterr().out
        assert "# TYPE repro_request_seconds histogram" in metrics

    def test_top_renders_one_frame(self, server, capsys):
        exit_code = main(["top", "--host", server.host,
                          "--http-port", str(server.http_port),
                          "--count", "1"])
        assert exit_code == 0
        frame = capsys.readouterr().out
        assert "repro top" in frame and "p99 latency" in frame
