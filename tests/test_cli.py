"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_generate_then_annotate_named_query(self, tmp_path, capsys):
        data_dir = tmp_path / "data"
        exit_code = main(["generate", "--out", str(data_dir),
                          "--products", "40", "--orders", "40", "--markets", "8",
                          "--null-rate", "0.2", "--seed", "3"])
        assert exit_code == 0
        generated = capsys.readouterr().out
        assert "wrote 88 tuples" in generated
        assert (data_dir / "Products.csv").exists()

        exit_code = main(["annotate", "--data", str(data_dir),
                          "--query-name", "competitive_advantage",
                          "--epsilon", "0.1", "--seed", "0"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "confidence" in output

    def test_annotate_with_inline_sql(self, tmp_path, capsys):
        data_dir = tmp_path / "data"
        main(["generate", "--out", str(data_dir), "--products", "30",
              "--orders", "30", "--markets", "6", "--seed", "1"])
        capsys.readouterr()
        exit_code = main(["annotate", "--data", str(data_dir),
                          "--sql", "SELECT M.seg FROM Market M WHERE M.rrp >= 0 LIMIT 5",
                          "--method", "auto"])
        assert exit_code == 0
        lines = [line for line in capsys.readouterr().out.splitlines() if line.strip()]
        assert len(lines) >= 2  # header plus at least one answer

    def test_annotate_missing_data_directory(self, tmp_path, capsys):
        exit_code = main(["annotate", "--data", str(tmp_path / "empty"),
                          "--query-name", "unfair_discount"])
        assert exit_code == 1

    def test_requires_a_query_source(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["annotate", "--data", str(tmp_path)])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
