"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.experiments import ExperimentScale, generate_sales_database
from repro.datagen.intro import intro_database, intro_query
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import BaseNull, NumNull


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed generator for reproducible randomized tests."""
    return np.random.default_rng(20200614)


@pytest.fixture
def pair_schema() -> DatabaseSchema:
    """Schema with a single binary numerical relation R(a num, b num)."""
    return DatabaseSchema.of(RelationSchema.of("R", a="num", b="num"))


@pytest.fixture
def pair_database(pair_schema: DatabaseSchema) -> Database:
    """R holding the single all-null tuple (⊤1, ⊤2)."""
    database = Database(pair_schema)
    database.add("R", (NumNull("1"), NumNull("2")))
    return database


@pytest.fixture
def mixed_schema() -> DatabaseSchema:
    """Schema mixing base and numerical columns."""
    return DatabaseSchema.of(
        RelationSchema.of("Items", name="base", price="num"),
        RelationSchema.of("Tags", name="base", tag="base"),
    )


@pytest.fixture
def mixed_database(mixed_schema: DatabaseSchema) -> Database:
    """A small database with base and numerical nulls."""
    database = Database(mixed_schema)
    database.add("Items", ("pen", 2.5))
    database.add("Items", ("book", NumNull("book_price")))
    database.add("Items", (BaseNull("mystery"), 7.0))
    database.add("Tags", ("pen", "stationery"))
    database.add("Tags", ("book", BaseNull("book_tag")))
    return database


@pytest.fixture(scope="session")
def intro_db() -> Database:
    """The introduction example database (session-scoped: it is read-only)."""
    return intro_database()


@pytest.fixture(scope="session")
def intro_q():
    """The introduction example query."""
    return intro_query()


@pytest.fixture(scope="session")
def tiny_sales_database() -> Database:
    """A very small generated sales database for engine tests."""
    return generate_sales_database(ExperimentScale.tiny(), rng=7)
