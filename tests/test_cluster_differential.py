"""Differential acceptance: a 3-worker cluster answers bit-identically to
one local :class:`AnnotationService`, including after interleaved
mutations.

The reference side applies the identical mutation statements in the
identical order to its own service and answers every query locally; the
cluster side routes queries by family across real worker sockets and
broadcasts mutations behind the barrier gate.  Every answer is compared
through :func:`encode_answer` -- values, columns, witnesses, the full
certainty payload and the lineage digest -- so any divergence in
routing, replay order or snapshot isolation shows up as a failed
equality, not a statistical wobble.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.client import ReproClient, ServerError
from repro.cluster import EmbeddedCluster
from repro.datagen.experiments import ExperimentScale, generate_sales_database
from repro.server.protocol import encode_answer
from repro.service import AnnotationService, ServiceOptions

SCALE = ExperimentScale(products=40, orders=40, markets=8, null_rate=0.2)

QUERIES = (
    "SELECT M.seg FROM Market M WHERE M.rrp >= 10 LIMIT 4",
    "SELECT P.id FROM Products P WHERE P.rrp <= 30 LIMIT 5",
    "SELECT O.id FROM Orders O WHERE O.q * O.dis >= 10 LIMIT 4",
    "SELECT P.seg FROM Products P, Market M "
    "WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp LIMIT 5",
)


def _service() -> AnnotationService:
    return AnnotationService(generate_sales_database(SCALE, rng=3),
                             ServiceOptions(epsilon=0.1, seed=9))


def _script(seed: int, steps: int) -> list[tuple[str, str]]:
    """A seeded interleaving of queries and INSERT statements."""
    rng = np.random.default_rng(seed)
    script: list[tuple[str, str]] = []
    for index in range(steps):
        if rng.random() < 0.3:
            script.append(("mutate", (
                f"INSERT INTO Orders VALUES ('dx-{index}', "
                f"'p{int(rng.integers(10))}', {int(rng.integers(1, 40))}, "
                f"{round(float(rng.random()), 3)})")))
        else:
            script.append(("query",
                           QUERIES[int(rng.integers(len(QUERIES)))]))
    return script


def _encoded(answers) -> list[dict]:
    return [encode_answer(answer) for answer in answers]


@pytest.fixture(scope="module")
def cluster():
    database = generate_sales_database(SCALE, rng=3)
    services = [AnnotationService(database, ServiceOptions(epsilon=0.1,
                                                           seed=9))
                for _ in range(3)]
    with EmbeddedCluster(services, http=False) as embedded:
        yield embedded


def test_interleaved_script_is_bit_identical(cluster):
    reference = _service()
    script = _script(seed=17, steps=30)
    assert any(kind == "mutate" for kind, _ in script)
    with ReproClient(cluster.host, cluster.port, timeout=120.0) as client:
        for kind, sql in script:
            if kind == "mutate":
                outcome = client.mutate(sql)
                local = reference.mutate(sql)
                assert outcome.data_version == local.data_version
                continue
            remote = client.query(sql, seed=9)
            local = reference.submit(sql, seed=9)
            assert _encoded(remote.answers) == _encoded(local.answers), \
                f"cluster diverged from the local service on {sql!r}"


def test_every_query_family_matches_after_the_script(cluster):
    """After the interleaved history, each family still answers
    identically from whichever worker owns it."""
    reference = _service()
    for _, sql in (step for step in _script(seed=17, steps=30)
                   if step[0] == "mutate"):
        reference.mutate(sql)
    with ReproClient(cluster.host, cluster.port, timeout=120.0) as client:
        for sql in QUERIES:
            remote = client.query(sql, seed=9)
            local = reference.submit(sql, seed=9)
            assert _encoded(remote.answers) == _encoded(local.answers)


def test_rejected_mutations_do_not_desync(cluster):
    reference = _service()
    for _, sql in (step for step in _script(seed=17, steps=30)
                   if step[0] == "mutate"):
        reference.mutate(sql)
    with ReproClient(cluster.host, cluster.port, timeout=120.0) as client:
        before = client.cluster()["coordinator"]["barrier_version"]
        with pytest.raises(ServerError) as excinfo:
            client.mutate("INSERT INTO Orders VALUES ('dup', 'p0')")
        assert excinfo.value.code == "validation"
        assert client.cluster()["coordinator"]["barrier_version"] == before
        remote = client.query(QUERIES[0], seed=9)
    local = reference.submit(QUERIES[0], seed=9)
    assert _encoded(remote.answers) == _encoded(local.answers)
