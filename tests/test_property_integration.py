"""Property-based integration tests tying the layers together.

Two invariants of the whole pipeline are checked on randomly generated
instances (hypothesis):

* **Translation soundness** (Proposition 5.3): for any generated database,
  query and valuation of the numerical nulls, the translated constraint
  formula evaluated at the valuation agrees with the reference query
  evaluator run on the completed database.
* **Backend agreement**: on two-null linear instances the exact planar value,
  the AFPRAS estimate and the homogenised-cone (FPRAS) value coincide within
  the schemes' guarantees.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.certainty import AfprasOptions, afpras_measure, exact_measure, fpras_measure
from repro.certainty.fpras import FprasOptions
from repro.constraints.translate import translate
from repro.logic.builder import exists, num_var, rel
from repro.logic.evaluation import evaluate_boolean
from repro.logic.formulas import ComparisonOperator, Comparison, Query
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.valuation import Valuation
from repro.relational.values import NumNull

# -- shared generators --------------------------------------------------------

# Coefficients are either exactly zero or bounded away from zero: the
# asymptotic machinery deliberately treats leading coefficients below its
# relative noise floor (~1e-12) as zero, so coefficients at that knife edge
# are not meaningful inputs (the exact and sampled backends would legitimately
# disagree on them).
coefficients = st.one_of(
    st.just(0.0),
    st.floats(min_value=0.01, max_value=3.0, allow_nan=False, allow_infinity=False),
    st.floats(min_value=-3.0, max_value=-0.01, allow_nan=False, allow_infinity=False),
)
operators = st.sampled_from([ComparisonOperator.LT, ComparisonOperator.LE,
                             ComparisonOperator.GT, ComparisonOperator.GE])
valuations = st.tuples(
    st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
    st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
    st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
)


def small_database() -> tuple[Database, tuple[NumNull, NumNull, NumNull]]:
    schema = DatabaseSchema.of(
        RelationSchema.of("R", a="num", b="num"),
        RelationSchema.of("S", c="num"),
    )
    database = Database(schema)
    nulls = (NumNull("a"), NumNull("b"), NumNull("c"))
    database.add("R", (nulls[0], nulls[1]))
    database.add("R", (2.0, 5.0))
    database.add("S", (nulls[2],))
    database.add("S", (1.5,))
    return database, nulls


class TestTranslationSoundness:
    @given(coefficients, coefficients, coefficients, operators, valuations)
    @settings(max_examples=40, deadline=None)
    def test_translated_formula_agrees_with_evaluator(self, c1, c2, c3, op, values):
        database, nulls = small_database()
        a, b, c = num_var("a"), num_var("b"), num_var("c")
        condition = Comparison(c1 * a + c2 * b, op, c3 * c + 1.0)
        query = Query(head=(), body=exists([a, b], rel("R", a, b)
                                           & exists(c, rel("S", c) & condition)))
        translation = translate(query, database)

        valuation = Valuation.numeric(dict(zip(nulls, values)))
        expected = evaluate_boolean(query, valuation.database(database))
        assignment = {null.variable: value for null, value in zip(nulls, values)}
        # Skip knife-edge valuations where float tolerance decides the atom.
        margin = abs(c1 * values[0] + c2 * values[1] - c3 * values[2] - 1.0)
        if margin < 1e-6:
            return
        assert translation.formula.evaluate(assignment) == expected

    @given(valuations)
    @settings(max_examples=30, deadline=None)
    def test_projection_candidates_agree_with_evaluator(self, values):
        database, nulls = small_database()
        a, b = num_var("a"), num_var("b")
        query = Query(head=(a,), body=exists(b, rel("R", a, b) & (a < b)))
        candidate = (nulls[0],)
        translation = translate(query, database, candidate)
        valuation = Valuation.numeric(dict(zip(nulls, values)))
        if abs(values[0] - values[1]) < 1e-6:
            return
        expected = valuation.value(nulls[0]) in {
            answer[0] for answer in _answers(query, valuation.database(database))}
        assignment = {null.variable: value for null, value in zip(nulls, values)}
        assert translation.formula.evaluate(assignment) == expected


def _answers(query, database):
    from repro.logic.evaluation import evaluate_query

    return evaluate_query(query, database)


class TestBackendAgreement:
    @given(coefficients, coefficients, coefficients)
    @settings(max_examples=15, deadline=None)
    def test_two_null_linear_instances(self, c1, c2, c3):
        # A minimal two-null database keeps the exact planar backend applicable.
        schema = DatabaseSchema.of(RelationSchema.of("R", a="num", b="num"))
        database = Database(schema)
        database.add("R", (NumNull("a"), NumNull("b")))
        a, b = num_var("a"), num_var("b")
        query = Query(head=(), body=exists([a, b], rel("R", a, b)
                                           & (c1 * a + c2 * b <= c3) & (a >= 0)))
        translation = translate(query, database)
        exact = exact_measure(translation).value
        additive = afpras_measure(translation, AfprasOptions(epsilon=0.04), rng=1).value
        assert additive == pytest.approx(exact, abs=0.07)
        if translation.formula.is_linear():
            multiplicative = fpras_measure(translation, FprasOptions(epsilon=0.05),
                                           rng=1).value
            assert multiplicative == pytest.approx(exact, abs=0.07)
