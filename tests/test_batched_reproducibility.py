"""Seeded reproducibility and engine agreement of the sampling schemes.

Two families of guarantees:

* **Reproducibility**: every randomized backend returns the same estimate
  when run twice with the same seed;
* **Engine agreement**: the batched AFPRAS draws its direction block off the
  same generator stream as the scalar reference loop (NumPy fills Gaussian
  blocks sequentially), so with a fixed seed the two engines see identical
  directions and -- the kernels matching the scalar decisions -- must return
  *exactly* the same estimate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.certainty import (
    AfprasOptions,
    FprasOptions,
    afpras_measure,
    fpras_measure,
)
from repro.constraints.atoms import Comparison, Constraint
from repro.constraints.formula import And, Atom, disjunction
from repro.constraints.polynomials import Polynomial
from repro.constraints.translate import TranslationResult
from repro.geometry.cones import PolyhedralCone
from repro.geometry.montecarlo import (
    estimate_indicator_mean,
    estimate_indicator_mean_batch,
)
from repro.geometry.union_volume import union_volume_fraction
from repro.relational.values import NumNull


def linear_translation(dimension: int, disjuncts: int, seed: int) -> TranslationResult:
    """A random DNF of linear constraints over ``dimension`` nulls."""
    generator = np.random.default_rng(seed)
    names = tuple(f"z_n{i}" for i in range(dimension))
    parts = []
    for _ in range(disjuncts):
        atoms = []
        for _ in range(2):
            polynomial = Polynomial.constant(float(generator.uniform(-1.0, 1.0)))
            for name in names:
                polynomial = polynomial + \
                    float(generator.uniform(-1.0, 1.0)) * Polynomial.variable(name)
            atoms.append(Atom(Constraint(polynomial, Comparison.LE)))
        parts.append(And(tuple(atoms)))
    return TranslationResult(
        formula=disjunction(parts),
        all_variables=names,
        relevant_variables=names,
        null_by_variable={name: NumNull(name.removeprefix("z_")) for name in names},
    )


class TestSeededReproducibility:
    @pytest.mark.parametrize("engine", ["batched", "scalar"])
    def test_afpras_same_seed_same_estimate(self, engine: str):
        translation = linear_translation(4, 2, seed=9)
        options = AfprasOptions(epsilon=0.05, engine=engine)
        first = afpras_measure(translation, options, rng=123)
        second = afpras_measure(translation, options, rng=123)
        assert first.value == second.value
        assert first.samples == second.samples

    @pytest.mark.parametrize("engine", ["batched", "scalar"])
    def test_fpras_same_seed_same_estimate(self, engine: str):
        translation = linear_translation(3, 2, seed=4)
        options = FprasOptions(epsilon=0.05, engine=engine)
        first = fpras_measure(translation, options, rng=7)
        second = fpras_measure(translation, options, rng=7)
        assert first.value == second.value
        assert first.samples == second.samples

    def test_fpras_delta_amplification_is_reproducible(self):
        translation = linear_translation(3, 2, seed=4)
        options = FprasOptions(epsilon=0.08, delta=0.05)
        first = fpras_measure(translation, options, rng=11)
        second = fpras_measure(translation, options, rng=11)
        assert first.value == second.value
        assert first.details["amplification_rounds"] > 1
        assert first.samples == second.samples


class TestEngineAgreement:
    @pytest.mark.parametrize("dimension", [2, 4, 8])
    def test_afpras_batched_equals_scalar_on_same_seed(self, dimension: int):
        translation = linear_translation(dimension, 2, seed=dimension)
        batched = afpras_measure(
            translation, AfprasOptions(epsilon=0.05, engine="batched"), rng=42)
        scalar = afpras_measure(
            translation, AfprasOptions(epsilon=0.05, engine="scalar"), rng=42)
        assert batched.value == scalar.value
        assert batched.samples == scalar.samples

    def test_afpras_batched_blocking_does_not_change_the_estimate(self):
        translation = linear_translation(4, 2, seed=1)
        whole = afpras_measure(
            translation, AfprasOptions(epsilon=0.05, engine="batched"), rng=3)
        blocked = afpras_measure(
            translation,
            AfprasOptions(epsilon=0.05, engine="batched", block_size=17), rng=3)
        assert whole.value == blocked.value

    def test_union_direct_engines_agree_on_same_seed(self):
        cones = [
            PolyhedralCone.from_rows(3, strict=[[1.0, 0.0, 0.0]]),
            PolyhedralCone.from_rows(3, weak=[[0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]),
        ]
        batched = union_volume_fraction(cones, epsilon=0.05, rng=0,
                                        method="direct", engine="batched")
        scalar = union_volume_fraction(cones, epsilon=0.05, rng=0,
                                       method="direct", engine="scalar")
        assert batched.fraction == scalar.fraction
        assert batched.samples == scalar.samples

    def test_karp_luby_reports_escaped_points(self):
        cones = [
            PolyhedralCone.from_rows(3, strict=[[1.0, 0.0, 0.0]]),
            PolyhedralCone.from_rows(3, strict=[[0.0, 1.0, 0.0]]),
        ]
        estimate = union_volume_fraction(cones, epsilon=0.1, rng=5,
                                         method="karp-luby")
        assert estimate.details["engine"] == "batched"
        assert estimate.details["escaped"] >= 0
        assert estimate.samples > 0


class TestIndicatorMeanBatch:
    def test_matches_scalar_on_same_stream(self):
        def indicator(generator: np.random.Generator) -> bool:
            return bool(generator.random() < 0.37)

        def batch_indicator(generator: np.random.Generator, count: int) -> np.ndarray:
            return generator.random(count) < 0.37

        scalar = estimate_indicator_mean(indicator, epsilon=0.05, rng=2)
        batched = estimate_indicator_mean_batch(batch_indicator, epsilon=0.05, rng=2)
        assert scalar.value == batched.value
        assert scalar.samples == batched.samples
        assert scalar.positives == batched.positives

    def test_blocking_preserves_the_estimate(self):
        def batch_indicator(generator: np.random.Generator, count: int) -> np.ndarray:
            return generator.random(count) < 0.5

        whole = estimate_indicator_mean_batch(batch_indicator, epsilon=0.05, rng=8)
        blocked = estimate_indicator_mean_batch(batch_indicator, epsilon=0.05,
                                                rng=8, block_size=13)
        assert whole.value == blocked.value
