"""Tests for the sparse multivariate polynomial algebra."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.polynomials import Polynomial


def x() -> Polynomial:
    return Polynomial.variable("x")


def y() -> Polynomial:
    return Polynomial.variable("y")


class TestConstruction:
    def test_constant_and_variable(self):
        assert Polynomial.constant(3.0).evaluate({}) == 3.0
        assert x().evaluate({"x": 2.0}) == 2.0

    def test_zero(self):
        assert Polynomial.zero().is_zero()
        assert Polynomial.constant(0.0).is_zero()

    def test_from_value(self):
        assert Polynomial.from_value(2) == Polynomial.constant(2.0)
        assert Polynomial.from_value(x()) == x()

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            Polynomial.variable("")
        with pytest.raises(TypeError):
            Polynomial.constant("not a number")


class TestArithmetic:
    def test_addition_and_subtraction(self):
        p = x() + y() - 2.0
        assert p.evaluate({"x": 3.0, "y": 1.0}) == pytest.approx(2.0)
        assert (p - p).is_zero()

    def test_multiplication(self):
        p = (x() + 1.0) * (x() - 1.0)
        assert p.evaluate({"x": 3.0}) == pytest.approx(8.0)
        assert p.total_degree() == 2

    def test_scalar_operations(self):
        p = 2.0 * x() + 3.0
        assert p.evaluate({"x": 1.0}) == pytest.approx(5.0)
        assert (1.0 - x()).evaluate({"x": 4.0}) == pytest.approx(-3.0)

    def test_power(self):
        p = (x() + y()) ** 3
        assert p.evaluate({"x": 1.0, "y": 2.0}) == pytest.approx(27.0)
        assert (x() ** 0) == Polynomial.constant(1.0)
        with pytest.raises(ValueError):
            x() ** -1

    def test_cancellation_removes_monomials(self):
        p = x() * y() - x() * y()
        assert p.is_zero()
        assert p.variables() == frozenset()

    def test_equality_and_hash(self):
        assert x() + y() == y() + x()
        assert hash(x() + y()) == hash(y() + x())
        assert x() != y()


class TestInspection:
    def test_variables(self):
        p = x() * y() + 3.0
        assert p.variables() == frozenset({"x", "y"})

    def test_degree_and_linearity(self):
        assert (x() + 2.0 * y()).is_linear()
        assert not (x() * y()).is_linear()
        assert (x() * x()).total_degree() == 2
        assert Polynomial.constant(5.0).total_degree() == 0

    def test_linear_coefficients(self):
        p = 2.0 * x() - 3.0 * y() + 7.0
        assert p.linear_coefficients() == {"x": 2.0, "y": -3.0}
        assert p.constant_term() == 7.0
        with pytest.raises(ValueError):
            (x() * y()).linear_coefficients()

    def test_evaluate_missing_variable(self):
        with pytest.raises(KeyError):
            x().evaluate({})


class TestSubstitution:
    def test_substitute_constant(self):
        p = x() * x() + y()
        q = p.substitute({"x": 2.0})
        assert q == y() + 4.0

    def test_substitute_polynomial(self):
        p = x() * x()
        q = p.substitute({"x": y() + 1.0})
        assert q.evaluate({"y": 2.0}) == pytest.approx(9.0)

    def test_substitute_keeps_other_variables(self):
        p = x() + y()
        q = p.substitute({"x": 5.0})
        assert q.variables() == frozenset({"y"})


class TestDirectionalProfile:
    def test_profile_of_linear_polynomial(self):
        p = 2.0 * x() - y() + 3.0
        profile = p.directional_profile({"x": 1.0, "y": 4.0})
        assert profile == pytest.approx([3.0, -2.0])

    def test_profile_groups_by_total_degree(self):
        p = x() * y() + x() + 1.0
        profile = p.directional_profile({"x": 2.0, "y": 3.0})
        assert profile == pytest.approx([1.0, 2.0, 6.0])

    def test_profile_missing_direction_component(self):
        with pytest.raises(KeyError):
            x().directional_profile({})


# -- property-based tests -----------------------------------------------------

variable_names = st.sampled_from(["x", "y", "z"])
coefficients = st.floats(min_value=-10, max_value=10,
                         allow_nan=False, allow_infinity=False)


@st.composite
def polynomials(draw, max_terms: int = 4, max_degree: int = 3) -> Polynomial:
    total = Polynomial.zero()
    for _ in range(draw(st.integers(0, max_terms))):
        term = Polynomial.constant(draw(coefficients))
        for _ in range(draw(st.integers(0, max_degree))):
            term = term * Polynomial.variable(draw(variable_names))
        total = total + term
    return total


assignments = st.fixed_dictionaries({
    "x": st.floats(min_value=-5, max_value=5, allow_nan=False),
    "y": st.floats(min_value=-5, max_value=5, allow_nan=False),
    "z": st.floats(min_value=-5, max_value=5, allow_nan=False),
})


class TestPolynomialProperties:
    @given(polynomials(), polynomials(), assignments)
    @settings(max_examples=100, deadline=None)
    def test_addition_is_pointwise(self, p, q, point):
        assert (p + q).evaluate(point) == pytest.approx(
            p.evaluate(point) + q.evaluate(point), rel=1e-6, abs=1e-6)

    @given(polynomials(), polynomials(), assignments)
    @settings(max_examples=100, deadline=None)
    def test_multiplication_is_pointwise(self, p, q, point):
        assert (p * q).evaluate(point) == pytest.approx(
            p.evaluate(point) * q.evaluate(point), rel=1e-5, abs=1e-5)

    @given(polynomials(), assignments)
    @settings(max_examples=100, deadline=None)
    def test_negation_is_pointwise(self, p, point):
        assert (-p).evaluate(point) == pytest.approx(-p.evaluate(point))

    @given(polynomials(), assignments, st.floats(min_value=0.1, max_value=4.0))
    @settings(max_examples=100, deadline=None)
    def test_directional_profile_sums_to_evaluation(self, p, point, scale):
        profile = p.directional_profile(point)
        total = sum(coefficient * scale**degree
                    for degree, coefficient in enumerate(profile))
        scaled = {name: value * scale for name, value in point.items()}
        assert total == pytest.approx(p.evaluate(scaled), rel=1e-5, abs=1e-5)

    @given(polynomials())
    @settings(max_examples=100, deadline=None)
    def test_linear_detection_consistent_with_degree(self, p):
        assert p.is_linear() == (p.total_degree() <= 1)
