"""Tests for the Proposition 5.3 translation into constraint formulae."""

from __future__ import annotations

import math

import pytest

from repro.constraints.formula import FalseFormula, TrueFormula
from repro.constraints.translate import (
    RationalTerm,
    TranslationError,
    translate,
)
from repro.constraints.polynomials import Polynomial
from repro.logic.builder import base_var, exists, forall, implies, neg, num_var, rel
from repro.logic.formulas import Query
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import BaseNull, NumNull


class TestRationalTerm:
    def test_arithmetic(self):
        x = RationalTerm.of(Polynomial.variable("x"))
        two = RationalTerm.of(Polynomial.constant(2.0))
        quotient = x.divide(two)
        assert quotient.numerator == Polynomial.variable("x")
        assert quotient.denominator == Polynomial.constant(2.0)
        combined = (x + two) * x - two
        assert combined.numerator.evaluate({"x": 3.0}) / combined.denominator.evaluate({"x": 3.0}) \
            == pytest.approx((3.0 + 2.0) * 3.0 - 2.0)


class TestTranslateBasics:
    def test_pair_query_produces_single_inequality(self, pair_database):
        x, y = num_var("x"), num_var("y")
        query = Query(head=(), body=exists([x, y], rel("R", x, y) & (x > y)))
        translation = translate(query, pair_database)
        assert translation.dimension == 2
        assert set(translation.relevant_variables) == {"z_1", "z_2"}
        assert translation.formula.evaluate({"z_1": 2.0, "z_2": 1.0})
        assert not translation.formula.evaluate({"z_1": 1.0, "z_2": 2.0})

    def test_no_numeric_nulls_gives_ground_formula(self):
        schema = DatabaseSchema.of(RelationSchema.of("R", v="num"))
        database = Database(schema)
        database.add("R", (5.0,))
        x = num_var("x")
        query_true = Query(head=(), body=exists(x, rel("R", x) & (x > 1.0)))
        query_false = Query(head=(), body=exists(x, rel("R", x) & (x > 10.0)))
        assert isinstance(translate(query_true, database).formula, TrueFormula)
        assert isinstance(translate(query_false, database).formula, FalseFormula)

    def test_candidate_arity_is_checked(self, pair_database):
        x, y = num_var("x"), num_var("y")
        query = Query(head=(x,), body=exists(y, rel("R", x, y)))
        with pytest.raises(TranslationError):
            translate(query, pair_database, ())
        with pytest.raises(TranslationError):
            translate(query, pair_database, ("wrong-sort",))

    def test_candidate_null_binding(self, pair_database):
        x, y = num_var("x"), num_var("y")
        query = Query(head=(x,), body=exists(y, rel("R", x, y) & (x > y)))
        translation = translate(query, pair_database, (NumNull("1"),))
        # The candidate is the first null itself: the formula must say z_1 > z_2.
        assert translation.formula.evaluate({"z_1": 3.0, "z_2": 1.0})
        assert not translation.formula.evaluate({"z_1": 1.0, "z_2": 3.0})

    def test_base_nulls_are_fresh_constants(self):
        schema = DatabaseSchema.of(RelationSchema.of("Person", name="base"))
        database = Database(schema)
        database.add("Person", (BaseNull("unknown"),))
        who = base_var("w")
        query = Query(head=(), body=exists(who, rel("Person", who)
                                           & who.equals("alice")))
        # The null is almost surely not "alice": the formula is False.
        assert isinstance(translate(query, database).formula, FalseFormula)
        query_self = Query(head=(who,), body=rel("Person", who))
        translation = translate(query_self, database, (BaseNull("unknown"),))
        assert isinstance(translation.formula, TrueFormula)

    def test_division_produces_sign_case_split(self):
        schema = DatabaseSchema.of(RelationSchema.of("R", a="num", b="num"))
        database = Database(schema)
        database.add("R", (NumNull("a"), NumNull("b")))
        a, b = num_var("a"), num_var("b")
        query = Query(head=(), body=exists([a, b], rel("R", a, b) & (a / b > 1.0)))
        translation = translate(query, database)
        # a/b > 1 holds for (3, 2) and (-3, -2) but not (2, 3) or (3, -2).
        assert translation.formula.evaluate({"z_a": 3.0, "z_b": 2.0})
        assert translation.formula.evaluate({"z_a": -3.0, "z_b": -2.0})
        assert not translation.formula.evaluate({"z_a": 2.0, "z_b": 3.0})
        assert not translation.formula.evaluate({"z_a": 3.0, "z_b": -2.0})

    def test_relevant_variables_subset(self):
        schema = DatabaseSchema.of(RelationSchema.of("R", a="num", b="num"),
                                   RelationSchema.of("S", c="num"))
        database = Database(schema)
        database.add("R", (NumNull("a"), NumNull("b")))
        database.add("S", (NumNull("unrelated"),))
        a, b = num_var("a"), num_var("b")
        query = Query(head=(), body=exists([a, b], rel("R", a, b) & (a > b)))
        translation = translate(query, database)
        assert translation.dimension == 3
        # The quantifier expansion may mention the unrelated null in
        # measure-zero equality disjuncts, but the nulls of R must be there.
        assert {"z_a", "z_b"} <= set(translation.relevant_variables)
        assert set(translation.relevant_variables) <= {"z_a", "z_b", "z_unrelated"}


class TestTranslateAgainstEvaluator:
    """The translated formula must agree with the reference evaluator."""

    @pytest.mark.parametrize("values", [
        (2.0, 1.0, 5.0), (1.0, 2.0, 5.0), (4.0, 4.0, 1.0), (-3.0, -5.0, 2.0),
    ])
    def test_agreement_on_sampled_valuations(self, values):
        schema = DatabaseSchema.of(RelationSchema.of("R", a="num", b="num"),
                                   RelationSchema.of("T", c="num"))
        database = Database(schema)
        nulls = (NumNull("a"), NumNull("b"), NumNull("c"))
        database.add("R", (nulls[0], nulls[1]))
        database.add("T", (nulls[2],))
        a, b, c = num_var("a"), num_var("b"), num_var("c")
        query = Query(head=(), body=exists([a, b], rel("R", a, b)
                                           & (a + b > 1.0)
                                           & exists(c, rel("T", c) & (c * c > a))))
        translation = translate(query, database)

        from repro.logic.evaluation import evaluate_boolean
        from repro.relational.valuation import Valuation

        valuation = Valuation.numeric(dict(zip(nulls, values)))
        expected = evaluate_boolean(query, valuation.database(database))
        assignment = {null.variable: value for null, value in zip(nulls, values)}
        assert translation.formula.evaluate(assignment) == expected

    def test_intro_example_formula_matches_evaluator(self, intro_db, intro_q):
        from repro.logic.evaluation import query_holds_for
        from repro.relational.valuation import Valuation, bijective_base_valuation

        translation = translate(intro_q, intro_db, ("s",))
        base_valuation = bijective_base_valuation(intro_db)
        nulls = intro_db.num_nulls_ordered()
        for values in ((100.0, 5.0), (5.0, 100.0), (9.0, 10.0), (20.0, 20.0)):
            valuation = base_valuation.extend(Valuation.numeric(dict(zip(nulls, values))))
            expected = query_holds_for(intro_q, valuation.database(intro_db), ("s",))
            assignment = {null.variable: value for null, value in zip(nulls, values)}
            assert translation.formula.evaluate(assignment) == expected, values
