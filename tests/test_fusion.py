"""Unit tests for block-diagonal kernel fusion (:mod:`repro.compile.fusion`).

The fused artefact promises column-for-column bit-identity with the
per-group kernels it stacks; these tests check the artefact's layout
(offsets, mode partition, program sweep vs fallback split) and the
bit-identity promise on randomized formulas and direction blocks.  The
end-to-end promise -- fused *service answers* equal unfused ones -- lives
in tests/test_fused_differential.py.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compile import (
    FUSION_MODES,
    FusionError,
    compile_formula,
    fuse_formulas,
    fusion_mode,
)
from repro.constraints.atoms import Comparison, Constraint
from repro.constraints.formula import And, Atom, Not, Or
from repro.constraints.polynomials import Polynomial


def linear_atom(name: str, bound: float = 1.0,
                op: Comparison = Comparison.LE) -> Atom:
    return Atom(Constraint(
        Polynomial.variable(name) - Polynomial.constant(bound), op))


def quadratic_atom(name: str, bound: float = 1.0,
                   op: Comparison = Comparison.GT) -> Atom:
    square = Polynomial.variable(name) * Polynomial.variable(name)
    return Atom(Constraint(square - Polynomial.constant(bound), op))


def random_linear_formula(rng: np.random.Generator, variables: tuple[str, ...]):
    atoms = []
    for _ in range(int(rng.integers(1, 4))):
        name = str(rng.choice(variables))
        op = (Comparison.LE, Comparison.LT, Comparison.GE,
              Comparison.GT)[int(rng.integers(0, 4))]
        poly = Polynomial.variable(name) * float(rng.uniform(-3.0, 3.0))
        if rng.random() < 0.7:
            other = str(rng.choice(variables))
            poly = poly + Polynomial.variable(other) * float(rng.uniform(-2.0, 2.0))
        atoms.append(Atom(Constraint(
            poly - Polynomial.constant(float(rng.uniform(-1.0, 1.0))), op)))
    if len(atoms) == 1:
        return atoms[0]
    connective = And if rng.random() < 0.5 else Or
    return connective(tuple(atoms))


def random_general_formula(rng: np.random.Generator, variables: tuple[str, ...]):
    atoms = []
    for _ in range(int(rng.integers(1, 4))):
        name = str(rng.choice(variables))
        op = (Comparison.LE, Comparison.GT)[int(rng.integers(0, 2))]
        poly = (Polynomial.variable(name) ** int(rng.integers(2, 4))
                * float(rng.uniform(-2.0, 2.0)))
        if rng.random() < 0.6:
            other = str(rng.choice(variables))
            poly = poly + Polynomial.variable(other) * float(rng.uniform(-2.0, 2.0))
        atoms.append(Atom(Constraint(
            poly - Polynomial.constant(float(rng.uniform(-1.0, 1.0))), op)))
    if len(atoms) == 1:
        return atoms[0]
    connective = And if rng.random() < 0.5 else Or
    return connective(tuple(atoms))


def compile_random(rng: np.random.Generator, count: int, kind: str):
    compiled = []
    for index in range(count):
        dimension = int(rng.integers(1, 4))
        variables = tuple(f"g{index}v{position}"
                          for position in range(dimension))
        builder = (random_linear_formula if kind == "linear"
                   else random_general_formula)
        compiled.append(compile_formula(builder(rng, variables), variables))
    return compiled


def assert_fused_identical(fused, compiled, rng, rounds: int = 3,
                           count: int = 64) -> None:
    for _ in range(rounds):
        blocks = [rng.standard_normal((count, kernel.dimension))
                  for kernel in compiled]
        decisions = fused.asymptotic_truth_batch(blocks)
        assert decisions.shape == (count, len(compiled))
        for group, kernel in enumerate(compiled):
            solo = kernel.asymptotic_truth_batch(blocks[group])
            assert np.array_equal(decisions[:, group], solo), \
                f"group {group} diverged from its unfused kernel"


class TestFusionMode:
    def test_linear_width_two_formulas_take_the_linear_branch(self):
        compiled = compile_formula(linear_atom("x"), ("x",))
        assert fusion_mode(compiled) == "linear"
        assert fusion_mode(compiled) in FUSION_MODES

    def test_higher_degrees_take_the_general_branch(self):
        compiled = compile_formula(quadratic_atom("x"), ("x",))
        assert fusion_mode(compiled) == "general"

    def test_mixed_degree_conjunction_is_general(self):
        formula = And((linear_atom("x"), quadratic_atom("y")))
        compiled = compile_formula(formula, ("x", "y"))
        assert fusion_mode(compiled) == "general"


class TestFusedLayout:
    def test_offsets_are_prefix_sums(self):
        rng = np.random.default_rng(5)
        compiled = compile_random(rng, 5, "linear")
        fused = fuse_formulas(compiled)
        assert fused.num_groups == 5
        assert fused.mode == "linear"
        dims = [kernel.dimension for kernel in compiled]
        atoms = [kernel.table.num_atoms for kernel in compiled]
        assert list(fused.dimensions) == dims
        assert list(fused.variable_offsets) == \
            list(np.concatenate(([0], np.cumsum(dims))))
        assert list(fused.atom_offsets) == \
            list(np.concatenate(([0], np.cumsum(atoms))))
        assert fused.num_atoms == sum(atoms)
        assert fused.linear_matrix.shape == (sum(dims), sum(atoms))
        assert fused.linear_constant.shape == (sum(atoms),)

    def test_linear_matrix_is_block_diagonal(self):
        rng = np.random.default_rng(6)
        compiled = compile_random(rng, 4, "linear")
        fused = fuse_formulas(compiled)
        matrix = fused.linear_matrix.copy()
        for group in range(fused.num_groups):
            matrix[fused.variable_offsets[group]:fused.variable_offsets[group + 1],
                   fused.atom_offsets[group]:fused.atom_offsets[group + 1]] = 0.0
        assert not matrix.any(), "entries outside the blocks must be zero"

    def test_general_mode_pads_profiles_to_the_widest_degree(self):
        cubic = compile_formula(
            Atom(Constraint(Polynomial.variable("x") ** 3
                            - Polynomial.constant(1.0), Comparison.GT)),
            ("x",))
        quadratic = compile_formula(quadratic_atom("y"), ("y",))
        fused = fuse_formulas([cubic, quadratic])
        assert fused.mode == "general"
        assert fused.width == 4  # degrees 0..3
        assert fused.profile_selector.shape == \
            (fused.num_monomials, fused.num_atoms * fused.width)

    def test_flat_programs_join_the_sweep_nested_ones_fall_back(self):
        flat = compile_formula(And((linear_atom("x"), linear_atom("y", 2.0))),
                               ("x", "y"))
        nested = compile_formula(
            And((Or((linear_atom("a"), linear_atom("b", 2.0))),
                 Not(linear_atom("a", 3.0)))),
            ("a", "b"))
        assert flat.fused_program is not None
        assert nested.fused_program is None
        fused = fuse_formulas([flat, nested])
        assert fused.sweep_groups == (0,)
        assert fused.fallback_groups == (1,)
        assert_fused_identical(fused, [flat, nested], np.random.default_rng(7))


class TestFusionErrors:
    def test_empty_batch_rejected(self):
        with pytest.raises(FusionError):
            fuse_formulas([])

    def test_mixed_modes_rejected(self):
        linear = compile_formula(linear_atom("x"), ("x",))
        general = compile_formula(quadratic_atom("y"), ("y",))
        with pytest.raises(FusionError, match="kernel modes"):
            fuse_formulas([linear, general])

    def test_wrong_block_count_rejected(self):
        fused = fuse_formulas([compile_formula(linear_atom("x"), ("x",)),
                               compile_formula(linear_atom("y", 2.0), ("y",))])
        with pytest.raises(FusionError, match="direction blocks"):
            fused.asymptotic_truth_batch([np.zeros((4, 1))])

    def test_wrong_block_width_rejected(self):
        fused = fuse_formulas([compile_formula(linear_atom("x"), ("x",))])
        with pytest.raises(FusionError, match="shape"):
            fused.asymptotic_truth_batch([np.zeros((4, 3))])

    def test_mismatched_row_counts_rejected(self):
        fused = fuse_formulas([compile_formula(linear_atom("x"), ("x",)),
                               compile_formula(linear_atom("y", 2.0), ("y",))])
        with pytest.raises(FusionError, match="rows"):
            fused.asymptotic_truth_batch([np.zeros((4, 1)), np.zeros((5, 1))])


class TestFusedBitIdentity:
    def test_single_group_fusion_is_the_identity(self):
        rng = np.random.default_rng(11)
        compiled = compile_formula(
            And((linear_atom("x"), linear_atom("y", -0.5, Comparison.GT))),
            ("x", "y"))
        fused = fuse_formulas([compiled])
        assert_fused_identical(fused, [compiled], rng)

    def test_random_linear_batches_are_bit_identical(self):
        rng = np.random.default_rng(12)
        for _ in range(10):
            compiled = compile_random(rng, int(rng.integers(2, 9)), "linear")
            assert_fused_identical(fuse_formulas(compiled), compiled, rng)

    def test_random_general_batches_are_bit_identical(self):
        rng = np.random.default_rng(13)
        for _ in range(10):
            compiled = compile_random(rng, int(rng.integers(2, 7)), "general")
            assert_fused_identical(fuse_formulas(compiled), compiled, rng)

    def test_zero_directions_agree_with_the_unfused_kernel(self):
        # All-zero profiles exercise the identically-zero override, where
        # the zero-truth table (not the sign of 0.0) decides.
        compiled = [compile_formula(linear_atom("x", 0.0, op), ("x",))
                    for op in (Comparison.LE, Comparison.LT,
                               Comparison.GE, Comparison.GT)]
        fused = fuse_formulas(compiled)
        blocks = [np.zeros((3, 1)) for _ in compiled]
        decisions = fused.asymptotic_truth_batch(blocks)
        for group, kernel in enumerate(compiled):
            solo = kernel.asymptotic_truth_batch(blocks[group])
            assert np.array_equal(decisions[:, group], solo)

    def test_duplicate_kernels_fuse_cleanly(self):
        # The compile memo may hand the same CompiledFormula object to many
        # groups (renamed nulls share one canonical artefact); fusion must
        # treat each occurrence as its own block.
        rng = np.random.default_rng(14)
        kernel = compile_formula(linear_atom("x"), ("x",))
        fused = fuse_formulas([kernel, kernel, kernel])
        assert_fused_identical(fused, [kernel, kernel, kernel], rng)


class TestFusionMemos:
    """The artefact memos: digest-keyed compile hits and the fused-batch LRU."""

    def test_digest_keyed_compile_hit_skips_canonicalisation(self):
        # A caller holding the canonical digest (the service's schedule
        # groups, FusedTask) gets the same artefact the plain path caches.
        from repro.compile import compile_cache_stats
        from repro.service import canonicalise

        formula = linear_atom("memo_x", 0.25)
        plain = compile_formula(formula, ("memo_x",))
        digest = canonicalise(formula, ("memo_x",)).digest
        before = compile_cache_stats()
        keyed = compile_formula(formula, ("memo_x",), digest=digest)
        after = compile_cache_stats()
        assert keyed is plain
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

    def test_fused_batches_are_memoised_by_digest_tuple(self):
        from repro.constraints.translate import TranslationResult
        from repro.relational.values import NumNull
        from repro.service.fused import _FUSED_CACHE, FusedTask, decide_fused_batch
        from repro.service.rng import root_sequence

        def task(index: int) -> FusedTask:
            from repro.service import canonicalise
            name = f"memo_g{index}"
            poly = (Polynomial.variable(name) * (1.0 + index)
                    - Polynomial.constant(1.0))
            formula = Atom(Constraint(poly, Comparison.LE))
            translation = TranslationResult(
                formula=formula, all_variables=(name,),
                relevant_variables=(name,),
                null_by_variable={name: NumNull(name)})
            return FusedTask(translation=translation,
                             digest=canonicalise(formula, (name,)).digest,
                             replica=(index,))

        tasks = [task(index) for index in range(5)]

        def decide():
            return decide_fused_batch(
                tasks, epsilon=0.3, delta=0.1, adaptive=False,
                root=root_sequence(7), coarse=0.5, factor=2.0)

        first, _ = decide()
        hits_before = _FUSED_CACHE.stats().hits
        second, _ = decide()
        assert _FUSED_CACHE.stats().hits > hits_before
        assert [r.value for r in first] == [r.value for r in second]
