"""Tests for convex bodies, chords, cones and the hit-and-run sampler."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.geometry.bodies import Ball, HalfSpace, Intersection, halfspaces_and_ball
from repro.geometry.cones import PolyhedralCone
from repro.geometry.hitandrun import HitAndRunSampler


class TestHalfSpace:
    def test_membership(self):
        halfspace = HalfSpace(normal=np.array([1.0, 0.0]))
        assert halfspace.contains(np.array([-1.0, 5.0]))
        assert halfspace.contains(np.array([0.0, 0.0]))
        assert not halfspace.contains(np.array([0.5, 0.0]))

    def test_offset(self):
        halfspace = HalfSpace(normal=np.array([1.0, 0.0]), offset=2.0)
        assert halfspace.contains(np.array([1.5, 0.0]))
        assert not halfspace.contains(np.array([2.5, 0.0]))

    def test_chord_crossing(self):
        halfspace = HalfSpace(normal=np.array([1.0, 0.0]))
        lower, upper = halfspace.chord(np.array([-1.0, 0.0]), np.array([1.0, 0.0]))
        assert lower == -math.inf
        assert upper == pytest.approx(1.0)

    def test_chord_parallel_inside_and_outside(self):
        halfspace = HalfSpace(normal=np.array([0.0, 1.0]))
        inside = halfspace.chord(np.array([0.0, -1.0]), np.array([1.0, 0.0]))
        assert inside == (-math.inf, math.inf)
        outside = halfspace.chord(np.array([0.0, 1.0]), np.array([1.0, 0.0]))
        assert outside[0] > outside[1]

    def test_rejects_matrix_normal(self):
        with pytest.raises(ValueError):
            HalfSpace(normal=np.zeros((2, 2)))


class TestBall:
    def test_membership(self):
        ball = Ball.unit(3)
        assert ball.contains(np.zeros(3))
        assert ball.contains(np.array([1.0, 0.0, 0.0]))
        assert not ball.contains(np.array([1.1, 0.0, 0.0]))

    def test_chord_through_center(self):
        ball = Ball.unit(2)
        lower, upper = ball.chord(np.zeros(2), np.array([1.0, 0.0]))
        assert lower == pytest.approx(-1.0)
        assert upper == pytest.approx(1.0)

    def test_chord_missing_the_ball(self):
        ball = Ball.unit(2)
        lower, upper = ball.chord(np.array([0.0, 2.0]), np.array([1.0, 0.0]))
        assert lower > upper

    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            Ball(center=np.zeros(2), radius=-1.0)


class TestIntersection:
    def test_membership_requires_all_parts(self):
        body = halfspaces_and_ball([np.array([1.0, 0.0]), np.array([0.0, 1.0])])
        assert body.contains(np.array([-0.1, -0.1]))
        assert not body.contains(np.array([0.1, -0.1]))
        assert not body.contains(np.array([-2.0, -2.0]))  # outside the ball

    def test_chord_is_intersection_of_chords(self):
        body = halfspaces_and_ball([np.array([0.0, 1.0])])  # lower half-disc
        # From (0, -0.5) upwards: the ball allows t in [-0.5, 1.5], the
        # half-plane y <= 0 allows t <= 0.5.
        lower, upper = body.chord(np.array([0.0, -0.5]), np.array([0.0, 1.0]))
        assert lower == pytest.approx(-0.5)
        assert upper == pytest.approx(0.5)

    def test_requires_consistent_dimensions(self):
        with pytest.raises(ValueError):
            Intersection.of([Ball.unit(2), Ball.unit(3)])
        with pytest.raises(ValueError):
            Intersection.of([])


class TestPolyhedralCone:
    def test_membership_and_constraints(self):
        cone = PolyhedralCone.from_rows(2, strict=[[1.0, 0.0]], weak=[[0.0, 1.0]])
        assert cone.contains(np.array([-1.0, -1.0]))
        assert cone.contains(np.array([-1.0, 0.0]))
        assert not cone.contains(np.array([1.0, -1.0]))
        assert cone.num_constraints == 2

    def test_degenerate_by_equality(self):
        cone = PolyhedralCone.from_rows(2, equality=[[1.0, -1.0]])
        assert cone.is_degenerate()

    def test_degenerate_by_contradiction(self):
        cone = PolyhedralCone.from_rows(1, strict=[[1.0], [-1.0]])
        assert cone.is_degenerate()

    def test_full_space_is_not_degenerate(self):
        cone = PolyhedralCone.from_rows(3)
        assert not cone.is_degenerate()
        assert np.allclose(cone.interior_point(), 0.0)

    def test_interior_point_is_strictly_feasible(self):
        cone = PolyhedralCone.from_rows(3, strict=[[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        point = cone.interior_point()
        assert point is not None
        assert np.all(np.vstack([cone.strict]) @ point < 0)
        assert np.linalg.norm(point) <= 1.0

    def test_intersect(self):
        first = PolyhedralCone.from_rows(2, strict=[[1.0, 0.0]])
        second = PolyhedralCone.from_rows(2, strict=[[0.0, 1.0]])
        both = first.intersect(second)
        assert both.num_constraints == 2
        with pytest.raises(ValueError):
            first.intersect(PolyhedralCone.from_rows(3))

    def test_body_contains_interior_point(self):
        cone = PolyhedralCone.from_rows(2, strict=[[1.0, 1.0]])
        body = cone.body()
        assert body.contains(cone.interior_point())


class TestHitAndRun:
    def test_samples_stay_inside_the_body(self):
        cone = PolyhedralCone.from_rows(3, strict=[[1.0, 0.0, 0.0]])
        sampler = HitAndRunSampler(body=cone.body(), start=cone.interior_point(), rng=0)
        samples = sampler.samples(100)
        for sample in samples:
            assert cone.body().contains(sample)

    def test_requires_start_inside(self):
        body = Ball.unit(2)
        with pytest.raises(ValueError):
            HitAndRunSampler(body=body, start=np.array([2.0, 0.0]), rng=0)

    def test_approximate_uniformity_on_halfdisc(self):
        # In the lower half-disc, roughly half the mass has x > 0.
        body = halfspaces_and_ball([np.array([0.0, 1.0])])
        sampler = HitAndRunSampler(body=body, start=np.array([0.0, -0.5]), rng=1)
        samples = sampler.samples(800)
        fraction = float((samples[:, 0] > 0).mean())
        assert fraction == pytest.approx(0.5, abs=0.08)

    def test_negative_count_rejected(self):
        body = Ball.unit(2)
        sampler = HitAndRunSampler(body=body, start=np.zeros(2), rng=0)
        with pytest.raises(ValueError):
            sampler.samples(-1)
