"""Tests for the reference evaluator over complete databases."""

from __future__ import annotations

import pytest

from repro.logic.builder import base_var, exists, forall, implies, neg, num_var, rel
from repro.logic.evaluation import (
    EvaluationError,
    evaluate_boolean,
    evaluate_query,
    query_holds_for,
)
from repro.logic.formulas import Query
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import BaseNull, NumNull


@pytest.fixture
def store() -> Database:
    schema = DatabaseSchema.of(
        RelationSchema.of("Item", name="base", price="num"),
        RelationSchema.of("Cheap", name="base"),
    )
    database = Database(schema)
    database.add("Item", ("pen", 2.0))
    database.add("Item", ("book", 15.0))
    database.add("Item", ("laptop", 900.0))
    database.add("Cheap", ("pen",))
    return database


class TestEvaluation:
    def test_selection_with_arithmetic(self, store):
        name, price = base_var("n"), num_var("p")
        query = Query(head=(name,), body=exists(price, rel("Item", name, price)
                                                & (price * 2.0 < 40.0)))
        assert evaluate_query(query, store) == {("pen",), ("book",)}

    def test_boolean_query(self, store):
        name, price = base_var("n"), num_var("p")
        query = Query(head=(), body=exists([name, price],
                                           rel("Item", name, price) & (price > 100.0)))
        assert evaluate_boolean(query, store)
        impossible = Query(head=(), body=exists([name, price],
                                                rel("Item", name, price) & (price > 10000.0)))
        assert not evaluate_boolean(impossible, store)

    def test_universal_quantification(self, store):
        name, price = base_var("n"), num_var("p")
        body = forall([name, price], implies(rel("Item", name, price), price > 1.0))
        assert evaluate_boolean(Query(head=(), body=body), store)
        body_false = forall([name, price], implies(rel("Item", name, price), price > 5.0))
        assert not evaluate_boolean(Query(head=(), body=body_false), store)

    def test_negation_and_base_equality(self, store):
        name, price = base_var("n"), num_var("p")
        query = Query(head=(name,), body=exists(price, rel("Item", name, price)
                                                & neg(rel("Cheap", name))))
        assert evaluate_query(query, store) == {("book",), ("laptop",)}

    def test_query_holds_for(self, store):
        name, price = base_var("n"), num_var("p")
        query = Query(head=(name,), body=exists(price, rel("Item", name, price)
                                                & (price < 10.0)))
        assert query_holds_for(query, store, ("pen",))
        assert not query_holds_for(query, store, ("book",))
        with pytest.raises(EvaluationError):
            query_holds_for(query, store, ("pen", "extra"))

    def test_projection_head_with_numeric_variable(self, store):
        name, price = base_var("n"), num_var("p")
        query = Query(head=(price,), body=exists(name, rel("Item", name, price)
                                                 & rel("Cheap", name)))
        assert evaluate_query(query, store) == {(2.0,)}

    def test_division_by_zero_is_false(self, store):
        name, price = base_var("n"), num_var("p")
        query = Query(head=(), body=exists([name, price], rel("Item", name, price)
                                           & (price / (price - price) > 1.0)))
        assert not evaluate_boolean(query, store)

    def test_base_nulls_behave_as_fresh_constants(self):
        schema = DatabaseSchema.of(RelationSchema.of("Likes", who="base", what="base"))
        database = Database(schema)
        database.add("Likes", (BaseNull("someone"), "coffee"))
        who, what = base_var("w"), base_var("x")
        query = Query(head=(), body=exists([who, what], rel("Likes", who, what)
                                           & what.equals("coffee")))
        assert evaluate_boolean(query, database)
        specific = Query(head=(), body=exists([what], rel("Likes", base_var("w"), what)))
        # The head/body mismatch is deliberate: "w" is free, so evaluate as a
        # unary query instead.
        unary = Query(head=(base_var("w"),), body=exists([what], rel("Likes", base_var("w"), what)))
        answers = evaluate_query(unary, database)
        assert answers == {(BaseNull("someone"),)}
        assert specific is not None

    def test_numeric_nulls_are_rejected(self):
        schema = DatabaseSchema.of(RelationSchema.of("R", v="num"))
        database = Database(schema)
        database.add("R", (NumNull("n"),))
        x = num_var("x")
        query = Query(head=(), body=exists(x, rel("R", x)))
        with pytest.raises(EvaluationError):
            evaluate_boolean(query, database)

    def test_boolean_evaluator_requires_boolean_query(self, store):
        name = base_var("n")
        query = Query(head=(name,), body=rel("Cheap", name))
        with pytest.raises(EvaluationError):
            evaluate_boolean(query, store)
