"""Tests for exact planar cone fractions (arcs on the circle)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.angles import (
    cone_angle_between,
    halfplane_arc,
    intersect_arcs,
    planar_cone_fraction,
    planar_cones_union_fraction,
    union_length,
)


class TestHalfplaneArc:
    def test_arc_has_length_pi(self):
        arc = halfplane_arc([1.0, 0.0])
        assert arc is not None
        assert arc[1] == pytest.approx(math.pi)

    def test_zero_normal_is_unconstrained(self):
        assert halfplane_arc([0.0, 0.0]) is None

    def test_arc_contains_the_antinormal_direction(self):
        # Directions satisfying (1,0).d <= 0 include (-1, 0), i.e. angle pi.
        start, length = halfplane_arc([1.0, 0.0])
        angle = math.pi
        relative = (angle - start) % (2 * math.pi)
        assert 0.0 <= relative <= length


class TestConeFractions:
    def test_single_halfplane_is_half(self):
        assert planar_cone_fraction([[1.0, 0.0]]) == pytest.approx(0.5)

    def test_quadrant_is_quarter(self):
        assert planar_cone_fraction([[1.0, 0.0], [0.0, 1.0]]) == pytest.approx(0.25)

    def test_empty_cone(self):
        assert planar_cone_fraction([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]]) \
            == pytest.approx(0.0, abs=1e-12)

    def test_no_constraints_is_full_plane(self):
        assert planar_cone_fraction([]) == pytest.approx(1.0)
        assert planar_cone_fraction([[0.0, 0.0]]) == pytest.approx(1.0)

    def test_intro_example_value(self):
        # Constraints of the paper's formula (1), homogenised:
        # alpha' >= 0, alpha >= 0, 0.7*alpha' - alpha >= 0, over z = (alpha, alpha').
        normals = [[0.0, -1.0], [-1.0, 0.0], [1.0, -0.7]]
        expected = (math.pi / 2 - math.atan(10.0 / 7.0)) / (2 * math.pi)
        assert planar_cone_fraction(normals) == pytest.approx(expected)

    def test_proposition_61_value(self):
        # x >= 0 and y <= alpha*x, i.e. normals (-1, 0) and (-alpha, 1).
        for alpha in (0.0, 0.5, 1.0, 3.0, -2.0):
            fraction = planar_cone_fraction([[-1.0, 0.0], [-alpha, 1.0]])
            expected = 0.25 + math.atan(alpha) / (2 * math.pi)
            assert fraction == pytest.approx(expected), f"alpha={alpha}"

    @given(st.floats(min_value=0.0, max_value=2 * math.pi),
           st.floats(min_value=0.05, max_value=math.pi))
    @settings(max_examples=60, deadline=None)
    def test_wedge_angle_matches_fraction(self, rotation, opening):
        # A wedge of opening angle `opening`, rotated arbitrarily, built from
        # its two bounding half-planes.
        first_normal = [math.cos(rotation + math.pi / 2), math.sin(rotation + math.pi / 2)]
        second_normal = [math.cos(rotation + opening - math.pi / 2),
                         math.sin(rotation + opening - math.pi / 2)]
        fraction = planar_cone_fraction([[-first_normal[0], -first_normal[1]],
                                         [-second_normal[0], -second_normal[1]]])
        assert fraction == pytest.approx(opening / (2 * math.pi), abs=1e-6)

    def test_monte_carlo_agreement(self, rng):
        normals = np.array([[1.0, -2.0], [-3.0, -1.0]])
        fraction = planar_cone_fraction(normals)
        points = rng.standard_normal((20000, 2))
        hits = np.all(points @ normals.T <= 0, axis=1).mean()
        assert fraction == pytest.approx(float(hits), abs=0.02)


class TestUnions:
    def test_union_of_opposite_halfplanes_is_everything(self):
        fraction = planar_cones_union_fraction([[[1.0, 0.0]], [[-1.0, 0.0]]])
        assert fraction == pytest.approx(1.0)

    def test_union_of_disjoint_quadrants(self):
        quadrant_pp = [[-1.0, 0.0], [0.0, -1.0]]
        quadrant_nn = [[1.0, 0.0], [0.0, 1.0]]
        fraction = planar_cones_union_fraction([quadrant_pp, quadrant_nn])
        assert fraction == pytest.approx(0.5)

    def test_union_with_overlap_is_not_double_counted(self):
        half_right = [[-1.0, 0.0]]
        quadrant_pp = [[-1.0, 0.0], [0.0, -1.0]]
        fraction = planar_cones_union_fraction([half_right, quadrant_pp])
        assert fraction == pytest.approx(0.5)

    def test_union_length_full_circle(self):
        assert union_length([(0.0, 2 * math.pi)]) == pytest.approx(2 * math.pi)
        assert union_length([]) == 0.0

    def test_intersect_arcs_empty(self):
        arcs = [halfplane_arc([1.0, 0.0]), halfplane_arc([-1.0, 0.0]),
                halfplane_arc([0.0, 1.0]), halfplane_arc([0.0, -1.0])]
        assert intersect_arcs(arcs) == [] or \
            sum(length for _, length in intersect_arcs(arcs)) < 1e-9


class TestConeAngle:
    def test_right_angle(self):
        assert cone_angle_between([1.0, 0.0], [0.0, 1.0]) == pytest.approx(math.pi / 2)

    def test_rejects_zero_rays(self):
        with pytest.raises(ValueError):
            cone_angle_between([0.0, 0.0], [1.0, 0.0])
