"""Tests for the FO(+, ·, <) text parser."""

from __future__ import annotations

import pytest

from repro.certainty import certainty
from repro.datagen.intro import (
    EXPECTED_MEASURE_QUERY,
    SEGMENT,
    intro_database,
    intro_query,
    intro_schema,
)
from repro.logic.evaluation import evaluate_query
from repro.logic.formulas import (
    BaseEquality,
    Comparison,
    Exists,
    FONot,
    FOOr,
    Forall,
    RelationAtom,
)
from repro.logic.fragments import classify_query
from repro.logic.parser import FOParseError, parse_formula, parse_query
from repro.logic.terms import Sort
from repro.logic.typecheck import check_query, free_variables
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, RelationSchema


class TestParseQuery:
    def test_boolean_query(self):
        query = parse_query("exists x: num, y: num . R(x, y) and x > y")
        assert query.is_boolean
        assert isinstance(query.body, Exists)
        assert classify_query(query).conjunctive

    def test_named_query_with_head(self):
        query = parse_query("cheap(n: base) := exists p: num . Item(n, p) and p < 10")
        assert query.name == "cheap"
        assert query.arity == 1
        assert query.head[0].sort is Sort.BASE

    def test_operator_precedence(self):
        query = parse_query(
            "exists x: num . R(x, x) and x > 1 or not R(x, x) -> R(x, x)")
        # The quantifier scopes maximally; inside it, the implication binds
        # loosest, so the quantifier body is a disjunction ¬(...) ∨ R(x, x).
        assert isinstance(query.body, Exists)
        assert isinstance(query.body.body, FOOr)

    def test_arithmetic_terms_and_parentheses(self):
        query = parse_query(
            "exists x: num, y: num . R(x, y) and (x + y) * 2 <= x / y - 1")
        comparison = [atom for atom in query.body.atoms() if isinstance(atom, Comparison)]
        assert len(comparison) == 1

    def test_string_literals_and_base_equality(self):
        query = parse_query("exists s: base, p: num . Market(s, p) and s = 'seg1'")
        atoms = list(query.body.atoms())
        assert any(isinstance(atom, BaseEquality) for atom in atoms)
        negated = parse_query("exists s: base, p: num . Market(s, p) and s != 'seg1'")
        assert any(isinstance(atom, FONot) or isinstance(atom, BaseEquality)
                   for atom in negated.body.atoms())

    def test_forall_and_implication(self):
        query = parse_query(
            "forall n: base, p: num . Item(n, p) -> p >= 0")
        assert isinstance(query.body, Forall)

    def test_undeclared_variable_is_an_error(self):
        with pytest.raises(FOParseError):
            parse_query("exists x: num . R(x, y)")

    def test_sort_errors(self):
        with pytest.raises(FOParseError):
            parse_query("exists x: num, s: base . R(x, s) and s < x")
        with pytest.raises(FOParseError):
            parse_query("exists x: nonsense . R(x)")

    def test_syntax_errors(self):
        for bad in (
            "exists . R(x)",
            "exists x: num R(x)",
            "exists x: num . R(x) and",
            "exists x: num . (R(x)",
            "q(x: num := R(x)",
            "exists x: num . x ~ 1",
        ):
            with pytest.raises(FOParseError):
                parse_query(bad)

    def test_parse_formula_with_declared_free_variables(self):
        formula = parse_formula("x > y and not x = y", {"x": Sort.NUM, "y": Sort.NUM})
        names = {variable.name for variable in free_variables(formula)}
        assert names == {"x", "y"}


class TestParsedQueriesEndToEnd:
    def test_parsed_query_evaluates_like_the_dsl(self):
        schema = DatabaseSchema.of(RelationSchema.of("Item", name="base", price="num"))
        database = Database(schema)
        database.add("Item", ("pen", 2.0))
        database.add("Item", ("laptop", 900.0))
        query = parse_query("cheap(n: base) := exists p: num . Item(n, p) and p < 10")
        check_query(query, schema)
        assert evaluate_query(query, database) == {("pen",)}

    def test_parsed_intro_query_matches_the_builder_version(self):
        text = """
        competitive(s: base) := forall i: base, r: num, d: num, i2: base, p: num .
            (Products(i, s, r, d) and not Excluded(i, s) and Competition(i2, s, p))
                -> (r * d <= p and r >= 0 and d >= 0 and p >= 0)
        """
        parsed = parse_query(text)
        check_query(parsed, intro_schema())
        database = intro_database()
        from_text = certainty(parsed, database, (SEGMENT,), method="afpras",
                              epsilon=0.03, rng=0)
        from_builder = certainty(intro_query(), database, (SEGMENT,), method="afpras",
                                 epsilon=0.03, rng=0)
        assert from_text.value == pytest.approx(from_builder.value, abs=0.05)
        assert from_text.value == pytest.approx(EXPECTED_MEASURE_QUERY, abs=0.05)

    def test_relation_atom_vs_variable_ambiguity(self):
        # A declared variable followed by "(" must not be read as a relation.
        query = parse_query("exists x: num . R(x) and (x + 1) > 0")
        atoms = [atom for atom in query.body.atoms() if isinstance(atom, RelationAtom)]
        assert len(atoms) == 1
