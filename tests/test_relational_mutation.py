"""Unit tests for the MVCC storage layer and the mutation executor.

The differential harness (:mod:`tests.test_mutation_differential`) proves
the end-to-end equivalence claim statistically; these tests pin the
individual contracts it rests on: snapshot immutability, the version
chain bookkeeping, typed staging errors, incremental shard-cache
carryover, and the executor's three-valued WHERE and deterministic
fresh-null naming.
"""

from __future__ import annotations

import pytest

from repro.engine.mutate import execute_mutation
from repro.engine.sql.parser import parse_statement
from repro.relational.database import Database
from repro.relational.mutation import (
    MutationConflictError,
    MutationValidationError,
    TableDelta,
)
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import BaseNull, NumNull


def _schema() -> DatabaseSchema:
    return DatabaseSchema.of(RelationSchema.of("t", key="base", x="num"),
                             RelationSchema.of("u", key="base", y="num"))


def _database(backend: str = "columnar") -> Database:
    return Database.from_dict(_schema(), {
        "t": [("a", 1.0), ("b", 2.0), ("c", NumNull("n0"))],
        "u": [("a", 5.0), ("b", 6.0)],
    }, backend=backend)


class TestMvccSnapshots:
    @pytest.mark.parametrize("backend", ["rows", "columnar"])
    def test_commit_seals_a_new_version(self, backend):
        parent = _database(backend)
        mutation = parent.begin_mutation()
        mutation.insert("t", ("d", 4.0))
        mutation.delete("t", 1)
        sealed, deltas = mutation.commit()

        # The parent snapshot is untouched in every observable way.
        assert parent.data_version == 0
        assert parent.relation("t").tuples() == \
            (("a", 1.0), ("b", 2.0), ("c", NumNull("n0")))
        # The sealed snapshot has rebuild row order: kept rows, then tail.
        assert sealed.data_version == 1
        assert sealed.relation("t").tuples() == \
            (("a", 1.0), ("c", NumNull("n0")), ("d", 4.0))
        assert sealed.relation("u") is parent.relation("u")
        assert sealed.version_token is parent.version_token

        delta = deltas["t"]
        assert delta == TableDelta(table="t", old_length=3, appended=1,
                                   deleted_rows=(("b", 2.0),))
        assert not delta.append_only
        assert delta.touched_nulls() == frozenset()

    def test_version_bookkeeping_distinguishes_appends(self):
        parent = _database()
        mutation = parent.begin_mutation()
        mutation.insert("t", ("d", 4.0))
        appended, _ = mutation.commit()
        # Appends bump the table version but not its epoch: old row
        # indices stay valid, which is what frontier maintenance needs.
        assert appended.table_version("t") == 1
        assert appended.table_epoch("t") == 0
        assert appended.table_version("u") == 0

        mutation = appended.begin_mutation()
        mutation.delete("t", 0)
        deleted, _ = mutation.commit()
        assert deleted.table_version("t") == 2
        assert deleted.table_epoch("t") == 2

    def test_converted_databases_start_fresh_chains(self):
        parent = _database()
        assert parent.with_backend("rows").version_token \
            is not parent.version_token
        assert parent.copy().version_token is not parent.version_token
        # Re-sharding shares storage, so it keeps the chain.
        assert parent.with_shards(4).version_token is parent.version_token

    def test_touched_nulls_reports_deleted_rows_nulls(self):
        parent = _database()
        mutation = parent.begin_mutation()
        mutation.delete("t", 2)  # the row carrying NumNull("n0")
        _, deltas = mutation.commit()
        assert deltas["t"].touched_nulls() == frozenset({"n0"})

    def test_update_moves_the_row_to_the_tail(self):
        parent = _database()
        mutation = parent.begin_mutation()
        mutation.update("t", 0, ("a", 9.0))
        sealed, _ = mutation.commit()
        assert sealed.relation("t").tuples() == \
            (("b", 2.0), ("c", NumNull("n0")), ("a", 9.0))


class TestStagingErrors:
    def test_duplicate_insert_is_a_conflict(self):
        mutation = _database().begin_mutation()
        with pytest.raises(MutationConflictError):
            mutation.insert("t", ("a", 1.0))

    def test_insert_then_duplicate_insert_conflicts(self):
        mutation = _database().begin_mutation()
        mutation.insert("t", ("z", 1.0))
        with pytest.raises(MutationConflictError):
            mutation.insert("t", ("z", 1.0))

    def test_deleting_a_row_frees_its_slot_for_reinsert(self):
        mutation = _database().begin_mutation()
        mutation.delete("t", 0)
        mutation.insert("t", ("a", 1.0))  # no conflict: the row is gone

    def test_double_delete_is_a_conflict(self):
        mutation = _database().begin_mutation()
        mutation.delete("t", 0)
        with pytest.raises(MutationConflictError):
            mutation.delete("t", 0)

    def test_validation_errors(self):
        mutation = _database().begin_mutation()
        with pytest.raises(MutationValidationError):
            mutation.insert("nope", ("a", 1.0))
        with pytest.raises(MutationValidationError):
            mutation.insert("t", ("a",))  # arity
        with pytest.raises(MutationValidationError):
            mutation.insert("t", ("a", "not-numeric"))
        with pytest.raises(MutationValidationError):
            mutation.delete("t", 99)

    def test_commit_is_single_shot(self):
        mutation = _database().begin_mutation()
        mutation.insert("t", ("d", 4.0))
        mutation.commit()
        with pytest.raises(MutationValidationError):
            mutation.commit()
        with pytest.raises(MutationValidationError):
            mutation.insert("t", ("e", 5.0))


class TestShardCacheCarryover:
    def test_append_extends_only_touched_shards(self):
        parent = _database()
        before, hit = parent.table_shards("t", "key", 2)
        assert not hit
        mutation = parent.begin_mutation()
        mutation.insert("t", ("d", 4.0))
        sealed, _ = mutation.commit()

        after, hit = sealed.table_shards("t", "key", 2)
        assert hit, "append-only commit must carry the partition over"
        assert sum(len(shard.offsets) for shard in after) == 4
        # Offsets stay ascending per shard and cover exactly rows 0..3.
        covered = sorted(offset for shard in after
                         for offset in shard.offsets)
        assert covered == [0, 1, 2, 3]
        for shard in after:
            offsets = list(shard.offsets)
            assert offsets == sorted(offsets)

    def test_delete_drops_the_tables_partitions(self):
        parent = _database()
        parent.table_shards("t", "key", 2)
        parent.table_shards("u", "key", 2)
        mutation = parent.begin_mutation()
        mutation.delete("t", 0)
        sealed, _ = mutation.commit()
        _, hit_t = sealed.table_shards("t", "key", 2)
        _, hit_u = sealed.table_shards("u", "key", 2)
        assert not hit_t, "deletes shift row indices; must recompute"
        assert hit_u, "untouched tables keep their partitions"


class TestExecuteMutation:
    def test_insert_mints_deterministic_fresh_nulls(self):
        database = _database()
        statement = parse_statement(
            "INSERT INTO t VALUES ('d', NULL), (NULL, 7)")
        sealed, deltas, outcome = execute_mutation(statement, database)
        assert outcome.as_dict() == {
            "operation": "insert", "table": "t",
            "inserted": 2, "deleted": 0, "data_version": 1}
        rows = sealed.relation("t").tuples()
        # Version-1 statement, NULLs numbered in execution order.
        assert rows[3] == ("d", NumNull("m1_0"))
        assert rows[4] == (BaseNull("m1_1"), 7.0)
        assert deltas["t"].append_only

    def test_where_matches_only_certainly_true_rows(self):
        database = _database()
        statement = parse_statement("DELETE FROM t WHERE x <= 2")
        sealed, _, outcome = execute_mutation(statement, database)
        # Rows a (1.0) and b (2.0) are certainly <= 2; c carries a null
        # whose valuation is unknown, so it must survive.
        assert outcome.deleted == 2
        assert sealed.relation("t").tuples() == (("c", NumNull("n0")),)

    def test_update_arithmetic_reads_the_old_row(self):
        database = _database()
        statement = parse_statement(
            "UPDATE t SET x = x + 1 WHERE key = 'a'")
        sealed, _, outcome = execute_mutation(statement, database)
        assert outcome.inserted == 1 and outcome.deleted == 1
        assert ("a", 2.0) in sealed.relation("t").tuples()

    def test_update_over_a_null_operand_is_rejected(self):
        database = _database()
        statement = parse_statement("UPDATE t SET x = x + 1")
        with pytest.raises(MutationValidationError):
            execute_mutation(statement, database)  # row c: null + 1
        assert database.data_version == 0

    def test_fast_and_generic_matching_agree(self):
        """``column op literal`` takes a direct predicate; adding a no-op
        arithmetic term (``x + 0``) forces the generic constraint-formula
        path.  Both must match exactly the same rows."""
        schema = DatabaseSchema.of(RelationSchema.of("t", key="base",
                                                     x="num"))
        contents = {"t": [("a", 1.0), ("b", 2.0), ("c", NumNull("n0")),
                          (BaseNull("b0"), 3.0), ("a", 2.0)]}
        pairs = [
            ("x <= 2", "x + 0 <= 2"),
            ("x > 1.5", "x + 0 > 1.5"),
            ("x = 2", "x + 0 = 2"),
            ("x <> 2", "x + 0 <> 2"),
            ("2 >= x", "2 >= x + 0"),  # literal-first order swap
            ("key = 'a' AND x < 3", "key = 'a' AND x + 0 < 3"),
        ]
        for fast_where, slow_where in pairs:
            outcomes = []
            for where in (fast_where, slow_where):
                database = Database.from_dict(schema, contents,
                                              backend="columnar")
                sealed, _, outcome = execute_mutation(
                    parse_statement(f"DELETE FROM t WHERE {where}"),
                    database)
                outcomes.append((outcome.deleted,
                                 sealed.relation("t").tuples()))
            assert outcomes[0] == outcomes[1], (fast_where, slow_where)
            assert outcomes[0][0] > 0, f"{fast_where!r} must match rows"

    def test_base_null_is_certainly_distinct_from_literals(self):
        """A marked base null equals only itself: ``<>`` a concrete
        literal is certainly true, ``=`` certainly false."""
        schema = DatabaseSchema.of(RelationSchema.of("t", key="base",
                                                     x="num"))
        contents = {"t": [("a", 1.0), (BaseNull("b0"), 2.0)]}
        database = Database.from_dict(schema, contents, backend="columnar")
        sealed, _, outcome = execute_mutation(
            parse_statement("DELETE FROM t WHERE key <> 'a'"), database)
        assert outcome.deleted == 1
        assert sealed.relation("t").tuples() == (("a", 1.0),)

        database = Database.from_dict(schema, contents, backend="columnar")
        sealed, _, outcome = execute_mutation(
            parse_statement("DELETE FROM t WHERE key = 'a'"), database)
        assert outcome.deleted == 1
        assert sealed.relation("t").tuples() == ((BaseNull("b0"), 2.0),)

    def test_failed_statement_leaves_the_snapshot_untouched(self):
        database = _database()
        before = database.relation("t").tuples()
        for sql in ("INSERT INTO t VALUES ('x')",
                    "INSERT INTO t VALUES ('a', 1)",  # duplicate
                    "DELETE FROM nope",
                    "UPDATE t SET zz = 1"):
            with pytest.raises((MutationValidationError,
                                MutationConflictError)):
                execute_mutation(parse_statement(sql), database)
        assert database.relation("t").tuples() == before
        assert database.data_version == 0
