"""Tests for candidate-answer enumeration, lineage extraction and annotation."""

from __future__ import annotations

import pytest

from repro.certainty import certainty
from repro.constraints.formula import TrueFormula
from repro.engine.annotate import annotate
from repro.engine.candidates import enumerate_candidates
from repro.engine.sql.parser import parse_sql
from repro.engine.translate_sql import sql_to_query
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import BaseNull, NumNull


@pytest.fixture
def shop() -> Database:
    schema = DatabaseSchema.of(
        RelationSchema.of("Products", id="base", seg="base", rrp="num", dis="num"),
        RelationSchema.of("Market", seg="base", rrp="num", dis="num"),
    )
    database = Database(schema)
    database.add("Products", ("p1", "tools", 10.0, 0.5))        # discounted price 5
    database.add("Products", ("p2", "tools", NumNull("rrp2"), 0.5))
    database.add("Products", ("p3", "garden", 20.0, 1.0))
    database.add("Products", (BaseNull("pid"), "garden", 4.0, 1.0))
    database.add("Market", ("tools", 8.0, 1.0))                  # market price 8
    database.add("Market", ("garden", 10.0, 0.5))                # market price 5
    return database


ADVANTAGE = ("SELECT P.id FROM Products P, Market M "
             "WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis")


class TestCandidateEnumeration:
    def test_known_rows_get_ground_lineage(self, shop):
        candidates = enumerate_candidates(parse_sql(ADVANTAGE), shop)
        by_id = {candidate.values[0]: candidate for candidate in candidates}
        # p1: 10*0.5=5 <= 8 certainly; its lineage is the constant True.
        assert "p1" in by_id
        assert isinstance(by_id["p1"].lineage.formula, TrueFormula)
        # p3: 20*1.0=20 > 5: definitely not an answer, so it is not a candidate.
        assert "p3" not in by_id
        # p2 depends on the null rrp2: candidate with a non-trivial lineage.
        assert "p2" in by_id
        assert set(by_id["p2"].lineage.relevant_variables) == {"z_rrp2"}
        # The base-null product joins on seg and satisfies 4 <= 5: certain.
        assert BaseNull("pid") in by_id

    def test_lineage_constraints_have_the_right_truth_values(self, shop):
        candidates = enumerate_candidates(parse_sql(ADVANTAGE), shop)
        lineage = next(candidate.lineage for candidate in candidates
                       if candidate.values[0] == "p2")
        # p2 is an answer iff rrp2 * 0.5 <= 8, i.e. rrp2 <= 16.
        assert lineage.formula.evaluate({"z_rrp2": 10.0})
        assert not lineage.formula.evaluate({"z_rrp2": 20.0})

    def test_base_null_joins_only_with_itself(self):
        schema = DatabaseSchema.of(
            RelationSchema.of("L", key="base", v="num"),
            RelationSchema.of("R", key="base", w="num"),
        )
        database = Database(schema)
        database.add("L", (BaseNull("k"), 1.0))
        database.add("L", ("known", 2.0))
        database.add("R", (BaseNull("k"), 3.0))
        database.add("R", ("known", 4.0))
        database.add("R", (BaseNull("other"), 5.0))
        select = parse_sql("SELECT L.key, R.w FROM L, R WHERE L.key = R.key")
        candidates = enumerate_candidates(select, database)
        values = {candidate.values for candidate in candidates}
        assert (BaseNull("k"), 3.0) in values
        assert ("known", 4.0) in values
        assert len(values) == 2

    def test_limit_counts_distinct_candidates(self, shop):
        select = parse_sql(ADVANTAGE + " LIMIT 2")
        candidates = enumerate_candidates(select, shop)
        assert len(candidates) == 2
        overridden = enumerate_candidates(select, shop, limit=1)
        assert len(overridden) == 1

    def test_multiple_witnesses_produce_a_disjunction(self):
        schema = DatabaseSchema.of(
            RelationSchema.of("T", id="base", v="num"),
            RelationSchema.of("U", w="num"),
        )
        database = Database(schema)
        database.add("T", ("a", NumNull("n")))
        database.add("U", (5.0,))
        database.add("U", (10.0,))
        select = parse_sql("SELECT T.id FROM T, U WHERE T.v <= U.w")
        candidates = enumerate_candidates(select, database)
        assert len(candidates) == 1
        candidate = candidates[0]
        assert candidate.witnesses == 2
        # The candidate holds iff n <= 5 or n <= 10, i.e. iff n <= 10.
        assert candidate.lineage.formula.evaluate({"z_n": 7.0})
        assert not candidate.lineage.formula.evaluate({"z_n": 11.0})

    def test_division_in_conditions(self):
        schema = DatabaseSchema.of(RelationSchema.of("O", id="base", q="num", dis="num"))
        database = Database(schema)
        database.add("O", ("o1", 2.0, NumNull("d")))
        select = parse_sql("SELECT O.id FROM O WHERE O.dis / O.q >= 3")
        candidates = enumerate_candidates(select, database)
        assert len(candidates) == 1
        lineage = candidates[0].lineage
        assert lineage.formula.evaluate({"z_d": 7.0})
        assert not lineage.formula.evaluate({"z_d": 5.0})

    def test_select_star_projects_all_columns(self, shop):
        select = parse_sql("SELECT * FROM Market")
        candidates = enumerate_candidates(select, shop)
        assert len(candidates) == 2
        assert len(candidates[0].values) == 3
        assert candidates[0].columns == ("M.seg", "M.rrp", "M.dis") or \
            candidates[0].columns == ("Market.seg", "Market.rrp", "Market.dis")


class TestColumnarBackend:
    """The vectorized engine on the same fixtures as the reference path."""

    def _both(self, sql, database, **kwargs):
        select = parse_sql(sql) if isinstance(sql, str) else sql
        reference = enumerate_candidates(select, database, backend="rows", **kwargs)
        columnar = enumerate_candidates(
            select, database.with_backend("columnar"), **kwargs)
        return reference, columnar

    def _assert_equal(self, reference, columnar):
        assert [c.values for c in reference] == [c.values for c in columnar]
        assert [c.witnesses for c in reference] == [c.witnesses for c in columnar]
        assert [c.lineage.formula for c in reference] == \
            [c.lineage.formula for c in columnar]

    def test_shop_fixture_agrees(self, shop):
        reference, columnar = self._both(ADVANTAGE, shop)
        self._assert_equal(reference, columnar)
        by_id = {candidate.values[0]: candidate for candidate in columnar}
        assert isinstance(by_id["p1"].lineage.formula, TrueFormula)
        assert set(by_id["p2"].lineage.relevant_variables) == {"z_rrp2"}
        assert "p3" not in by_id

    def test_explicit_backend_converts_row_database(self, shop):
        columnar = enumerate_candidates(parse_sql(ADVANTAGE), shop,
                                        backend="columnar")
        reference = enumerate_candidates(parse_sql(ADVANTAGE), shop)
        self._assert_equal(reference, columnar)

    def test_unknown_backend_rejected(self, shop):
        with pytest.raises(ValueError):
            enumerate_candidates(parse_sql(ADVANTAGE), shop, backend="arrow")

    def test_division_and_bag_semantics_agree(self, shop):
        sql = ("SELECT P.id FROM Products P, Market M "
               "WHERE P.seg = M.seg AND P.rrp / M.rrp <= P.dis")
        for group_witnesses in (True, False):
            reference, columnar = self._both(sql, shop,
                                             group_witnesses=group_witnesses)
            self._assert_equal(reference, columnar)

    def test_generated_sales_database_agrees(self, tiny_sales_database):
        from repro.datagen.experiments import EXPERIMENT_QUERIES
        for sql in EXPERIMENT_QUERIES.values():
            reference, columnar = self._both(sql, tiny_sales_database)
            self._assert_equal(reference, columnar)

    def test_oversized_cross_join_falls_back_to_the_row_oracle(self, monkeypatch):
        """A step past the eager pair bound delegates to the row engine.

        The eager engine materialises whole pair-index arrays, so an
        unselective step (here a cross join) must hand over to the
        early-exiting reference path instead of allocating the full
        product; answers are identical either way.
        """
        import repro.engine.vectorized as vectorized
        schema = DatabaseSchema.of(
            RelationSchema.of("L", a="base", v="num"),
            RelationSchema.of("R", b="base", w="num"),
        )
        database = Database(schema)
        for index in range(40):
            database.add("L", (f"l{index}", float(index)))
            database.add("R", (f"r{index}", float(index)))
        select = parse_sql("SELECT L.a FROM L, R LIMIT 3")
        reference = enumerate_candidates(select, database)
        monkeypatch.setattr(vectorized, "_MAX_FRONTIER_PAIRS", 100)
        columnar = enumerate_candidates(select, database.with_backend("columnar"))
        assert [c.values for c in reference] == [c.values for c in columnar]
        assert [c.witnesses for c in reference] == [c.witnesses for c in columnar]


class TestAnnotation:
    def test_annotate_matches_direct_certainty(self, shop):
        answers = annotate(ADVANTAGE, shop, epsilon=0.03, method="afpras", rng=0)
        by_id = {answer.values[0]: answer for answer in answers}
        assert by_id["p1"].certainty.value == 1.0
        # p2 is an answer iff rrp2 <= 16; asymptotically that is a half-line: 1/2.
        assert by_id["p2"].certainty.value == pytest.approx(0.5, abs=0.05)

    def test_annotation_agrees_with_query_level_measure(self, shop):
        select = parse_sql(ADVANTAGE)
        query, _ = sql_to_query(select, shop.schema)
        answers = annotate(select, shop, epsilon=0.03, method="afpras", rng=0)
        for answer in answers:
            if answer.values[0] in ("p1", "p2"):
                reference = certainty(query, shop, answer.values, method="afpras",
                                      epsilon=0.03, rng=1)
                assert answer.certainty.value == pytest.approx(reference.value, abs=0.06)

    def test_annotate_accepts_exact_method(self, shop):
        answers = annotate(ADVANTAGE, shop, method="auto", rng=0)
        assert all(0.0 <= answer.certainty.value <= 1.0 for answer in answers)
        assert any(answer.certainty.method == "exact" for answer in answers)

    def test_as_dict_labels(self, shop):
        answers = annotate(ADVANTAGE + " LIMIT 1", shop, rng=0)
        assert list(answers[0].as_dict().keys()) == ["P.id"]
