"""Tests for the ``repro.client`` library (sync and async)."""

from __future__ import annotations

import asyncio

import pytest

from repro.client import (
    AdaptiveUpdateEvent,
    AsyncReproClient,
    ClientError,
    QueryResult,
    ReproClient,
    ServerError,
)
from repro.datagen.experiments import ExperimentScale, generate_sales_database
from repro.server import EmbeddedServer
from repro.service import AnnotationService, ServiceOptions

SQL = "SELECT M.seg FROM Market M WHERE M.rrp >= 0 LIMIT 3"


@pytest.fixture(scope="module")
def server():
    scale = ExperimentScale(products=30, orders=30, markets=6, null_rate=0.2)
    database = generate_sales_database(scale, rng=1)
    service = AnnotationService(database, ServiceOptions(epsilon=0.1, seed=5))
    with EmbeddedServer(service) as embedded:
        yield embedded


class TestSyncClient:
    def test_connect_refused_raises_client_error(self):
        with pytest.raises(ClientError):
            ReproClient("127.0.0.1", 1)  # reserved port, nothing listens

    def test_query_decodes_answers(self, server):
        with ReproClient(server.host, server.port) as client:
            result = client.query(SQL, seed=5)
        assert isinstance(result, QueryResult)
        assert result.answers
        answer = result.answers[0]
        assert answer.columns == ("M.seg",)
        assert 0.0 <= answer.certainty.value <= 1.0
        assert answer.lineage_digest is not None
        assert result.stats["candidates"] == len(result.answers)

    def test_remote_equals_local(self, server):
        local = server.app.service.submit(SQL, seed=5)
        with ReproClient(server.host, server.port) as client:
            remote = client.query(SQL, seed=5)
        assert [a.values for a in remote.answers] == \
            [a.values for a in local.answers]
        assert [a.certainty.value for a in remote.answers] == \
            [a.certainty.value for a in local.answers]
        assert [a.lineage_digest for a in remote.answers] == \
            [a.lineage_digest for a in local.answers]

    def test_stream_yields_updates_then_result(self, server):
        with ReproClient(server.host, server.port) as client:
            events = list(client.stream(
                "SELECT P.id FROM Products P WHERE P.rrp <= 40 LIMIT 3",
                epsilon=0.05, adaptive=True, seed=2))
        assert isinstance(events[-1], QueryResult)
        assert all(isinstance(event, AdaptiveUpdateEvent)
                   for event in events[:-1])

    def test_query_on_update_callback(self, server):
        # A fresh seed: an identical warm request would be answered from
        # the certainty cache with nothing left to stream.
        seen: list = []
        with ReproClient(server.host, server.port) as client:
            result = client.query(
                "SELECT P.id FROM Products P WHERE P.rrp <= 40 LIMIT 3",
                epsilon=0.05, adaptive=True, seed=3, on_update=seen.append)
        assert result.answers
        assert seen and all(isinstance(event, AdaptiveUpdateEvent)
                            for event in seen)

    def test_abandoned_stream_does_not_poison_the_connection(self, server):
        """Regression: breaking out of ``stream`` left unread frames on the
        socket, so the next request failed with an id mismatch."""
        with ReproClient(server.host, server.port) as client:
            for event in client.stream(
                    "SELECT P.id FROM Products P WHERE P.rrp <= 40 LIMIT 3",
                    epsilon=0.05, adaptive=True, seed=6):
                break  # abandon mid-stream; close() must drain the rest
            result = client.query(SQL, seed=5)
        assert result.answers

    def test_server_error_code_surfaces(self, server):
        with ReproClient(server.host, server.port) as client:
            with pytest.raises(ServerError) as excinfo:
                client.query("SELEC nonsense")
            assert excinfo.value.code == "invalid_query"
            # The connection stays usable after a query error.
            assert client.ping()

    def test_probe_helpers(self, server):
        with ReproClient(server.host, server.port) as client:
            assert client.ping()
            health = client.health()
            assert health["status"] in ("ok", "draining")
            stats = client.stats()
            assert "server" in stats and "service" in stats


class TestAsyncClient:
    def test_connect_refused_raises_client_error(self):
        async def attempt():
            await AsyncReproClient.connect("127.0.0.1", 1)

        with pytest.raises(ClientError):
            asyncio.run(attempt())

    def test_query_matches_sync_client(self, server):
        with ReproClient(server.host, server.port) as sync_client:
            expected = sync_client.query(SQL, seed=5)

        async def run():
            client = await AsyncReproClient.connect(server.host, server.port)
            async with client:
                return await client.query(SQL, seed=5)

        result = asyncio.run(run())
        assert [a.values for a in result.answers] == \
            [a.values for a in expected.answers]
        assert [a.certainty.value for a in result.answers] == \
            [a.certainty.value for a in expected.answers]

    def test_stream_is_async_iterable(self, server):
        async def run():
            client = await AsyncReproClient.connect(server.host, server.port)
            async with client:
                return [event async for event in client.stream(
                    "SELECT P.id FROM Products P WHERE P.rrp <= 40 LIMIT 3",
                    epsilon=0.05, adaptive=True, seed=4)]

        events = asyncio.run(run())
        assert isinstance(events[-1], QueryResult)
        assert any(isinstance(event, AdaptiveUpdateEvent)
                   for event in events[:-1])

    def test_abandoned_stream_releases_the_request_lock(self, server):
        """Regression: an abandoned async stream held the per-connection
        lock forever, deadlocking the next request."""
        async def run():
            client = await AsyncReproClient.connect(server.host, server.port)
            async with client:
                stream = client.stream(
                    "SELECT P.id FROM Products P WHERE P.rrp <= 40 LIMIT 3",
                    epsilon=0.05, adaptive=True, seed=7)
                async for event in stream:
                    break
                await stream.aclose()  # drains and releases the lock
                return await client.query(SQL, seed=5)

        result = asyncio.run(run())
        assert result.answers

    def test_probe_helpers(self, server):
        async def run():
            client = await AsyncReproClient.connect(server.host, server.port)
            async with client:
                return (await client.ping(), await client.health(),
                        await client.stats())

        pong, health, stats = asyncio.run(run())
        assert pong
        assert health["status"] in ("ok", "draining")
        assert "server" in stats
