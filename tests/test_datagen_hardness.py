"""Tests for the data generators and the executable hardness reductions."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.certainty import afpras_formula_measure, certainty, exact_order_measure
from repro.constraints.translate import translate
from repro.datagen.experiments import (
    EXPERIMENT_QUERIES,
    FIGURE1_EPSILONS,
    ExperimentScale,
    generate_sales_database,
    sales_schema,
)
from repro.datagen.generic import ColumnSpec, TableSpec, generate_database
from repro.datagen.intro import intro_database, intro_query, intro_schema
from repro.engine import annotate, parse_sql
from repro.engine.translate_sql import sql_to_query
from repro.hardness import (
    Literal,
    PropositionalCNF,
    PropositionalDNF,
    cnf_reduction,
    count_satisfying_assignments,
    diophantine_query,
    dnf_reduction,
    has_integer_root_within,
)
from repro.constraints.polynomials import Polynomial
from repro.logic.typecheck import check_query


class TestGenericGenerator:
    def test_generates_requested_rows_and_nulls(self):
        schema = sales_schema()
        specs = {"Market": TableSpec(rows=50, columns={
            "seg": ColumnSpec(choices=("a", "b")),
            "rrp": ColumnSpec(uniform=(1.0, 10.0), null_rate=0.5),
            "dis": ColumnSpec(uniform=(0.0, 1.0)),
        })}
        database = generate_database(schema, specs, rng=0)
        assert len(database.relation("Market")) == 50
        assert len(database.relation("Products")) == 0
        assert 5 <= len(database.num_nulls()) <= 45

    def test_reproducible_with_seed(self):
        schema = sales_schema()
        specs = {"Market": TableSpec(rows=20, columns={
            "seg": ColumnSpec(choices=("a", "b")),
            "rrp": ColumnSpec(uniform=(1.0, 10.0), null_rate=0.2),
            "dis": ColumnSpec(serial="d"),
        })}
        with pytest.raises(Exception):
            # serial columns produce strings, which are invalid in a numeric column
            generate_database(schema, specs, rng=1)
        specs["Market"].columns["dis"] = ColumnSpec(uniform=(0.0, 1.0))
        first = generate_database(schema, specs, rng=1)
        second = generate_database(schema, specs, rng=1)
        assert set(first.relation("Market").tuples()) == set(second.relation("Market").tuples())

    def test_missing_column_spec_is_an_error(self):
        schema = sales_schema()
        with pytest.raises(ValueError):
            generate_database(schema, {"Market": TableSpec(rows=1, columns={})}, rng=0)

    def test_column_spec_validation(self):
        with pytest.raises(ValueError):
            ColumnSpec()
        with pytest.raises(ValueError):
            ColumnSpec(choices=("a",), uniform=(0.0, 1.0))
        with pytest.raises(ValueError):
            ColumnSpec(choices=("a",), null_rate=1.5)


class TestExperimentWorkload:
    def test_scale_presets(self):
        assert ExperimentScale.tiny().total_tuples < ExperimentScale().total_tuples
        assert ExperimentScale.paper().total_tuples == pytest.approx(200_000, rel=0.05)
        assert len(FIGURE1_EPSILONS) == 19
        assert FIGURE1_EPSILONS[0] == pytest.approx(0.01)
        assert FIGURE1_EPSILONS[-1] == pytest.approx(0.1)

    def test_generated_database_matches_schema_and_scale(self, tiny_sales_database):
        scale = ExperimentScale.tiny()
        assert tiny_sales_database.total_tuples() == scale.total_tuples
        assert len(tiny_sales_database.num_nulls()) > 0

    def test_experiment_queries_parse_translate_and_annotate(self, tiny_sales_database):
        for sql in EXPERIMENT_QUERIES.values():
            select = parse_sql(sql)
            query, _ = sql_to_query(select, tiny_sales_database.schema)
            check_query(query, tiny_sales_database.schema)
            answers = annotate(sql, tiny_sales_database, epsilon=0.1, rng=0)
            assert all(0.0 <= answer.certainty.value <= 1.0 for answer in answers)


class TestIntroWorkload:
    def test_schema_and_instance(self):
        database = intro_database()
        assert set(database.relation_names()) == {"Products", "Competition", "Excluded"}
        assert len(database.num_nulls()) == 2
        assert len(database.base_nulls()) == 1
        assert intro_schema().relation("Products").arity == 4

    def test_query_typechecks(self):
        check_query(intro_query(), intro_schema())


class TestCountingReductions:
    @pytest.mark.parametrize("terms", [
        ((Literal("x1"),),),
        ((Literal("x1"), Literal("x2")), (Literal("x2", False), Literal("x3")),),
        ((Literal("x1"), Literal("x1", False)),),
    ])
    def test_dnf_reduction_measure_counts_models(self, terms):
        formula = PropositionalDNF(terms=terms)
        reduction = dnf_reduction(formula)
        expected = Fraction(count_satisfying_assignments(formula), reduction.denominator)
        assert exact_order_measure(reduction.translation()) == expected

    @pytest.mark.parametrize("clauses", [
        ((Literal("x1"), Literal("x2")), (Literal("x1", False), Literal("x3")),),
        ((Literal("x1"),), (Literal("x1", False),),),
        ((Literal("x1"), Literal("x2"), Literal("x3")),),
    ])
    def test_cnf_reduction_measure_counts_models(self, clauses):
        formula = PropositionalCNF(clauses=clauses)
        reduction = cnf_reduction(formula)
        expected = Fraction(count_satisfying_assignments(formula), reduction.denominator)
        assert exact_order_measure(reduction.translation()) == expected

    def test_direct_formula_agrees_with_generic_translation_on_tiny_input(self):
        formula = PropositionalDNF(terms=((Literal("x1"),),))
        reduction = dnf_reduction(formula)
        generic = translate(reduction.query, reduction.database)
        via_query = certainty(reduction.query, reduction.database, method="afpras",
                              epsilon=0.05, rng=0, translation=generic)
        direct, _ = afpras_formula_measure(reduction.formula,
                                           reduction.translation().relevant_variables,
                                           epsilon=0.05, rng=0)
        assert via_query.value == pytest.approx(direct, abs=0.08)
        assert direct == pytest.approx(0.5, abs=0.05)

    def test_query_shapes(self):
        dnf = dnf_reduction(PropositionalDNF(terms=((Literal("a"), Literal("b")),)))
        from repro.logic.fragments import classify_query

        assert classify_query(dnf.query).conjunctive
        cnf = cnf_reduction(PropositionalCNF(clauses=((Literal("a"),),)))
        assert not classify_query(cnf.query).conjunctive
        with pytest.raises(ValueError):
            dnf_reduction(PropositionalDNF(terms=((Literal("a"),) * 4,)))

    def test_propositional_toolkit(self):
        formula = PropositionalCNF(clauses=((Literal("a"), Literal("b", False)),))
        assert formula.variables() == ("a", "b")
        assert count_satisfying_assignments(formula) == 3
        assert Literal("a").negate() == Literal("a", False)
        with pytest.raises(ValueError):
            PropositionalDNF(terms=((),))


class TestDiophantine:
    def test_gadget_construction_and_measure(self):
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        polynomial = x * x + y * y - 3.0
        query, database = diophantine_query(polynomial)
        check_query(query, database.schema)
        assert not has_integer_root_within(polynomial, bound=5)
        # The measure is 1: the zero set of a non-zero polynomial is negligible.
        result = certainty(query, database, method="afpras", epsilon=0.05, rng=0)
        assert result.value == pytest.approx(1.0, abs=0.05)

    def test_root_search(self):
        x, y = Polynomial.variable("x"), Polynomial.variable("y")
        assert has_integer_root_within(x * x - 4.0, bound=3)
        assert has_integer_root_within(x * x - 2.0 * (y * y), bound=2)  # (0, 0)
        assert not has_integer_root_within(x * x - 2.0, bound=10)
        with pytest.raises(ValueError):
            has_integer_root_within(x, bound=-1)

    def test_requires_variables(self):
        with pytest.raises(ValueError):
            diophantine_query(Polynomial.constant(1.0))
