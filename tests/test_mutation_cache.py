"""Stale-cache detector: delta-driven invalidation never serves stale state.

The service keeps three mutation-sensitive caches: plan/candidate caches
(keyed by per-table versions), the frontier cache (epoch-checked), and
the certainty result cache with recorded lineage provenance (evicted
when a mutation deletes rows whose nulls the cached lineage mentions).
These property tests mutate *exactly* the rows a cached result's lineage
references and assert that

* the next identical query reflects the new data -- its answers equal a
  fresh service's answers on the same snapshot content, bit for bit;
* a query whose lineage does not touch the mutated rows stays warm
  (served from the result cache, no new estimate computed);
* the stats counters account for every eviction and retention.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import NumNull
from repro.service.service import AnnotationService, ServiceOptions


def _schema() -> DatabaseSchema:
    return DatabaseSchema.of(RelationSchema.of("t", key="base", x="num"),
                             RelationSchema.of("u", key="base", y="num"))


def _database(backend: str = "columnar") -> Database:
    # One null per table, so each query's lineage references exactly one
    # table's rows and cross-eviction is observable.
    return Database.from_dict(_schema(), {
        "t": [("a", 1.0), ("b", NumNull("n0")), ("c", 4.0)],
        "u": [("a", NumNull("n1")), ("b", 6.0)],
    }, backend=backend)


def _service(database: Database) -> AnnotationService:
    return AnnotationService(database, ServiceOptions(seed=7, epsilon=0.2))


Q_T = "SELECT t.key FROM t WHERE t.x > 2"
Q_U = "SELECT u.key FROM u WHERE u.y > 3"


def _snapshot(answers):
    return [(answer.values, answer.certainty.value, answer.witnesses,
             answer.lineage_digest) for answer in answers]


class TestDeltaDrivenInvalidation:
    @pytest.mark.parametrize("backend", ["rows", "columnar"])
    def test_mutating_referenced_rows_evicts_only_their_results(self, backend):
        service = _service(_database(backend))
        service.submit(Q_T)
        service.submit(Q_U)
        computed_before = service.stats().estimates_computed

        # Delete the row whose null Q_T's cached lineage references.
        service.mutate("DELETE FROM t WHERE key = 'b'")
        stats = service.stats()
        assert stats.results_evicted == 1
        assert stats.results_retained >= 1

        # Q_U's lineage references only u rows: served warm, no recompute.
        service.submit(Q_U)
        assert service.stats().estimates_computed == computed_before

    def test_next_query_never_replays_stale_certainty(self):
        service = _service(_database())
        before = _snapshot(service.submit(Q_T).answers)
        assert any(0.0 < certainty < 1.0
                   for _, certainty, _, _ in before), \
            "the case must have an uncertain answer to make staleness visible"

        # Pin down the null: the certainly-uncertain row becomes concrete.
        service.mutate("UPDATE t SET x = 9 WHERE key = 'b'")
        after = service.submit(Q_T).answers
        fresh = _service(_rebuild(service)).submit(Q_T)
        assert _snapshot(after) == _snapshot(fresh.answers)
        assert all(answer.certainty.value == 1.0 for answer in after), \
            "every surviving answer is now certain; stale cache would not be"

    def test_randomised_mutations_match_fresh_service(self):
        """Property form: after any script, warm service == cold service."""
        rng = np.random.default_rng(42)
        statements = (
            "INSERT INTO t VALUES ('d', 0.5)",
            "INSERT INTO t VALUES ('e', NULL)",
            "DELETE FROM t WHERE key = 'b'",
            "UPDATE t SET x = x + 1 WHERE key = 'a'",
            "DELETE FROM u WHERE y > 3",
            "UPDATE u SET y = NULL WHERE key = 'b'",
        )
        for trial in range(8):
            service = _service(_database())
            service.submit(Q_T)
            service.submit(Q_U)
            script = rng.choice(len(statements), size=3, replace=False)
            for index in script:
                try:
                    service.mutate(statements[int(index)])
                except ValueError:
                    continue  # conflicts depend on order; skipping is fine
            for sql in (Q_T, Q_U):
                warm = service.submit(sql).answers
                cold = _service(_rebuild(service)).submit(sql).answers
                assert _snapshot(warm) == _snapshot(cold), \
                    f"trial {trial}: {sql!r} after {list(script)}"

    def test_untouched_table_plans_stay_warm(self):
        service = _service(_database())
        service.submit(Q_T)
        service.submit(Q_U)
        candidates = {c.name: c for c in service.stats().caches}["candidates"]
        misses_before = candidates.misses

        service.mutate("INSERT INTO t VALUES ('z', 7)")
        service.submit(Q_U)  # untouched table: plan cache key unchanged
        candidates = {c.name: c for c in service.stats().caches}["candidates"]
        assert candidates.misses == misses_before
        service.submit(Q_T)  # touched table: version in the key moved
        candidates = {c.name: c for c in service.stats().caches}["candidates"]
        assert candidates.misses == misses_before + 1

    def test_frontier_cache_counters_track_eligibility(self):
        service = _service(_database())
        service.submit(Q_T)  # miss: cold
        service.submit(Q_T)  # warm result cache, but same snapshot
        service.mutate("INSERT INTO t VALUES ('z', 7)")
        service.submit(Q_T)  # hit: append-only, delta-maintained
        service.mutate("DELETE FROM t WHERE key = 'z'")
        service.submit(Q_T)  # miss: epoch moved past the cached entry
        frontier = {c.name: c for c in service.stats().caches}["frontier"]
        assert frontier.hits >= 1
        assert frontier.misses >= 2

    def test_invalidate_clears_provenance_and_frontier(self):
        service = _service(_database())
        service.submit(Q_T)
        service.invalidate()
        stats = service.stats()
        assert stats.results_retained == 0
        frontier = {c.name: c for c in stats.caches}["frontier"]
        assert frontier.size == 0


def _rebuild(service: AnnotationService) -> Database:
    """The service's current snapshot content on a fresh, cacheless chain."""
    database = service.database
    return Database.from_dict(
        database.schema,
        {name: database.relation(name).tuples()
         for name in database.relation_names()},
        backend=database.backend)
