"""Tests for the observability layer: metrics, tracing, slow log, console.

The acceptance-critical properties:

* the metrics registry renders valid Prometheus text exposition that its
  own parser (used by ``repro top``) reads back losslessly;
* request tracing never perturbs answers -- traced runs are **bit
  identical** to untraced runs on the plain, fused, and adaptive paths;
* concurrent submits never expose torn or decreasing counters to a
  stats/metrics poller;
* the operator console renders frames and windowed quantiles from canned
  samples (no sockets involved).
"""

from __future__ import annotations

import io
import json
import logging
import threading
import urllib.request

import pytest

from repro.obs import (
    DEFAULT_WINDOWS,
    LATENCY_BUCKETS,
    NULL_RECORDER,
    NULL_TRACE,
    SLO,
    AlertEvaluator,
    ConsoleSample,
    JsonFormatter,
    MetricsRegistry,
    Recorder,
    SlowQueryLog,
    TimeSeriesStore,
    Trace,
    TraceContext,
    TraceStore,
    collect_profile,
    configure_logging,
    disabled_report,
    extract_context,
    format_traceparent,
    get_logger,
    histogram_quantile,
    history_quantiles,
    inject_context,
    merge_collapsed,
    new_context,
    parse_collapsed,
    parse_exposition,
    parse_traceparent,
    profile_payload,
    qps_series,
    render_collapsed,
    render_frame,
    render_stats_tables,
    run_top,
    server_slos,
    snapshot_payload,
    spans_to_chrome,
    sparkline,
    window_quantiles,
)
from repro.obs.console import counter_rate_series
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import NumNull
from repro.server import EmbeddedServer
from repro.service import AnnotationService, ServiceOptions


@pytest.fixture
def shop() -> Database:
    schema = DatabaseSchema.of(
        RelationSchema.of("Products", id="base", seg="base", rrp="num", dis="num"),
        RelationSchema.of("Market", seg="base", rrp="num", dis="num"),
    )
    database = Database(schema)
    database.add("Products", ("p1", "tools", 10.0, 0.5))
    database.add("Products", ("p2", "tools", NumNull("rrp2"), 0.5))
    database.add("Products", ("p3", "tools", NumNull("rrp3"), 0.5))
    database.add("Products", ("p4", "garden", 4.0, 1.0))
    database.add("Market", ("tools", 8.0, 1.0))
    database.add("Market", ("garden", 10.0, 0.5))
    return database


ADVANTAGE = ("SELECT P.id FROM Products P, Market M "
             "WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis")

SIMPLE = "SELECT P.id FROM Products P WHERE P.rrp <= 12"


def _certainties(response) -> list[float]:
    return [answer.certainty.value for answer in response.answers]


class TestMetricsRegistry:
    def test_counter_roundtrips_through_exposition(self):
        registry = MetricsRegistry()
        registry.counter("repro_widgets_total", "widgets").inc()
        registry.counter("repro_widgets_total", "widgets").inc(2.0)
        text = registry.render()
        assert "# TYPE repro_widgets_total counter" in text
        assert "# HELP repro_widgets_total widgets" in text
        parsed = parse_exposition(text)
        assert parsed[("repro_widgets_total", ())] == 3.0

    def test_labelled_children_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_ops_total", "ops", labelnames=("op",))
        counter.labels(op="read").inc(5)
        counter.labels(op="write").inc()
        parsed = parse_exposition(registry.render())
        assert parsed[("repro_ops_total", (("op", "read"),))] == 5.0
        assert parsed[("repro_ops_total", (("op", "write"),))] == 1.0

    def test_get_or_create_returns_the_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.gauge("repro_depth", "queue depth")
        second = registry.gauge("repro_depth", "queue depth")
        assert first is second
        with pytest.raises(ValueError):
            registry.counter("repro_depth", "now a counter")

    def test_histogram_renders_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_lat_seconds", "latency")
        histogram.observe(0.0005)
        histogram.observe(0.0005)
        histogram.observe(1e9)  # beyond the largest finite bucket
        parsed = parse_exposition(registry.render())
        assert parsed[("repro_lat_seconds_count", ())] == 3.0
        assert parsed[("repro_lat_seconds_bucket", (("le", "+Inf"),))] == 3.0
        # cumulative: every bound >= 0.0008 already holds both fast samples
        finite = [(float(labels[0][1]), value)
                  for (name, labels), value in parsed.items()
                  if name == "repro_lat_seconds_bucket"
                  and labels[0][1] != "+Inf"]
        assert all(value >= 2.0 for bound, value in finite if bound >= 0.0008)

    def test_histogram_quantile_interpolates(self):
        # 100 samples uniform in the (0.1, 0.2] bucket: the median must
        # land inside that bucket, between the bounds.
        buckets = [(0.1, 0.0), (0.2, 100.0), (float("inf"), 100.0)]
        median = histogram_quantile(buckets, 0.5)
        assert 0.1 < median <= 0.2

    def test_quantile_of_empty_histogram_is_none(self):
        assert histogram_quantile([(0.1, 0.0), (float("inf"), 0.0)], 0.5) is None

    def test_latency_buckets_are_log_spaced_and_sorted(self):
        assert LATENCY_BUCKETS == tuple(sorted(LATENCY_BUCKETS))
        ratios = {round(b / a, 6) for a, b in zip(LATENCY_BUCKETS,
                                                  LATENCY_BUCKETS[1:])}
        assert ratios == {2.0}

    def test_collectors_run_at_scrape_time_only(self):
        registry = MetricsRegistry()
        calls = []

        def collector():
            calls.append(1)
            from repro.obs.metrics import counters_family
            return [counters_family("repro_lazy_total", "lazy", [({}, 7.0)])]

        registry.register_collector(collector)
        assert calls == []
        parsed = parse_exposition(registry.render())
        assert parsed[("repro_lazy_total", ())] == 7.0
        assert calls == [1]

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_q_total", "q", labelnames=("sql",))
        counter.labels(sql='say "hi"\nplease\\now').inc()
        text = registry.render()
        parsed = parse_exposition(text)
        (key,) = [k for k in parsed if k[0] == "repro_q_total"]
        assert dict(key[1])["sql"] == 'say "hi"\nplease\\now'


class TestTrace:
    def test_spans_nest_and_total_by_name(self):
        trace = Trace()
        with trace.span("plan") as plan:
            with trace.span("estimate", parent=plan, lineage="abc"):
                pass
            with trace.span("estimate", parent=plan):
                pass
        names = [span.name for span in trace.spans]
        assert names.count("estimate") == 2 and "plan" in names
        totals = trace.phase_totals()
        assert set(totals) == {"plan", "estimate"}
        assert all(seconds >= 0.0 for seconds in totals.values())

    def test_chrome_export_shape(self, tmp_path):
        trace = Trace("request")
        with trace.span("parse", sql="SELECT 1"):
            pass
        path = trace.write_chrome(tmp_path / "trace.json")
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert complete and complete[0]["name"] == "parse"
        assert complete[0]["dur"] >= 0
        assert complete[0]["args"]["sql"] == "SELECT 1"
        assert any(e["ph"] == "M" for e in events)  # process-name metadata

    def test_exceptions_still_record_the_span(self):
        trace = Trace()
        with pytest.raises(RuntimeError):
            with trace.span("estimate"):
                raise RuntimeError("boom")
        (span,) = trace.spans
        assert span.attributes.get("error") == "RuntimeError"

    def test_record_after_the_fact(self):
        trace = Trace()
        trace.record("rung", 0.25, 0.5, None, stage=1)
        (span,) = trace.spans
        assert span.name == "rung"
        assert span.duration == pytest.approx(0.25)

    def test_null_trace_is_inert(self):
        with NULL_TRACE.span("anything", key="value") as span:
            span.set("more", 1)
        assert NULL_TRACE.phase_totals() == {}


class TestSlowQueryLog:
    def test_snapshot_is_slowest_first_topk(self):
        log = SlowQueryLog(window=16, top_k=2)
        for index, elapsed in enumerate([0.01, 0.5, 0.03, 0.2]):
            log.record(f"q{index}", elapsed)
        top = log.snapshot()
        assert [entry.sql for entry in top] == ["q1", "q3"]
        assert log.recorded == 4

    def test_ring_drops_oldest_beyond_window(self):
        log = SlowQueryLog(window=3, top_k=10)
        for index in range(10):
            log.record(f"q{index}", float(index))
        assert len(log) == 3
        assert log.recorded == 10
        assert [entry.sql for entry in log.snapshot()] == ["q9", "q8", "q7"]

    def test_sql_text_is_truncated(self):
        log = SlowQueryLog()
        log.record("x" * 1000, 0.1)
        (entry,) = log.snapshot()
        assert len(entry.sql) == 200


class TestRecorder:
    def test_observe_request_feeds_histograms_and_slow_log(self):
        recorder = Recorder()
        trace = recorder.start_trace()
        with trace.span("estimate"):
            pass
        recorder.observe_request(SIMPLE, 0.05, trace=trace,
                                 candidates=3, groups=2)
        parsed = parse_exposition(recorder.metrics.render())
        assert parsed[("repro_request_seconds_count", ())] == 1.0
        assert parsed[("repro_phase_seconds_count",
                       (("phase", "estimate"),))] == 1.0
        (entry,) = recorder.slow_log.snapshot()
        assert entry.candidates == 3 and "estimate" in entry.phases

    def test_null_recorder_is_disabled_and_free(self):
        assert not NULL_RECORDER.enabled
        assert NULL_RECORDER.start_trace() is NULL_TRACE
        NULL_RECORDER.observe_request(SIMPLE, 0.1)  # must not raise


class TestServiceTracing:
    def test_submit_returns_a_trace_with_the_pipeline_phases(self, shop):
        service = AnnotationService(shop, epsilon=0.1)
        response = service.submit(ADVANTAGE, seed=3, trace=True)
        assert response.trace is not None
        names = {span.name for span in response.trace.spans}
        assert {"parse", "enumerate", "schedule", "estimate",
                "serialize"} <= names
        estimate = [span for span in response.trace.spans
                    if span.name == "estimate"]
        assert any("lineage" in span.attributes for span in estimate)

    def test_untraced_submit_returns_no_trace(self, shop):
        service = AnnotationService(shop, epsilon=0.1)
        assert service.submit(SIMPLE, seed=3).trace is None

    @pytest.mark.parametrize("overrides", [
        {}, {"fusion": 4}, {"adaptive": True}, {"fusion": 4, "adaptive": True},
    ])
    def test_tracing_never_perturbs_answers(self, shop, overrides):
        baseline = AnnotationService(
            shop, ServiceOptions(epsilon=0.05, seed=11, **overrides))
        traced = AnnotationService(
            shop, ServiceOptions(epsilon=0.05, seed=11, **overrides))
        plain = baseline.submit(ADVANTAGE)
        with_trace = traced.submit(ADVANTAGE, trace=True)
        assert _certainties(plain) == _certainties(with_trace)
        assert [a.values for a in plain.answers] == \
            [a.values for a in with_trace.answers]
        assert with_trace.trace is not None and with_trace.trace.spans

    def test_adaptive_trace_records_rung_spans(self, shop):
        service = AnnotationService(
            shop, ServiceOptions(epsilon=0.05, seed=11, adaptive=True))
        response = service.submit(ADVANTAGE, trace=True)
        rungs = [span for span in response.trace.spans if span.name == "rung"]
        assert rungs
        assert all("epsilon" in span.attributes for span in rungs)
        assert any(span.attributes.get("final") for span in rungs)

    def test_recorder_collects_without_explicit_trace_flag(self, shop):
        service = AnnotationService(shop, epsilon=0.1, recorder=Recorder())
        service.submit(ADVANTAGE, seed=3)
        service.submit(SIMPLE, seed=3)
        parsed = parse_exposition(service.recorder.metrics.render())
        assert parsed[("repro_request_seconds_count", ())] == 2.0
        stats = service.stats()
        assert len(stats.slow_queries) == 2
        assert "slow queries" in stats.report()
        assert len(stats.as_dict()["slow_queries"]) == 2
        # responses themselves stay trace-free: tracing fed the recorder only
        assert service.submit(SIMPLE, seed=4).trace is None


class TestConcurrentConsistency:
    def test_pollers_never_observe_torn_or_decreasing_counters(self, shop):
        """Counters read under concurrent submits are monotone and sane."""
        recorder = Recorder()
        service = AnnotationService(shop, epsilon=0.2, recorder=recorder)
        queries = [SIMPLE, ADVANTAGE,
                   "SELECT P.id FROM Products P WHERE P.rrp <= 6"]
        stop = threading.Event()
        failures: list[str] = []

        def submitter(offset: int) -> None:
            for round_number in range(6):
                service.submit(queries[(offset + round_number) % len(queries)],
                               seed=offset * 10 + round_number)

        def poller() -> None:
            last_requests = 0.0
            last_stat_requests = 0
            while not stop.is_set():
                parsed = parse_exposition(recorder.metrics.render())
                requests = parsed.get(("repro_request_seconds_count", ()), 0.0)
                total = parsed.get(("repro_request_seconds_sum", ()), 0.0)
                if requests < last_requests:
                    failures.append(f"metric went backwards: {requests}")
                if requests == 0 and total > 0:
                    failures.append("sum without count: torn histogram")
                last_requests = requests
                stats = service.stats()
                if stats.requests < last_stat_requests:
                    failures.append("service requests went backwards")
                if stats.answers_served < 0 or stats.requests < 0:
                    failures.append("negative counter")
                last_stat_requests = stats.requests

        threads = [threading.Thread(target=submitter, args=(index,))
                   for index in range(4)]
        watcher = threading.Thread(target=poller)
        watcher.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        watcher.join()
        assert not failures
        parsed = parse_exposition(recorder.metrics.render())
        assert parsed[("repro_request_seconds_count", ())] == 24.0
        assert service.stats().requests == 24


class TestConsole:
    def _sample(self, at: float, requests: float,
                fast: float, slow: float) -> ConsoleSample:
        """A canned poll: `fast` requests under 100ms, `slow` under 1.6s."""
        metrics = {
            ("repro_service_requests_total", ()): requests,
            ("repro_request_seconds_bucket", (("le", "0.1024"),)): fast,
            ("repro_request_seconds_bucket", (("le", "1.6384"),)): fast + slow,
            ("repro_request_seconds_bucket", (("le", "+Inf"),)): fast + slow,
            ("repro_request_seconds_count", ()): fast + slow,
        }
        stats = {"server": {"requests": int(requests), "launched": int(requests),
                            "coalesced": 2, "overloads": 0, "query_errors": 0,
                            "active": 1},
                 "service": {"requests": int(requests),
                             "caches": [{"name": "parsed sql", "capacity": 256,
                                         "size": 3, "hits": 7, "misses": 3,
                                         "evictions": 0}],
                             "slow_queries": [{"sql": "SELECT 1",
                                               "elapsed_seconds": 0.5,
                                               "candidates": 4,
                                               "phases": {"estimate": 0.4}}]}}
        return ConsoleSample(time=at, stats=stats, metrics=metrics)

    def test_window_quantiles_subtract_snapshots(self):
        previous = self._sample(at=100.0, requests=10, fast=10, slow=0)
        # the window added 10 slow requests and nothing fast
        current = self._sample(at=110.0, requests=20, fast=10, slow=10)
        p50, p99 = window_quantiles(current, previous)
        assert p50 is not None and 0.1024 < p50 <= 1.6384
        lifetime_p50, _ = window_quantiles(current, None)
        assert lifetime_p50 <= 1.6384

    def test_render_frame_contains_the_dashboard_tables(self):
        previous = self._sample(at=100.0, requests=10, fast=10, slow=0)
        current = self._sample(at=110.0, requests=30, fast=25, slow=5)
        frame = render_frame(current, previous)
        assert "qps" in frame and "2.0/s" in frame
        assert "p99 latency" in frame
        assert "join rate" in frame
        assert "parsed sql" in frame and "70.0%" in frame
        assert "SELECT 1" in frame and "estimate" in frame

    def test_run_top_with_injected_fetch(self):
        samples = [self._sample(at=100.0, requests=5, fast=5, slow=0),
                   self._sample(at=101.0, requests=9, fast=8, slow=1)]
        calls = iter(samples)
        out = io.StringIO()
        frames = run_top("http://ignored", interval=0.0, count=2,
                         stream=out, clear=False, fetch=lambda _: next(calls))
        assert frames == 2
        text = out.getvalue()
        assert text.count("repro top") == 2
        assert "lifetime" in text and "window" in text

    def test_render_stats_tables_is_aligned_text(self):
        stats = self._sample(at=0.0, requests=4, fast=4, slow=0).stats
        text = render_stats_tables(stats)
        assert "server" in text and "requests" in text
        assert "cache" in text and "parsed sql" in text
        assert "{" not in text  # tables, not JSON


class TestLogging:
    def test_json_formatter_emits_parseable_records(self):
        formatter = JsonFormatter()
        record = logging.LogRecord("repro.server", logging.INFO, __file__, 1,
                                   "listening", None, None)
        record.tcp_port = 7464
        payload = json.loads(formatter.format(record))
        assert payload["message"] == "listening"
        assert payload["level"] == "info"
        assert payload["tcp_port"] == 7464

    def test_configure_logging_is_idempotent(self):
        stream = io.StringIO()
        configure_logging(level="debug", format="json", stream=stream)
        configure_logging(level="debug", format="json", stream=stream)
        logger = get_logger("test")
        root = logging.getLogger("repro")
        try:
            logger.info("hello", extra={"n": 1})
            lines = [line for line in stream.getvalue().splitlines() if line]
            assert len(lines) == 1  # one handler, not two
            assert json.loads(lines[0])["n"] == 1
        finally:
            for handler in list(root.handlers):
                root.removeHandler(handler)

    def test_unknown_level_is_rejected(self):
        with pytest.raises(ValueError):
            configure_logging(level="chatty")


class TestServerObservability:
    def test_metrics_endpoint_and_op(self, shop):
        service = AnnotationService(shop, epsilon=0.2)
        with EmbeddedServer(service) as server:
            from repro.client import ReproClient
            with ReproClient(server.host, server.port) as client:
                client.query(SIMPLE, seed=1)
                text = client.metrics()
            assert "# TYPE repro_request_seconds histogram" in text
            parsed = parse_exposition(text)
            assert parsed[("repro_request_seconds_count", ())] >= 1.0
            assert parsed[("repro_server_requests_total", ())] >= 1.0
            assert parsed[("repro_service_requests_total", ())] >= 1.0
            assert ("repro_process_uptime_seconds", ()) in parsed

            base = f"http://{server.host}:{server.http_port}"
            response = urllib.request.urlopen(base + "/metrics")
            assert response.headers["Content-Type"].startswith("text/plain")
            http_text = response.read().decode("utf-8")
            assert parse_exposition(http_text) is not None
            assert "repro_server_uptime_seconds" in http_text

    def test_healthz_reports_uptime_and_version(self, shop):
        from repro import package_version
        service = AnnotationService(shop, epsilon=0.2)
        with EmbeddedServer(service) as server:
            base = f"http://{server.host}:{server.http_port}"
            payload = json.loads(urllib.request.urlopen(base + "/healthz").read())
        assert payload["version"] == package_version()
        assert payload["uptime_seconds"] >= 0.0

    def test_server_stats_include_slow_queries(self, shop):
        service = AnnotationService(shop, epsilon=0.2)
        with EmbeddedServer(service) as server:
            from repro.client import ReproClient
            with ReproClient(server.host, server.port) as client:
                client.query(ADVANTAGE, seed=1)
                stats = client.stats()
        slow = stats["service"]["slow_queries"]
        assert slow and slow[0]["sql"].startswith("SELECT P.id")
        assert slow[0]["elapsed_seconds"] > 0.0


class TestExpositionEdgeCases:
    """The parsing helpers the console and alert evaluator lean on."""

    def test_empty_histogram_round_trips_and_has_no_quantile(self):
        registry = MetricsRegistry()
        registry.histogram("repro_idle_seconds", "never observed")
        parsed = parse_exposition(registry.render())
        assert parsed[("repro_idle_seconds_count", ())] == 0.0
        assert parsed[("repro_idle_seconds_sum", ())] == 0.0
        buckets = [(float("inf") if labels[0][1] == "+Inf"
                    else float(labels[0][1]), value)
                   for (name, labels), value in parsed.items()
                   if name == "repro_idle_seconds_bucket"]
        assert buckets and all(value == 0.0 for _, value in buckets)
        assert histogram_quantile(buckets, 0.99) is None

    def test_quantile_with_only_an_inf_bucket(self):
        # Degenerate but legal: every observation beyond the largest finite
        # bound.  The estimate clamps to the previous bound (0.0), never
        # returning inf or raising.
        assert histogram_quantile([(float("inf"), 5.0)], 0.5) == 0.0

    def test_coordinator_relabelled_metrics_round_trip(self):
        from repro.cluster.coordinator import _relabel

        registry = MetricsRegistry()
        registry.counter("repro_server_requests_total", "reqs").inc(3)
        histogram = registry.histogram("repro_request_seconds", "lat")
        histogram.observe(0.01)
        lines = _relabel(registry.render(), "w7")
        parsed = parse_exposition("\n".join(lines) + "\n")
        assert parsed[("repro_server_requests_total",
                       (("worker", "w7"),))] == 3.0
        # histogram children keep their own labels after the worker label
        bucket_keys = [key for key in parsed
                       if key[0] == "repro_request_seconds_bucket"]
        assert bucket_keys
        for _, labels in bucket_keys:
            labelmap = dict(labels)
            assert labelmap["worker"] == "w7" and "le" in labelmap
        assert parsed[("repro_request_seconds_count",
                       (("worker", "w7"),))] == 1.0


class TestTimeSeriesStore:
    def _store(self, capacity=4):
        registry = MetricsRegistry()
        counter = registry.counter("repro_ticks_total", "ticks")
        clock = {"now": 100.0}
        store = TimeSeriesStore(registry, interval=1.0, capacity=capacity,
                                clock=lambda: clock["now"])
        return store, counter, clock

    def test_ring_wraparound_keeps_newest(self):
        store, counter, clock = self._store(capacity=4)
        for tick in range(10):
            counter.inc()
            clock["now"] = 100.0 + tick
            store.sample()
        assert len(store) == 4
        history = store.history(sample_now=False)
        assert history["capacity"] == 4
        assert history["retention_seconds"] == 4.0
        times = [snap["time"] for snap in history["snapshots"]]
        assert times == [106.0, 107.0, 108.0, 109.0]
        values = [snap["samples"]["repro_ticks_total"]
                  for snap in history["snapshots"]]
        assert values == [7.0, 8.0, 9.0, 10.0]

    def test_stepped_back_clock_is_clamped_monotone(self):
        store, _, clock = self._store()
        store.sample()
        clock["now"] = 50.0  # wall clock stepped backwards
        snap = store.sample()
        assert snap["time"] == 100.0  # clamped to the previous snapshot

    def test_window_filter_trims_old_snapshots(self):
        store, _, clock = self._store(capacity=64)
        for tick in range(20):
            clock["now"] = 100.0 + tick
            store.sample()
        history = store.history(5.0, sample_now=False)
        assert [snap["time"] for snap in history["snapshots"]] == \
            [114.0, 115.0, 116.0, 117.0, 118.0, 119.0]

    def test_concurrent_scrapes_stay_monotone(self):
        """Snapshot times never decrease even when many threads sample
        around a jittery clock (the /history handler races the sampler)."""
        registry = MetricsRegistry()
        clock = {"now": 0.0}
        lock = threading.Lock()

        def jittery_clock():
            with lock:
                clock["now"] += 0.001
                # a misbehaving clock that occasionally steps back
                return clock["now"] - (0.01 if int(clock["now"] * 1000) % 7 == 0
                                       else 0.0)

        store = TimeSeriesStore(registry, interval=1.0, capacity=128,
                                clock=jittery_clock)

        def scraper():
            for _ in range(50):
                store.sample()

        threads = [threading.Thread(target=scraper) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        times = [snap["time"]
                 for snap in store.history(sample_now=False)["snapshots"]]
        assert times == sorted(times)
        assert len(store) == 128  # 200 samples through a 128-slot ring

    def test_history_samples_on_demand(self):
        store, counter, _ = self._store()
        counter.inc(5)
        history = store.history()
        assert history["snapshots"][-1]["samples"]["repro_ticks_total"] == 5.0

    def test_rejects_bad_parameters(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            TimeSeriesStore(registry, interval=0.0)
        with pytest.raises(ValueError):
            TimeSeriesStore(registry, capacity=1)


class TestTracePropagation:
    def test_round_trip(self):
        context = new_context()
        header = format_traceparent(context.trace_id, 0xdeadbeef)
        parsed = parse_traceparent(header)
        assert parsed == TraceContext(trace_id=context.trace_id,
                                      parent_id=0xdeadbeef)

    @pytest.mark.parametrize("value", [
        None, 7, "", "00-short-0011223344556677-01",
        "99-" + "a" * 32 + "-" + "b" * 16 + "-01",     # unknown version
        "00-" + "0" * 32 + "-" + "b" * 16 + "-01",     # all-zero trace id
        "00-" + "a" * 32 + "-" + "b" * 15 + "-01",     # short parent
        "00-" + "g" * 32 + "-" + "b" * 16 + "-01",     # non-hex
        "00-" + "a" * 32 + "-" + "b" * 16,             # missing flags
    ])
    def test_malformed_traceparents_yield_none(self, value):
        assert parse_traceparent(value) is None

    def test_extract_and_inject_ride_outside_options(self):
        message = {"op": "query", "sql": "SELECT 1", "options": {"seed": 3}}
        context = new_context()
        inject_context(message, context.trace_id, 42)
        assert message["options"] == {"seed": 3}  # coalescing identity intact
        extracted = extract_context(message)
        assert extracted.trace_id == context.trace_id
        assert extracted.parent_id == 42
        assert extract_context({"op": "query", "sql": "SELECT 1"}) is None

    def test_trace_adopts_propagated_context(self):
        context = new_context()
        trace = Trace("request", context=context)
        with trace.span("cluster.request"):
            pass
        assert trace.trace_id == context.trace_id
        (span,) = trace.span_dicts()
        # remote hop: span ids are drawn from os.urandom, not 1,2,3...
        assert span["span_id"] > 2 ** 15


class TestProfiler:
    """The sampler excludes its own (calling) thread, so every test spins
    a busy worker thread with a recognizable frame to be sampled."""

    @staticmethod
    def _busy_thread(stop: threading.Event) -> threading.Thread:
        def profiler_test_burn() -> None:
            while not stop.is_set():
                sum(range(200))

        thread = threading.Thread(target=profiler_test_burn, daemon=True)
        thread.start()
        return thread

    def test_collect_and_render_round_trip(self):
        stop = threading.Event()
        thread = self._busy_thread(stop)
        try:
            counts = collect_profile(seconds=0.1, interval=0.01)
        finally:
            stop.set()
            thread.join()
        assert counts and all(isinstance(stack, str) and count >= 1
                              for stack, count in counts.items())
        assert any("profiler_test_burn" in stack for stack in counts)
        text = render_collapsed(counts)
        assert parse_collapsed(text) == counts

    def test_merge_collapsed_sums_counts(self):
        merged = merge_collapsed(["a;b 3\na 1\n", "a;b 2\nc 4\n"])
        assert merged == {"a;b": 5, "a": 1, "c": 4}

    def test_profile_payload_shape_and_clamping(self):
        stop = threading.Event()
        thread = self._busy_thread(stop)
        try:
            payload = profile_payload(0.1, 0.01)
        finally:
            stop.set()
            thread.join()
        assert payload["seconds"] == 0.1
        assert payload["samples"] >= 1
        assert payload["stacks"] == len(parse_collapsed(payload["collapsed"]))
        # the bounds that make /profile safe to expose: a fat-fingered
        # request clamps instead of pinning a sampler thread
        instant = profile_payload(-5.0, 0.0001)
        assert instant["seconds"] == 0.0
        assert instant["interval_seconds"] >= 0.005


class TestAlerts:
    @staticmethod
    def _snapshots(errors_by_time: dict[float, float],
                   requests_per_tick: float = 100.0) -> list[dict]:
        """Synthetic tsdb history: one snapshot per second with cumulative
        request/error counters."""
        snapshots = []
        requests = errors = 0.0
        for tick in sorted(errors_by_time):
            requests += requests_per_tick
            errors += errors_by_time[tick]
            snapshots.append({"time": tick, "samples": {
                "repro_server_requests_total": requests,
                'repro_server_errors_total{kind="internal"}': errors,
                "repro_server_overloads_total": 0.0,
            }})
        return snapshots

    def test_sustained_errors_fire_the_page_alert(self):
        # 10% internal errors over 6 minutes: burn 100x against a 99.9%
        # objective, far over both page windows.
        snapshots = self._snapshots({float(t): 10.0 for t in range(0, 360, 1)})
        evaluator = AlertEvaluator(server_slos())
        report = evaluator.report(snapshots)
        assert report["firing"]
        page = next(a for a in report["alerts"]
                    if a["slo"] == "availability" and a["severity"] == "page")
        assert page["firing"] and page["burn_short"] > 14.4

    def test_recovered_errors_reset_the_short_window(self):
        # Errors stopped 2 minutes ago: the long window still burns, the
        # 1-minute short window is clean, so the page alert is quiet.
        errors = {float(t): (10.0 if t < 240 else 0.0) for t in range(0, 360)}
        evaluator = AlertEvaluator(server_slos())
        report = evaluator.report(self._snapshots(errors))
        page = next(a for a in report["alerts"]
                    if a["slo"] == "availability" and a["severity"] == "page")
        assert not page["firing"]
        assert page["burn_long"] > page["burn_short"]

    def test_idle_history_never_fires(self):
        snapshots = [{"time": float(t), "samples": {
            "repro_server_requests_total": 50.0,
            'repro_server_errors_total{kind="internal"}': 50.0,
        }} for t in range(0, 360)]
        report = AlertEvaluator(server_slos()).report(snapshots)
        assert not report["firing"]  # no new traffic means no burn

    def test_latency_threshold_quantizes_to_a_bucket(self):
        # 40% of requests slower than the 0.1s threshold against a 95%
        # objective: burn 8, over the ticket threshold but not page's.
        slo = SLO(name="latency", objective=0.95,
                  total="repro_request_seconds_count",
                  latency_histogram="repro_request_seconds",
                  threshold_seconds=0.1)
        snapshots = []
        count = fast = 0.0
        for tick in range(0, 1900, 2):
            count += 10.0
            fast += 6.0
            snapshots.append({"time": float(tick), "samples": {
                "repro_request_seconds_count": count,
                'repro_request_seconds_bucket{le="0.1024"}': fast,
                'repro_request_seconds_bucket{le="+Inf"}': count,
            }})
        report = AlertEvaluator((slo,)).report(snapshots)
        by_severity = {a["severity"]: a for a in report["alerts"]}
        assert not by_severity["page"]["firing"]
        assert by_severity["ticket"]["firing"]
        assert by_severity["ticket"]["burn_long"] == pytest.approx(8.0,
                                                                   rel=0.05)

    def test_young_history_degrades_to_not_firing(self):
        evaluator = AlertEvaluator(server_slos())
        assert not evaluator.report([])["firing"]
        assert not evaluator.report(self._snapshots({0.0: 99.0}))["firing"]

    def test_disabled_report_shape(self):
        assert disabled_report() == {"alerts": [], "firing": False}

    def test_max_window_matches_defaults(self):
        evaluator = AlertEvaluator(server_slos(), DEFAULT_WINDOWS)
        assert evaluator.max_window_seconds == 1800.0


class TestTraceStore:
    def test_put_get_latest_and_eviction(self):
        store = TraceStore(capacity=2)
        traces = []
        for _ in range(3):
            trace = Trace("request", context=new_context())
            with trace.span("work"):
                pass
            store.put(trace)
            traces.append(trace)
        assert store.get(traces[0].trace_id) is None  # aged out
        assert store.get(traces[2].trace_id) is traces[2]
        assert store.latest() is traces[2]

    def test_ignores_traces_without_an_id(self):
        store = TraceStore()
        store.put(Trace("request"))  # local-only trace: no trace id
        assert store.latest() is None

    def test_spans_to_chrome_stitches_processes(self):
        coordinator = Trace("request", context=new_context())
        with coordinator.span("cluster.request") as root:
            forward = coordinator.span("forward", parent=root)
            forward.__exit__(None, None, None)
        forward_id = coordinator.span_dicts()[0]["span_id"]
        worker = Trace("request", context=TraceContext(
            trace_id=coordinator.trace_id, parent_id=forward_id))
        with worker.span("request"):
            pass
        chrome = spans_to_chrome(coordinator.trace_id, [
            ("coordinator:1", coordinator.span_dicts()),
            ("worker:w0", worker.span_dicts()),
        ])
        meta = [e for e in chrome["traceEvents"] if e["ph"] == "M"]
        assert [e["args"]["name"] for e in meta] == \
            ["coordinator:1", "worker:w0"]
        assert {e["pid"] for e in meta} == {1, 2}
        spans = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        ids = {e["args"]["span_id"] for e in spans}
        worker_spans = [e for e in spans if e["pid"] == 2]
        assert worker_spans and all(
            e["args"]["parent_id"] in ids or e["args"]["parent_id"] == forward_id
            for e in worker_spans)
        assert chrome["otherData"]["trace_id"] == coordinator.trace_id


class TestConsoleHistory:
    @staticmethod
    def _snapshots():
        snapshots = []
        for tick, (requests, fast, slow) in enumerate(
                [(10, 8, 2), (20, 16, 4), (40, 30, 10), (50, 40, 10)]):
            snapshots.append({"time": 100.0 + tick * 2.0, "samples": {
                "repro_server_requests_total": float(requests),
                "repro_request_seconds_count": float(fast + slow),
                'repro_request_seconds_bucket{le="0.1024"}': float(fast),
                'repro_request_seconds_bucket{le="1.6384"}': float(fast + slow),
                'repro_request_seconds_bucket{le="+Inf"}': float(fast + slow),
            }})
        return snapshots

    def test_sparkline_is_peak_scaled(self):
        line = sparkline([0.0, 1.0, 2.0, 4.0])
        assert len(line) == 4
        assert line[-1] == "█" and line[0] == " "
        assert sparkline([]) == ""
        assert sparkline([0.0, 0.0]) == "  "

    def test_counter_rate_series_clamps_resets(self):
        snapshots = [
            {"time": 0.0, "samples": {"repro_server_requests_total": 10.0}},
            {"time": 2.0, "samples": {"repro_server_requests_total": 30.0}},
            {"time": 4.0, "samples": {"repro_server_requests_total": 5.0}},
        ]
        rates = counter_rate_series(snapshots, "repro_server_requests_total")
        assert rates == [10.0, 0.0]  # restart shows as zero, not negative

    def test_qps_series_prefers_the_cluster_counter(self):
        snapshots = self._snapshots()
        for snap in snapshots:
            snap["samples"]["repro_cluster_requests_total"] = \
                snap["samples"]["repro_server_requests_total"] * 2
        rates = qps_series(snapshots)
        assert rates == counter_rate_series(snapshots,
                                            "repro_cluster_requests_total")

    def test_history_quantiles_diff_the_window_edges(self):
        p50, p99 = history_quantiles(self._snapshots())
        assert p50 is not None and p50 <= 0.1024
        assert p99 is not None and 0.1024 < p99 <= 1.6384
        assert history_quantiles(self._snapshots()[:1]) == [None, None]

    def test_snapshot_payload_is_json_ready(self):
        sample = ConsoleSample(
            time=123.0,
            stats={"alerts": [{"slo": "availability", "severity": "page",
                               "firing": False}],
                   "workers": [{"id": "w0", "state": "healthy"}],
                   "coordinator": {"requests": 25}},
            metrics={},
            history={"snapshots": self._snapshots(),
                     "workers": {"w0": {"snapshots": self._snapshots()}}})
        payload = snapshot_payload(sample)
        json.dumps(payload)  # must be serializable as-is
        assert payload["qps"] > 0.0
        assert payload["p99_seconds"] is not None
        assert payload["firing"] is False
        assert payload["worker_qps"]["w0"] == payload["qps_series"][-1]
        assert payload["workers"][0]["id"] == "w0"
