"""Tests for atomic constraints and Boolean constraint formulae."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.atoms import Comparison, Constraint
from repro.constraints.formula import (
    And,
    Atom,
    FalseFormula,
    Not,
    Or,
    TrueFormula,
    conjunction,
    disjunction,
    dnf_formula,
    dnf_size_bound,
)
from repro.constraints.polynomials import Polynomial


def x() -> Polynomial:
    return Polynomial.variable("x")


def y() -> Polynomial:
    return Polynomial.variable("y")


def atom(polynomial, op=Comparison.LT) -> Atom:
    return Atom(Constraint(polynomial=polynomial, op=op))


class TestComparison:
    def test_negation_is_involutive_and_complementary(self):
        for op in Comparison:
            assert op.negate().negate() is op
            for value in (-1.0, 0.0, 1.0):
                assert op.holds(value) != op.negate().holds(value)

    def test_flip_mirrors_the_value(self):
        for op in Comparison:
            for value in (-2.0, 0.0, 3.0):
                assert op.holds(value) == op.flip().holds(-value)

    def test_holds_for_sign(self):
        assert Comparison.LT.holds_for_sign(-1, False)
        assert not Comparison.LT.holds_for_sign(1, False)
        assert Comparison.LE.holds_for_sign(0, True)
        assert not Comparison.LT.holds_for_sign(0, True)
        assert Comparison.EQ.holds_for_sign(0, True)
        assert not Comparison.EQ.holds_for_sign(1, False)
        assert Comparison.NE.holds_for_sign(1, False)
        assert not Comparison.NE.holds_for_sign(0, True)


class TestConstraint:
    def test_compare_builds_difference(self):
        constraint = Constraint.compare(x(), Comparison.LT, y())
        assert constraint.evaluate({"x": 1.0, "y": 2.0})
        assert not constraint.evaluate({"x": 2.0, "y": 1.0})

    def test_negate(self):
        constraint = Constraint.compare(x(), Comparison.LE, 0.0)
        negated = constraint.negate()
        assert negated.evaluate({"x": 1.0})
        assert not negated.evaluate({"x": -1.0})

    def test_trivial_constraints(self):
        constraint = Constraint.compare(Polynomial.constant(3.0), Comparison.GT, 1.0)
        assert constraint.is_trivial()
        assert constraint.trivial_value()
        with pytest.raises(ValueError):
            Constraint.compare(x(), Comparison.LT, 0.0).trivial_value()

    def test_is_linear(self):
        assert Constraint.compare(2.0 * x() + y(), Comparison.LT, 1.0).is_linear()
        assert not Constraint.compare(x() * y(), Comparison.LT, 0.0).is_linear()


class TestFormulaEvaluation:
    def test_connectives(self):
        positive = atom(-x(), Comparison.LT)       # x > 0
        negative = atom(x(), Comparison.LT)        # x < 0
        formula = Or((And((positive, Not(negative))), FalseFormula()))
        assert formula.evaluate({"x": 1.0})
        assert not formula.evaluate({"x": -1.0})

    def test_constants(self):
        assert TrueFormula().evaluate({})
        assert not FalseFormula().evaluate({})

    def test_variables_and_atoms(self):
        formula = And((atom(x()), Or((atom(y()), TrueFormula()))))
        assert formula.variables() == frozenset({"x", "y"})
        assert len(list(formula.atoms())) == 2

    def test_conjunction_disjunction_helpers(self):
        assert isinstance(conjunction([]), TrueFormula)
        assert isinstance(disjunction([]), FalseFormula)
        single = atom(x())
        assert conjunction([single]) is single
        assert disjunction([single]) is single


class TestNormalForms:
    def test_nnf_pushes_negation_into_atoms(self):
        formula = Not(And((atom(x(), Comparison.LT), atom(y(), Comparison.GE))))
        nnf = formula.to_nnf()
        assert isinstance(nnf, Or)
        ops = sorted(constraint.op.value for constraint in nnf.atoms())
        assert ops == ["<", ">="]

    def test_double_negation(self):
        formula = Not(Not(atom(x())))
        assert isinstance(formula.to_nnf(), Atom)

    def test_dnf_of_conjunction_of_disjunctions(self):
        formula = And((Or((atom(x()), atom(y()))), Or((atom(x() + 1.0), atom(y() + 1.0)))))
        disjuncts = formula.to_dnf()
        assert len(disjuncts) == 4
        assert all(len(disjunct) == 2 for disjunct in disjuncts)

    def test_dnf_drops_false_and_true_atoms(self):
        trivially_true = atom(Polynomial.constant(-1.0), Comparison.LT)
        trivially_false = atom(Polynomial.constant(1.0), Comparison.LT)
        formula = Or((And((trivially_true, atom(x()))), And((trivially_false, atom(y())))))
        disjuncts = formula.to_dnf()
        assert len(disjuncts) == 1
        assert len(disjuncts[0]) == 1

    def test_dnf_of_constants(self):
        assert TrueFormula().to_dnf() == [[]]
        assert FalseFormula().to_dnf() == []

    def test_dnf_formula_round_trip(self):
        formula = Or((And((atom(x()), atom(y()))), atom(x() - 1.0)))
        rebuilt = dnf_formula(formula.to_dnf())
        for point in ({"x": -2.0, "y": -2.0}, {"x": 0.5, "y": -3.0}, {"x": 2.0, "y": 2.0}):
            assert rebuilt.evaluate(point) == formula.evaluate(point)

    def test_dnf_size_bound(self):
        small = And((Or((atom(x()), atom(y()))), atom(x() + 1.0)))
        assert dnf_size_bound(small) == 2
        wide = And(tuple(Or((atom(x() + float(i)), atom(y() + float(i))))
                         for i in range(25)))
        assert dnf_size_bound(wide, cap=1000) == 1000

    def test_simplify_folds_constants(self):
        formula = And((TrueFormula(), Or((FalseFormula(), atom(x())))))
        simplified = formula.simplify()
        assert isinstance(simplified, Atom)
        contradiction = And((atom(Polynomial.constant(1.0), Comparison.LT), atom(x())))
        assert isinstance(contradiction.simplify(), FalseFormula)

    def test_is_linear(self):
        assert And((atom(x() + y()), atom(x() - 2.0))).is_linear()
        assert not Or((atom(x() * y()),)).is_linear()


class TestFormulaProperties:
    @given(st.floats(min_value=-4, max_value=4, allow_nan=False),
           st.floats(min_value=-4, max_value=4, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_nnf_preserves_semantics(self, vx, vy):
        formula = Not(Or((And((atom(x(), Comparison.LT), atom(y(), Comparison.GE))),
                          Not(atom(x() - y(), Comparison.LE)))))
        point = {"x": vx, "y": vy}
        assert formula.to_nnf().evaluate(point) == formula.evaluate(point)

    @given(st.floats(min_value=-4, max_value=4, allow_nan=False),
           st.floats(min_value=-4, max_value=4, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_dnf_preserves_semantics(self, vx, vy):
        formula = And((Or((atom(x(), Comparison.LT), atom(y(), Comparison.GT))),
                       Not(And((atom(x() + y(), Comparison.GE), atom(x(), Comparison.GT))))))
        point = {"x": vx, "y": vy}
        assert dnf_formula(formula.to_dnf()).evaluate(point) == formula.evaluate(point)
