"""Sharded execution: partitioning, merge parity, processes, shared memory.

The sharded engine's contract is the same observational identity the
columnar engine already owes the row oracle, now across one more axis:
``shards=K, jobs=N`` must be bit-identical to the unsharded single-core
run -- candidates, witness order, witness counts, lineage formulas,
canonical digests, and (at a fixed seed) the annotated certainties.  These
tests pin the edge cases the differential harness only hits by luck:
degenerate shard counts, empty shards, all-null join keys, the shared
memory round trip, and the process pool.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.generic import ColumnSpec, TableSpec, generate_database
from repro.engine.candidates import enumerate_candidates
from repro.engine.sql.parser import parse_sql
from repro.relational.columnar import ColumnarRelation
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, RelationSchema, SchemaError
from repro.relational.sharding import (
    attach_shard,
    export_shard,
    merge_order,
    partition_rows,
    release_payload,
    shard_relation,
    stable_value_hash,
)
from repro.relational.values import BaseNull, NumNull
from repro.service import AnnotationService, ServiceOptions, process_map
from repro.service.canonical import canonicalise_lineage

JOIN_SQL = ("SELECT F.key FROM Fact F, Dim D "
            "WHERE F.key = D.key AND F.val * D.ref <= 25")


def _star_schema() -> DatabaseSchema:
    return DatabaseSchema.of(
        RelationSchema.of("Fact", key="base", val="num"),
        RelationSchema.of("Dim", key="base", ref="num"),
    )


def _star_database(fact_rows=120, dim_rows=50, null_rate=0.2, seed=3,
                   key_count=25) -> Database:
    keys = tuple(f"k{i}" for i in range(key_count))
    specs = {
        "Fact": TableSpec(rows=fact_rows, columns={
            "key": ColumnSpec(choices=keys, null_rate=min(null_rate, 0.1)),
            "val": ColumnSpec(uniform=(0.0, 10.0), null_rate=null_rate),
        }),
        "Dim": TableSpec(rows=dim_rows, columns={
            "key": ColumnSpec(choices=keys, null_rate=min(null_rate, 0.1)),
            "ref": ColumnSpec(uniform=(0.0, 10.0), null_rate=null_rate),
        }),
    }
    return generate_database(_star_schema(), specs, rng=seed,
                             backend="columnar")


def _assert_identical(reference, actual, context=""):
    assert len(reference) == len(actual), context
    for expected, got in zip(reference, actual):
        assert expected.values == got.values, context
        assert expected.witnesses == got.witnesses, context
        assert expected.lineage.formula == got.lineage.formula, context
        assert canonicalise_lineage(expected.lineage).digest == \
            canonicalise_lineage(got.lineage).digest, context


class TestStableHash:
    def test_equal_values_hash_equally(self):
        assert stable_value_hash("amber") == stable_value_hash("amber")
        assert stable_value_hash(BaseNull("n1")) == stable_value_hash(BaseNull("n1"))
        assert stable_value_hash(NumNull("n1")) == stable_value_hash(NumNull("n1"))

    def test_distinct_kinds_hash_apart(self):
        # A null named like a string constant must not collide with it.
        assert stable_value_hash(BaseNull("red")) != stable_value_hash("red")
        assert stable_value_hash(BaseNull("n1")) != stable_value_hash(NumNull("n1"))

    def test_stable_across_processes(self):
        """Placement must not depend on ``PYTHONHASHSEED``."""
        import subprocess
        import sys

        script = ("import sys; sys.path.insert(0, 'src');"
                  "from repro.relational.sharding import stable_value_hash;"
                  "print(stable_value_hash('k7'))")
        outputs = {
            subprocess.run([sys.executable, "-c", script],
                           capture_output=True, text=True, check=True,
                           env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
                           cwd=".").stdout.strip()
            for seed in ("0", "1")
        }
        assert len(outputs) == 1
        assert outputs == {str(stable_value_hash("k7"))}


class TestPartitioning:
    def test_single_shard_is_identity(self):
        database = _star_database()
        relation = database.relation("Fact")
        [only] = partition_rows(relation, 1, ("key",))
        assert np.array_equal(only, np.arange(len(relation)))

    def test_partition_covers_all_rows_exactly_once(self):
        database = _star_database()
        relation = database.relation("Fact")
        parts = partition_rows(relation, 4, ("key",))
        union = np.sort(np.concatenate(parts))
        assert np.array_equal(union, np.arange(len(relation)))
        for part in parts:
            assert np.array_equal(part, np.sort(part))  # ascending offsets

    def test_key_alignment_across_relations(self):
        """Equal key values land in the same shard in every table."""
        database = _star_database()
        shards = 5
        fact_parts = partition_rows(database.relation("Fact"), shards, ("key",))
        dim_parts = partition_rows(database.relation("Dim"), shards, ("key",))

        def shard_of(parts, relation, row):
            for shard, part in enumerate(parts):
                if row in part:
                    return shard
            raise AssertionError("row not placed")

        fact_keys = database.relation("Fact").column("key")
        dim_keys = database.relation("Dim").column("key")
        placement = {}
        for row, key in enumerate(fact_keys):
            placement[key] = shard_of(fact_parts, "Fact", row)
        for row, key in enumerate(dim_keys):
            if key in placement:
                assert shard_of(dim_parts, "Dim", row) == placement[key]

    def test_numeric_key_alignment(self):
        """partition_rows also aligns numeric key columns (public API path).

        The query planner only ever shards on base columns, but
        ``partition_rows`` is usable directly; equal floats (including
        ``-0.0`` vs ``0.0``) and re-occurring numeric null marks must
        co-locate.
        """
        schema = RelationSchema.of("N", val="num")
        shared = NumNull("shared")
        first = ColumnarRelation(schema, [(1.5,), (-0.0,), (shared,), (7.25,)])
        second = ColumnarRelation(schema, [(0.0,), (7.25,), (shared,), (2.5,)])
        shards = 5
        first_parts = partition_rows(first, shards, ("val",))
        second_parts = partition_rows(second, shards, ("val",))

        def shard_of(parts, row):
            return next(s for s, part in enumerate(parts) if row in part)

        assert shard_of(first_parts, 1) == shard_of(second_parts, 0)  # ±0.0
        assert shard_of(first_parts, 3) == shard_of(second_parts, 1)  # 7.25
        assert shard_of(first_parts, 2) == shard_of(second_parts, 2)  # null

    def test_round_robin_without_keys(self):
        database = _star_database()
        relation = database.relation("Fact")
        parts = partition_rows(relation, 3, None)
        assert np.array_equal(parts[0], np.arange(0, len(relation), 3))

    def test_more_shards_than_rows_leaves_empties(self):
        database = _star_database(fact_rows=3, dim_rows=2)
        shards = shard_relation(database.relation("Fact"), 64, ("key",))
        assert len(shards) == 64
        assert sum(len(shard) for shard in shards) == \
            len(database.relation("Fact"))
        assert any(len(shard) == 0 for shard in shards)

    def test_invalid_shard_count_rejected(self):
        database = _star_database(fact_rows=3, dim_rows=2)
        with pytest.raises(ValueError):
            partition_rows(database.relation("Fact"), 0, None)
        with pytest.raises(SchemaError):
            Database(_star_schema(), shards=0)

    def test_merge_order_restores_global_order(self):
        outer = [np.array([0, 3, 3, 9]), np.array([1, 4]), np.array([2, 2, 8])]
        order = merge_order(outer)
        merged = np.concatenate(outer)[order]
        assert merged.tolist() == [0, 1, 2, 2, 3, 3, 4, 8, 9]


class TestShardedEnumeration:
    @pytest.mark.parametrize("shards", [1, 2, 3, 7, 1000])
    def test_bit_identical_to_unsharded(self, shards):
        database = _star_database()
        select = parse_sql(JOIN_SQL)
        reference = enumerate_candidates(select, database, shards=1)
        actual = enumerate_candidates(select, database, shards=shards)
        _assert_identical(reference, actual, f"shards={shards}")

    def test_process_parallel_matches_inline(self):
        database = _star_database()
        select = parse_sql(JOIN_SQL)
        reference = enumerate_candidates(select, database, shards=3, jobs=1)
        parallel = enumerate_candidates(select, database, shards=3, jobs=2)
        _assert_identical(reference, parallel, "jobs=2")

    def test_all_null_join_keys(self):
        """A key column made entirely of marked nulls still shards correctly.

        A base null equals only itself, so cross-table matches only happen
        when the *same* null mark occurs in both tables -- which hashing by
        null name keeps co-located.  ``generate_database`` draws fresh
        nulls, so shared marks are planted by hand here.
        """
        schema = _star_schema()
        shared = [BaseNull(f"s{i}") for i in range(6)]
        database = Database(schema, backend="columnar", shards=4)
        rng = np.random.default_rng(5)
        for index in range(24):
            database.add("Fact", (shared[index % 6], float(rng.uniform(0, 10))))
        for index in range(12):
            database.add("Dim", (shared[rng.integers(0, 6)], float(rng.uniform(0, 10))))
        select = parse_sql(JOIN_SQL)
        reference = enumerate_candidates(select, database, shards=1)
        assert reference, "the all-null instance must produce candidates"
        for shards in (2, 4, 9):
            _assert_identical(reference,
                              enumerate_candidates(select, database, shards=shards),
                              f"all-null shards={shards}")

    def test_scan_round_robin_parity(self):
        database = _star_database()
        select = parse_sql("SELECT F.key FROM Fact F WHERE F.val <= 5 LIMIT 9")
        reference = enumerate_candidates(select, database, shards=1)
        _assert_identical(reference,
                          enumerate_candidates(select, database, shards=5, jobs=2))

    def test_cross_column_chain_falls_back(self):
        """A join chain hopping key columns is not shardable; results still match."""
        schema = DatabaseSchema.of(
            RelationSchema.of("A", k="base", x="num"),
            RelationSchema.of("B", k="base", m="base", x="num"),
            RelationSchema.of("C", m="base", x="num"),
        )
        keys = tuple(f"k{i}" for i in range(6))
        marks = tuple(f"m{i}" for i in range(6))
        specs = {
            "A": TableSpec(rows=20, columns={
                "k": ColumnSpec(choices=keys),
                "x": ColumnSpec(uniform=(0, 5), null_rate=0.2)}),
            "B": TableSpec(rows=20, columns={
                "k": ColumnSpec(choices=keys),
                "m": ColumnSpec(choices=marks),
                "x": ColumnSpec(uniform=(0, 5), null_rate=0.2)}),
            "C": TableSpec(rows=20, columns={
                "m": ColumnSpec(choices=marks),
                "x": ColumnSpec(uniform=(0, 5), null_rate=0.2)}),
        }
        database = generate_database(schema, specs, rng=11, backend="columnar")
        sql = ("SELECT A.k FROM A, B, C "
               "WHERE A.k = B.k AND B.m = C.m AND A.x + C.x <= 6")
        select = parse_sql(sql)
        from repro.engine.vectorized import enumerate_candidates_sharded
        assert enumerate_candidates_sharded(
            select, database, limit=None, max_witnesses=1_000_000,
            group_witnesses=True, shards=3) is None
        _assert_identical(enumerate_candidates(select, database, shards=1),
                          enumerate_candidates(select, database, shards=3))

    def test_partition_cache_hits_and_invalidation(self):
        database = _star_database()
        select = parse_sql(JOIN_SQL)
        first, second = {}, {}
        enumerate_candidates(select, database, shards=2, shard_stats=first)
        enumerate_candidates(select, database, shards=2, shard_stats=second)
        assert first["partition_misses"] == 2 and first["partition_hits"] == 0
        assert second["partition_hits"] == 2 and second["partition_misses"] == 0
        database.add("Fact", ("k1", 1.0))  # mutation drops the partitions
        third = {}
        enumerate_candidates(select, database, shards=2, shard_stats=third)
        assert third["partition_misses"] == 2


class TestSharedMemory:
    def test_export_attach_round_trip(self):
        database = _star_database(fact_rows=40, dim_rows=10)
        relation = database.relation("Fact")
        payload, blocks = export_shard(relation)
        try:
            attached, handles = attach_shard(payload)
            try:
                assert attached.tuples() == relation.tuples()
            finally:
                for handle in handles:
                    handle.close()
        finally:
            release_payload(blocks)

    def test_trailing_nul_strings_round_trip(self):
        """Values NumPy's fixed-width unicode would corrupt stay pickled.

        ``np.asarray(["a\\x00", "a"])`` strips the trailing NUL, merging
        two distinct interned values; the packer must detect the lossy
        round trip and fall back to shipping the dictionary by pickle.
        """
        schema = RelationSchema.of("T", key="base")
        relation = ColumnarRelation(schema, [("a\x00",), ("a",), ("b",)])
        payload, blocks = export_shard(relation)
        try:
            attached, handles = attach_shard(payload)
            try:
                assert attached.tuples() == relation.tuples()
            finally:
                for handle in handles:
                    handle.close()
        finally:
            release_payload(blocks)

    def test_release_is_idempotent(self):
        database = _star_database(fact_rows=4, dim_rows=2)
        payload, blocks = export_shard(database.relation("Dim"))
        release_payload(blocks)
        release_payload(blocks)  # second release must not raise


class TestProcessMap:
    def test_preserves_payload_order(self):
        results = process_map(_square, list(range(20)), jobs=2)
        assert results == [value * value for value in range(20)]

    def test_inline_for_single_job(self):
        assert process_map(_square, [3, 4], jobs=1) == [9, 16]

    def test_worker_exception_propagates(self):
        with pytest.raises(ZeroDivisionError):
            process_map(_reciprocal, [1, 0, 2], jobs=2)


def _square(value: int) -> int:
    return value * value


def _reciprocal(value: int) -> float:
    return 1.0 / value


class TestServiceSharded:
    def test_process_executor_bit_identical(self):
        database = _star_database(null_rate=0.3)
        sql = JOIN_SQL + " LIMIT 15"
        reference = AnnotationService(
            database, ServiceOptions(epsilon=0.25, seed=11)).submit(sql)
        for options in (
                ServiceOptions(epsilon=0.25, seed=11, shards=4, jobs=2),
                ServiceOptions(epsilon=0.25, seed=11, shards=4, jobs=2,
                               executor="process"),
        ):
            response = AnnotationService(database, options).submit(sql)
            assert [a.values for a in response.answers] == \
                [a.values for a in reference.answers]
            assert [a.certainty.value for a in response.answers] == \
                [a.certainty.value for a in reference.answers]

    def test_adaptive_process_matches_thread(self):
        database = _star_database(null_rate=0.3)
        sql = JOIN_SQL + " LIMIT 10"
        thread = AnnotationService(database, ServiceOptions(
            epsilon=0.3, seed=2, adaptive=True, jobs=2)).submit(sql)
        process = AnnotationService(database, ServiceOptions(
            epsilon=0.3, seed=2, adaptive=True, jobs=2,
            executor="process")).submit(sql)
        assert [a.certainty.value for a in process.answers] == \
            [a.certainty.value for a in thread.answers]

    def test_unknown_executor_rejected(self):
        database = _star_database(fact_rows=4, dim_rows=2)
        with pytest.raises(ValueError):
            AnnotationService(database, ServiceOptions(executor="fiber"))

    def test_stats_report_shards_and_backends(self):
        database = _star_database()
        service = AnnotationService(
            database, ServiceOptions(epsilon=0.3, seed=0, shards=2))
        service.submit(JOIN_SQL + " LIMIT 5")
        service.submit(JOIN_SQL + " LIMIT 5")
        stats = service.stats()
        assert [b.backend for b in stats.backends] == ["columnar"]
        assert stats.backends[0].requests == 2
        assert stats.backends[0].plan_hits == 1
        assert stats.backends[0].plan_misses == 1
        assert [s.shard for s in stats.shards] == [0, 1]
        assert all(s.tasks == 1 for s in stats.shards)  # second plan cached
        report = stats.report()
        assert "shard[0]" in report and "shard[1]" in report
        assert "backend" in report and "columnar" in report
        as_dict = stats.as_dict()
        assert as_dict["backends"][0]["backend"] == "columnar"
        assert len(as_dict["shards"]) == 2
