"""Unit tests for the network wire protocol (no sockets involved)."""

from __future__ import annotations

import json
import math

import pytest

from repro.certainty.result import CertaintyResult
from repro.server.protocol import (
    MAX_LINE_BYTES,
    OverloadError,
    ProtocolError,
    decode_answer,
    decode_certainty,
    decode_value,
    dump_line,
    encode_answer,
    encode_certainty,
    encode_value,
    load_line,
    parse_query_request,
    request_key,
    sanitize,
)
from repro.service.answers import AnnotatedAnswer
from repro.relational.values import BaseNull, NumNull

DEFAULTS = {"epsilon": 0.05, "delta": 0.05, "method": "afpras",
            "limit": None, "seed": 0, "adaptive": False}


class TestParseQueryRequest:
    def test_resolves_defaults(self):
        sql, options = parse_query_request({"sql": "SELECT * FROM T"}, DEFAULTS)
        assert sql == "SELECT * FROM T"
        assert options == DEFAULTS

    def test_supplied_options_override_defaults(self):
        _, options = parse_query_request(
            {"sql": "SELECT * FROM T",
             "options": {"epsilon": 0.2, "limit": 5, "adaptive": True}},
            DEFAULTS)
        assert options["epsilon"] == 0.2
        assert options["limit"] == 5
        assert options["adaptive"] is True
        assert options["method"] == "afpras"

    def test_accepts_query_alias(self):
        sql, _ = parse_query_request({"query": "SELECT 1 FROM T"}, DEFAULTS)
        assert sql == "SELECT 1 FROM T"

    @pytest.mark.parametrize("message", [
        {}, {"sql": ""}, {"sql": "   "}, {"sql": 7},
        {"sql": "SELECT * FROM T", "options": "not an object"},
        {"sql": "SELECT * FROM T", "options": {"jobs": 4}},
        {"sql": "SELECT * FROM T", "options": {"epsilon": 0.0}},
        {"sql": "SELECT * FROM T", "options": {"epsilon": 2.0}},
        {"sql": "SELECT * FROM T", "options": {"epsilon": True}},
        {"sql": "SELECT * FROM T", "options": {"delta": 1.5}},
        {"sql": "SELECT * FROM T", "options": {"method": "magic"}},
        {"sql": "SELECT * FROM T", "options": {"limit": -1}},
        {"sql": "SELECT * FROM T", "options": {"limit": 2.5}},
        {"sql": "SELECT * FROM T", "options": {"seed": -3}},
        {"sql": "SELECT * FROM T", "options": {"adaptive": "yes"}},
    ])
    def test_rejects_malformed_requests(self, message):
        with pytest.raises(ProtocolError) as excinfo:
            parse_query_request(message, DEFAULTS)
        assert excinfo.value.code == "bad_request"

    def test_overload_error_is_typed(self):
        event = OverloadError("full").as_event("req-1")
        assert event == {"id": "req-1", "type": "error", "code": "overloaded",
                         "message": "full"}


class TestRequestKey:
    def test_whitespace_insensitive(self):
        assert request_key("SELECT  *\nFROM T", DEFAULTS) == \
            request_key("SELECT * FROM T", DEFAULTS)

    def test_explicit_default_equals_omitted(self):
        _, resolved_a = parse_query_request({"sql": "SELECT * FROM T"}, DEFAULTS)
        _, resolved_b = parse_query_request(
            {"sql": "SELECT * FROM T", "options": {"epsilon": 0.05}}, DEFAULTS)
        assert request_key("SELECT * FROM T", resolved_a) == \
            request_key("SELECT * FROM T", resolved_b)

    def test_distinct_options_distinct_keys(self):
        other = dict(DEFAULTS, epsilon=0.2)
        assert request_key("SELECT * FROM T", DEFAULTS) != \
            request_key("SELECT * FROM T", other)

    def test_distinct_sql_distinct_keys(self):
        assert request_key("SELECT a FROM T", DEFAULTS) != \
            request_key("SELECT b FROM T", DEFAULTS)

    def test_whitespace_inside_string_literals_is_significant(self):
        """Regression: ``'a  b'`` and ``'a b'`` are different queries and
        must never coalesce onto one flight."""
        assert request_key("SELECT x FROM T WHERE s = 'a  b'", DEFAULTS) != \
            request_key("SELECT x FROM T WHERE s = 'a b'", DEFAULTS)

    def test_whitespace_outside_literals_still_collapses(self):
        assert request_key("SELECT x\n   FROM T WHERE s = 'a  b'", DEFAULTS) == \
            request_key("SELECT x FROM T WHERE s = 'a  b'", DEFAULTS)


class TestNormaliseSql:
    def test_collapses_outside_literals_only(self):
        from repro.service.service import normalise_sql
        assert normalise_sql("SELECT  a\nFROM T") == "SELECT a FROM T"
        assert normalise_sql("WHERE s = 'a  b'  AND t") != \
            normalise_sql("WHERE s = 'a b'  AND t")
        assert normalise_sql("WHERE s =\n'a  b' AND  t") == \
            normalise_sql("WHERE s = 'a  b' AND t")

    def test_escaped_quotes_stay_inside_the_literal(self):
        from repro.service.service import normalise_sql
        # '' escapes a quote, so the literal runs to the final quote; the
        # doubled spaces inside must survive.
        sql = "WHERE s = 'it''s  fine' AND t"
        assert "it''s  fine" in normalise_sql(sql)


class TestValueCodec:
    @pytest.mark.parametrize("value", ["plain", 3, 2.75, True, None])
    def test_constants_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_nulls_roundtrip(self):
        assert decode_value(encode_value(NumNull("x1"))) == NumNull("x1")
        assert decode_value(encode_value(BaseNull("b2"))) == BaseNull("b2")

    def test_floats_roundtrip_bit_exactly_through_json(self):
        value = 0.1 + 0.2  # not representable prettily; repr round-trips
        wire = json.loads(json.dumps(encode_value(value)))
        assert decode_value(wire) == value


class TestSanitize:
    def test_numpy_scalars_and_arrays(self):
        numpy = pytest.importorskip("numpy")
        payload = {"a": numpy.float64(0.5), "b": numpy.int32(3),
                   "c": numpy.arange(3), "d": [numpy.float32(1.5)]}
        clean = sanitize(payload)
        assert clean == {"a": 0.5, "b": 3, "c": [0, 1, 2], "d": [1.5]}
        json.dumps(clean)  # must be JSON-serialisable

    def test_bytes_become_hex(self):
        assert sanitize(b"\x00\xff") == "00ff"

    def test_unknown_objects_become_strings(self):
        class Odd:
            def __repr__(self):
                return "odd!"
        assert sanitize({1: Odd()}) == {"1": "odd!"}


class TestAnswerCodec:
    def _answer(self) -> AnnotatedAnswer:
        certainty = CertaintyResult(
            value=0.625, method="afpras", guarantee="additive",
            epsilon=0.05, delta=0.01, samples=1234, dimension=7,
            relevant_dimension=2,
            details={"interval": [0.6, 0.65], "note": "x"})
        return AnnotatedAnswer(
            values=("seg1", 4, NumNull("n3")), columns=("a", "b", "c"),
            certainty=certainty, witnesses=2, lineage_digest=b"\x01" * 32)

    def test_roundtrip_through_json(self):
        answer = self._answer()
        wire = json.loads(json.dumps(encode_answer(answer)))
        decoded = decode_answer(wire)
        assert decoded.values == answer.values
        assert decoded.columns == answer.columns
        assert decoded.witnesses == answer.witnesses
        assert decoded.lineage_digest == answer.lineage_digest
        assert decoded.certainty.value == answer.certainty.value
        assert decoded.certainty.epsilon == answer.certainty.epsilon
        assert decoded.certainty.samples == answer.certainty.samples
        assert decoded.certainty.interval() == answer.certainty.interval()
        assert decoded.certainty.details["interval"] == [0.6, 0.65]

    def test_certainty_interval_preserved_on_wire(self):
        wire = encode_certainty(self._answer().certainty)
        low, high = wire["interval"]
        assert math.isclose(low, 0.575) and math.isclose(high, 0.675)
        assert decode_certainty(wire).interval() == (low, high)


class TestFraming:
    def test_dump_load_roundtrip(self):
        message = {"op": "query", "id": 7, "sql": "SELECT ⊤ FROM T"}
        assert load_line(dump_line(message)) == message

    def test_load_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            load_line(b"not json\n")
        with pytest.raises(ProtocolError):
            load_line(b"[1, 2, 3]\n")

    def test_line_limit_is_generous(self):
        assert MAX_LINE_BYTES >= 1024 * 1024
