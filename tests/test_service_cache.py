"""Tests for the LRU cache, the compile-formula memo, and canonicalisation."""

from __future__ import annotations

import threading
import time

import pytest

from repro.caching import LruCache, SingleFlight
from repro.compile import (
    DEFAULT_COMPILE_CACHE_SIZE,
    compile_cache_stats,
    compile_formula,
    configure_compile_cache,
)
from repro.constraints.atoms import Comparison, Constraint
from repro.constraints.formula import And, Atom, Or
from repro.constraints.polynomials import Polynomial
from repro.service.canonical import CanonicalisationError, canonicalise
from repro.service.rng import root_sequence, spawn_stream


def atom(name: str, op: Comparison = Comparison.LE, bound: float = 16.0) -> Atom:
    return Atom(Constraint(Polynomial.variable(name) - Polynomial.constant(bound), op))


class TestLruCache:
    def test_eviction_order_is_least_recently_used(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now oldest
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_counters(self):
        cache = LruCache(1, name="unit")
        cache.get("missing")
        cache.put("k", "v")
        cache.get("k")
        cache.put("other", "w")  # evicts "k"
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.evictions) == (1, 1, 1)
        assert stats.name == "unit" and stats.size == 1
        assert stats.hit_rate == pytest.approx(0.5)

    def test_get_or_compute_only_computes_on_miss(self):
        cache = LruCache(4)
        calls = []
        assert cache.get_or_compute("k", lambda: calls.append(1) or "value") == "value"
        assert cache.get_or_compute("k", lambda: calls.append(1) or "other") == "value"
        assert len(calls) == 1

    def test_resize_shrinks_and_counts_evictions(self):
        cache = LruCache(4)
        for index in range(4):
            cache.put(index, index)
        cache.resize(2)
        assert len(cache) == 2
        assert cache.stats().evictions == 2
        assert 3 in cache  # newest survive

    def test_rejects_silly_capacity(self):
        with pytest.raises(ValueError):
            LruCache(0)
        with pytest.raises(ValueError):
            LruCache(4).resize(-1)

    def test_peek_reads_without_counting(self):
        cache = LruCache(4, name="peeked")
        cache.put("k", "v")
        before = cache.stats()
        assert cache.peek("k") == "v"
        assert cache.peek("missing") is None
        assert cache.peek("missing", "fallback") == "fallback"
        after = cache.stats()
        assert (after.hits, after.misses) == (before.hits, before.misses)


class TestSingleFlight:
    def test_follower_joins_the_leaders_flight(self):
        flights = SingleFlight(name="unit")
        entered = threading.Event()
        release = threading.Event()
        outcomes = []

        def leader_factory():
            entered.set()
            assert release.wait(30)
            return "computed"

        def lead():
            outcomes.append(("leader", *flights.run("k", leader_factory)))

        def follow():
            outcomes.append(("follower",
                             *flights.run("k", lambda: "recomputed!")))

        leader = threading.Thread(target=lead)
        leader.start()
        assert entered.wait(30)
        follower = threading.Thread(target=follow)
        follower.start()
        while flights.stats().joins == 0 and follower.is_alive():
            if not leader.is_alive():  # pragma: no cover - failure path
                break
            time.sleep(0.001)
        release.set()
        leader.join(30)
        follower.join(30)
        assert ("leader", "computed", True) in outcomes
        assert ("follower", "computed", False) in outcomes, \
            "the follower must receive the leader's value, not recompute"
        stats = flights.stats()
        assert stats.launches == 1 and stats.joins == 1
        assert stats.in_flight == 0

    def test_sequential_runs_do_not_coalesce(self):
        flights = SingleFlight()
        first, first_leader = flights.run("k", lambda: 1)
        second, second_leader = flights.run("k", lambda: 2)
        assert (first, first_leader) == (1, True)
        assert (second, second_leader) == (2, True), \
            "a landed flight must not serve later arrivals"

    def test_distinct_keys_run_independently(self):
        flights = SingleFlight()
        assert flights.run("a", lambda: "x") == ("x", True)
        assert flights.run("b", lambda: "y") == ("y", True)
        assert flights.stats().launches == 2

    def test_leader_exception_propagates_to_followers(self):
        flights = SingleFlight()
        entered = threading.Event()
        release = threading.Event()
        errors = []

        def exploding():
            entered.set()
            assert release.wait(30)
            raise RuntimeError("flight failed")

        def lead():
            try:
                flights.run("k", exploding)
            except RuntimeError as error:
                errors.append(("leader", str(error)))

        def follow():
            try:
                flights.run("k", lambda: "never")
            except RuntimeError as error:
                errors.append(("follower", str(error)))

        leader = threading.Thread(target=lead)
        leader.start()
        assert entered.wait(30)
        follower = threading.Thread(target=follow)
        follower.start()
        while flights.stats().joins == 0 and follower.is_alive():
            if not leader.is_alive():  # pragma: no cover - failure path
                break
            time.sleep(0.001)
        release.set()
        leader.join(30)
        follower.join(30)
        assert ("leader", "flight failed") in errors
        assert ("follower", "flight failed") in errors
        assert flights.stats().failures == 1


@pytest.fixture
def compile_cache():
    """Run a test against a small, clean compile memo; restore afterwards."""
    configure_compile_cache(capacity=4, clear=True)
    yield
    configure_compile_cache(capacity=DEFAULT_COMPILE_CACHE_SIZE, clear=True)


class TestCompileFormulaMemo:
    def test_hits_and_misses_are_counted(self, compile_cache):
        formula = And((atom("x"), atom("y", Comparison.GT)))
        compile_formula(formula, ("x", "y"))
        compile_formula(formula, ("x", "y"))
        stats = compile_cache_stats()
        assert stats.misses == 1 and stats.hits == 1
        assert stats.name == "compiled kernels"

    def test_null_renamed_variants_share_one_artefact(self, compile_cache):
        # The memo keys by canonical lineage digest: the same formula
        # skeleton over differently-named nulls is one compiled kernel.
        first = compile_formula(atom("rrp_1"), ("rrp_1",))
        second = compile_formula(atom("rrp_2"), ("rrp_2",))
        assert first is second
        stats = compile_cache_stats()
        assert stats.misses == 1 and stats.hits == 1
        assert stats.size == 1

    def test_capacity_bounds_the_memo(self, compile_cache):
        # Distinct bounds make structurally distinct lineages (same-shape
        # formulas over renamed nulls would share one canonical entry).
        for index in range(8):
            compile_formula(atom(f"x{index}", bound=float(index)),
                            (f"x{index}",))
        stats = compile_cache_stats()
        assert stats.size == 4
        assert stats.evictions == 4

    def test_recompilation_after_eviction_is_equivalent(self, compile_cache):
        formula = atom("x")
        first = compile_formula(formula, ("x",))
        for index in range(6):  # flush "x" out of the 4-entry memo
            compile_formula(atom(f"y{index}", bound=float(index + 100)),
                            (f"y{index}",))
        second = compile_formula(formula, ("x",))
        assert first is not second
        assert first.table.constraints == second.table.constraints


class TestCanonicalisation:
    def test_renaming_invariance(self):
        left = canonicalise(atom("z_a"), ("z_a",))
        right = canonicalise(atom("z_b"), ("z_b",))
        assert left.key == right.key
        assert left.digest == right.digest
        assert left.variables == ("v0",)

    def test_multivariate_renaming_follows_position(self):
        chain = lambda a, b: And((  # noqa: E731 - tiny local helper
            Atom(Constraint(Polynomial.variable(a) - Polynomial.variable(b),
                            Comparison.LT)),
            atom(b),
        ))
        left = canonicalise(chain("z_1", "z_2"), ("z_1", "z_2"))
        right = canonicalise(chain("z_8", "z_9"), ("z_8", "z_9"))
        assert left.key == right.key and left.digest == right.digest

    def test_distinct_structures_get_distinct_digests(self):
        le = canonicalise(atom("x", Comparison.LE), ("x",))
        lt = canonicalise(atom("x", Comparison.LT), ("x",))
        disjunct = canonicalise(Or((atom("x"), atom("x", Comparison.GT))), ("x",))
        assert len({le.digest, lt.digest, disjunct.digest}) == 3

    def test_dimension_is_part_of_the_key(self):
        narrow = canonicalise(atom("x"), ("x",))
        wide = canonicalise(atom("x"), ("x", "unused"))
        assert narrow.digest != wide.digest

    def test_unknown_variable_rejected(self):
        with pytest.raises(CanonicalisationError):
            canonicalise(atom("mystery"), ("x",))

    def test_translation_is_self_contained(self):
        canonical = canonicalise(atom("z_q"), ("z_q",))
        translation = canonical.translation()
        assert translation.relevant_variables == ("v0",)
        assert translation.formula.evaluate({"v0": 10.0})
        assert not translation.formula.evaluate({"v0": 20.0})


class TestSpawnedStreams:
    def test_same_tokens_same_stream(self):
        root = root_sequence(42)
        first = spawn_stream(root, b"digest-bytes", 3).integers(0, 1 << 30, 8)
        second = spawn_stream(root, b"digest-bytes", 3).integers(0, 1 << 30, 8)
        assert list(first) == list(second)

    def test_different_tokens_different_streams(self):
        root = root_sequence(42)
        first = spawn_stream(root, b"digest-bytes", 0).integers(0, 1 << 30, 8)
        second = spawn_stream(root, b"digest-bytes", 1).integers(0, 1 << 30, 8)
        third = spawn_stream(root, b"other-digest!", 0).integers(0, 1 << 30, 8)
        assert list(first) != list(second)
        assert list(first) != list(third)

    def test_roots_differ_by_seed(self):
        first = spawn_stream(root_sequence(1), 0).integers(0, 1 << 30, 8)
        second = spawn_stream(root_sequence(2), 0).integers(0, 1 << 30, 8)
        assert list(first) != list(second)
