"""Versioned differential harness: incremental MVCC path vs full rebuild.

The live data plane claims that mutating a snapshot incrementally --
append segments, deletion rebuilds, delta-maintained join frontiers,
version-keyed caches -- is *observationally identical* to rebuilding the
database from scratch at every version.  This harness proves it the same
way :mod:`tests.test_columnar_differential` proves columnar/rows
equivalence: hundreds of seeded random cases, each a random schema, a
random mutation script (interleaved multi-row INSERTs, predicated
DELETEs and UPDATEs, fresh NULLs) and random queries replayed at *every*
intermediate version against

* the incremental **rows** snapshot chain,
* the incremental **columnar** chain under a persistent
  :class:`~repro.engine.vectorized.FrontierCache` and a random shard
  count from {1, 2, 5}, and
* a from-scratch :meth:`~repro.relational.database.Database.from_dict`
  rebuild of the same content (fresh version chain, no caches),

demanding bit-identical candidates, witness order, lineage formulas,
canonical lineage digests -- and, on sampled low-dimensional lineages,
bit-identical certainty estimates, which follow from equal digests
because the Monte-Carlo streams are keyed on them.

Statements that fail (validation, conflict) must fail identically on
every chain and leave every snapshot untouched.

``REPRO_DIFFERENTIAL_CASES`` scales the case count (the nightly job runs
10x the default; developers can scale it down for fast iteration).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.certainty.measure import certainty_from_translation
from repro.datagen.generic import ColumnSpec, TableSpec, generate_database
from repro.datagen.mutations import random_mutation_script
from repro.engine.candidates import enumerate_candidates
from repro.engine.mutate import execute_mutation
from repro.engine.sql.parser import parse_sql, parse_statement
from repro.engine.vectorized import FrontierCache
from repro.relational.database import Database
from repro.relational.mutation import MutationError
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.service.canonical import canonicalise_lineage

#: Default number of random (schema, data, script, query) cases; the
#: acceptance criterion requires at least 200 per run.
DEFAULT_CASES = 200

CASES = int(os.environ.get("REPRO_DIFFERENTIAL_CASES", DEFAULT_CASES))

BASE_POOL = ("red", "green", "blue", "amber")
NULL_RATES = (0.0, 0.1, 0.3)
SHARD_CHOICES = (1, 2, 5)


def _random_case(rng: np.random.Generator):
    """One random (schema, specs, pool, queries) mutation case.

    Tables stay small (2-12 rows): every case replays its queries at
    every version on three engines, so per-version cost is what bounds
    the harness, not per-case cost.
    """
    table_count = int(rng.integers(1, 3)) if rng.random() < 0.9 else 3
    key_pool = tuple(f"k{i}" for i in range(int(rng.integers(2, 6))))
    pool = key_pool + BASE_POOL
    relation_schemas = []
    specs = {}
    for table_index in range(table_count):
        columns = {"key": "base"}
        if rng.random() < 0.3:
            columns["tag"] = "base"
        for numeric_index in range(int(rng.integers(1, 3))):
            columns[f"x{numeric_index}"] = "num"
        relation_schema = RelationSchema.of(f"T{table_index}", **columns)
        relation_schemas.append(relation_schema)
        column_specs = {}
        for attribute in relation_schema.attributes:
            null_rate = float(rng.choice(NULL_RATES))
            if attribute.name == "key":
                column_specs["key"] = ColumnSpec(
                    choices=key_pool, null_rate=min(null_rate, 0.1))
            elif attribute.name == "tag":
                column_specs["tag"] = ColumnSpec(choices=BASE_POOL,
                                                 null_rate=null_rate)
            else:
                low = float(rng.uniform(-5.0, 0.0))
                column_specs[attribute.name] = ColumnSpec(
                    uniform=(low, low + float(rng.uniform(1.0, 10.0))),
                    null_rate=null_rate)
        specs[relation_schema.name] = TableSpec(
            rows=int(rng.integers(2, 13)), columns=column_specs)
    schema = DatabaseSchema.of(*relation_schemas)

    # -- queries replayed at every version -----------------------------------
    queries = []
    # A single-table filter always rides along: it exercises the
    # append-only frontier fast path most often.
    table = f"T{int(rng.integers(0, table_count))}"
    numeric = [a.name for a in schema.relation(table).attributes
               if a.is_numeric]
    operator = str(rng.choice(("<", "<=", ">", ">=")))
    bound = f"{float(rng.uniform(-3.0, 5.0)):.3f}"
    queries.append((f"SELECT * FROM {table} "
                    f"WHERE {table}.{rng.choice(numeric)} {operator} {bound}",
                    bool(rng.random() < 0.7)))
    if table_count > 1:
        # And a join, so delta-join telescoping faces every script.
        left, right = "T0", f"T{int(rng.integers(1, table_count))}"
        right_numeric = [a.name for a in schema.relation(right).attributes
                         if a.is_numeric]
        sql = (f"SELECT A.key, B.{rng.choice(right_numeric)} "
               f"FROM {left} A, {right} B WHERE A.key = B.key")
        if rng.random() < 0.5:
            left_numeric = [a.name for a in schema.relation(left).attributes
                            if a.is_numeric]
            sql += (f" AND A.{rng.choice(left_numeric)} "
                    f"{rng.choice(('<', '>'))} "
                    f"{float(rng.uniform(-2.0, 4.0)):.3f}")
        queries.append((sql, bool(rng.random() < 0.7)))
    return schema, specs, pool, queries


def _rebuild_from_scratch(database: Database, backend: str) -> Database:
    """The same content on a fresh version chain with no caches."""
    return Database.from_dict(
        database.schema,
        {name: database.relation(name).tuples()
         for name in database.relation_names()},
        backend=backend)


def _assert_equal(context: str, reference, candidate) -> None:
    assert len(reference) == len(candidate), context
    for expected, actual in zip(reference, candidate):
        assert expected.values == actual.values, context
        assert expected.columns == actual.columns, context
        assert expected.witnesses == actual.witnesses, context
        assert expected.lineage.formula == actual.lineage.formula, context
        assert canonicalise_lineage(expected.lineage).digest == \
            canonicalise_lineage(actual.lineage).digest, context


class TestMutationDifferential:
    def test_random_scripts_agree(self):
        """Incremental chains match from-scratch rebuilds at every version."""
        rng = np.random.default_rng(20200815)
        annotated = 0
        statements_applied = 0
        statements_rejected = 0
        for case_index in range(CASES):
            schema, specs, pool, queries = _random_case(rng)
            seed = int(rng.integers(0, 2**31))
            shards = int(rng.choice(SHARD_CHOICES))
            rows_chain = generate_database(schema, specs, rng=seed)
            columnar_chain = rows_chain.with_backend("columnar")
            frontier_cache = FrontierCache()
            script = random_mutation_script(
                rng, schema, pool, statements=int(rng.integers(2, 6)))
            selects = [(parse_sql(sql), sql, grouped)
                       for sql, grouped in queries]

            for step in range(len(script) + 1):
                for select, sql, grouped in selects:
                    context = (f"case {case_index} step {step} "
                               f"shards {shards}: {sql!r}")
                    reference = enumerate_candidates(
                        select, _rebuild_from_scratch(rows_chain, "rows"),
                        group_witnesses=grouped, max_witnesses=4000)
                    incremental_rows = enumerate_candidates(
                        select, rows_chain, group_witnesses=grouped,
                        max_witnesses=4000)
                    incremental_columnar = enumerate_candidates(
                        select, columnar_chain, group_witnesses=grouped,
                        max_witnesses=4000, shards=shards,
                        frontier_cache=frontier_cache)
                    _assert_equal(context, reference, incremental_rows)
                    _assert_equal(context, reference, incremental_columnar)

                    # Bit-identical certainties follow from equal digests
                    # (the Monte-Carlo stream is keyed on them); spot-check
                    # on low-dimensional lineages to keep the harness fast.
                    for expected, actual in zip(reference,
                                                incremental_columnar):
                        if annotated >= 2 * (case_index + 1):
                            break
                        if len(expected.lineage.relevant_variables) > 3:
                            continue
                        first = certainty_from_translation(
                            expected.lineage, epsilon=0.3, method="afpras",
                            rng=seed)
                        second = certainty_from_translation(
                            actual.lineage, epsilon=0.3, method="afpras",
                            rng=seed)
                        assert first.value == second.value, context
                        annotated += 1

                if step == len(script):
                    break
                statement = parse_statement(script[step])
                try:
                    rows_chain, _, rows_outcome = execute_mutation(
                        statement, rows_chain)
                except MutationError as error:
                    # The same statement must fail the same way on the
                    # columnar chain, leaving both snapshots untouched.
                    with pytest.raises(type(error)):
                        execute_mutation(statement, columnar_chain)
                    statements_rejected += 1
                    continue
                columnar_chain, _, columnar_outcome = execute_mutation(
                    statement, columnar_chain)
                assert rows_outcome == columnar_outcome, \
                    f"case {case_index} step {step}: {script[step]!r}"
                assert rows_chain.data_version == \
                    columnar_chain.data_version
                statements_applied += 1

        assert annotated > 0
        assert statements_applied > 0
        # The generator is biased toward applicable statements; rejections
        # ride along (conflicts on duplicate inserts mostly) but must not
        # dominate the script mix.
        assert statements_applied > statements_rejected

    def test_case_count_meets_floor(self):
        """Default and nightly runs cover the 200-case acceptance floor."""
        if "REPRO_DIFFERENTIAL_CASES" in os.environ and CASES < 200:
            pytest.skip(f"case count deliberately scaled down to {CASES}")
        assert CASES >= 200

    def test_rebuild_starts_a_fresh_chain(self):
        """A rebuilt database never satisfies the incremental caches."""
        schema = DatabaseSchema.of(RelationSchema.of("t", key="base",
                                                     x="num"))
        database = Database.from_dict(
            schema, {"t": [("a", 1.0), ("b", 2.0)]}, backend="columnar")
        rebuilt = _rebuild_from_scratch(database, "columnar")
        assert rebuilt.version_token is not database.version_token
        assert rebuilt.data_version == 0
        assert database.relation("t").tuples() == \
            rebuilt.relation("t").tuples()
