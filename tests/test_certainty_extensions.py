"""Tests for the Section 10 extensions: ranges, distributions, integer lattices."""

from __future__ import annotations

import math

import pytest

from repro.certainty.extensions import (
    Range,
    constrained_certainty,
    distributional_certainty,
    lattice_certainty,
)
from repro.constraints.atoms import Comparison, Constraint
from repro.constraints.formula import And, Atom
from repro.constraints.polynomials import Polynomial
from repro.constraints.translate import TranslationResult
from repro.relational.values import NumNull


def var(name: str) -> Polynomial:
    return Polynomial.variable(name)


def make_translation(formula, variables):
    return TranslationResult(
        formula=formula,
        all_variables=tuple(variables),
        relevant_variables=tuple(name for name in variables if name in formula.variables()),
        null_by_variable={name: NumNull(name.removeprefix("z_")) for name in variables},
    )


class TestRange:
    def test_validation(self):
        with pytest.raises(ValueError):
            Range(lower=2.0, upper=1.0)
        assert Range(lower=0.0, upper=1.0).is_bounded
        assert not Range(lower=0.0).is_bounded


class TestRangeConstraints:
    def test_bounded_range_changes_the_measure(self):
        # z > 5 has asymptotic measure 1/2, but knowing z in [0, 10] makes it 1/2 too;
        # knowing z in [0, 4] makes it 0 and z in [6, 10] makes it 1.
        formula = Atom(Constraint(var("z_a") - 5.0, Comparison.GT))
        translation = make_translation(formula, ("z_a",))
        inside = constrained_certainty(translation, {"z_a": Range(6.0, 10.0)},
                                       epsilon=0.05, rng=0)
        outside = constrained_certainty(translation, {"z_a": Range(0.0, 4.0)},
                                        epsilon=0.05, rng=0)
        across = constrained_certainty(translation, {"z_a": Range(0.0, 10.0)},
                                       epsilon=0.03, rng=0)
        assert inside.value == 1.0
        assert outside.value == 0.0
        assert across.value == pytest.approx(0.5, abs=0.05)

    def test_half_bounded_range_restricts_direction_sign(self):
        # mu(z > 0) = 1/2 unconstrained, 1 when z >= 0 is known, 0 when z <= 0.
        formula = Atom(Constraint(var("z_a"), Comparison.GT))
        translation = make_translation(formula, ("z_a",))
        positive = constrained_certainty(translation, {"z_a": Range(lower=0.0)},
                                         epsilon=0.05, rng=1)
        negative = constrained_certainty(translation, {"z_a": Range(upper=0.0)},
                                         epsilon=0.05, rng=1)
        assert positive.value == pytest.approx(1.0, abs=0.01)
        assert negative.value == pytest.approx(0.0, abs=0.01)

    def test_mixed_bounded_and_asymptotic(self):
        # With d known to be in [0, 1] and p unconstrained, mu(p > 10*d) = 1/2.
        formula = Atom(Constraint(var("z_p") - 10.0 * var("z_d"), Comparison.GT))
        translation = make_translation(formula, ("z_d", "z_p"))
        result = constrained_certainty(translation, {"z_d": Range(0.0, 1.0)},
                                       epsilon=0.03, rng=2)
        assert result.value == pytest.approx(0.5, abs=0.05)

    def test_unconstrained_extension_matches_plain_measure(self):
        formula = And((Atom(Constraint(var("z_a"), Comparison.GT)),
                       Atom(Constraint(var("z_b"), Comparison.GT))))
        translation = make_translation(formula, ("z_a", "z_b"))
        result = constrained_certainty(translation, {}, epsilon=0.03, rng=3)
        assert result.value == pytest.approx(0.25, abs=0.05)


class TestDistributions:
    def test_uniform_distribution(self):
        formula = Atom(Constraint(var("z_a") - 0.25, Comparison.GT))
        translation = make_translation(formula, ("z_a",))
        result = distributional_certainty(
            translation, {"z_a": lambda generator: generator.uniform(0.0, 1.0)},
            epsilon=0.03, rng=0)
        assert result.value == pytest.approx(0.75, abs=0.05)

    def test_normal_distribution(self):
        formula = Atom(Constraint(var("z_a"), Comparison.GT))
        translation = make_translation(formula, ("z_a",))
        result = distributional_certainty(
            translation, {"z_a": lambda generator: generator.normal(1.0, 1.0)},
            epsilon=0.03, rng=1)
        expected = 1.0 - 0.5 * math.erfc(1.0 / math.sqrt(2.0))
        assert result.value == pytest.approx(expected, abs=0.05)

    def test_missing_distribution_is_an_error(self):
        formula = Atom(Constraint(var("z_a"), Comparison.GT))
        translation = make_translation(formula, ("z_a",))
        with pytest.raises(ValueError):
            distributional_certainty(translation, {}, rng=0)


class TestIntegerLattice:
    def test_matches_volumetric_measure_for_large_radius(self):
        formula = And((Atom(Constraint(var("z_a"), Comparison.GT)),
                       Atom(Constraint(var("z_b"), Comparison.LT))))
        translation = make_translation(formula, ("z_a", "z_b"))
        result = lattice_certainty(translation, radius=200.0, epsilon=0.03, rng=0)
        assert result.value == pytest.approx(0.25, abs=0.05)

    def test_no_variables(self):
        formula = Atom(Constraint(Polynomial.constant(-1.0), Comparison.LT))
        translation = make_translation(formula, ())
        assert lattice_certainty(translation, radius=10.0).value == 1.0

    def test_rejects_tiny_radius(self):
        formula = Atom(Constraint(var("z_a"), Comparison.GT))
        translation = make_translation(formula, ("z_a",))
        with pytest.raises(ValueError):
            lattice_certainty(translation, radius=0.5)
