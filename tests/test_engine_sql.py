"""Tests for the SQL lexer, parser and SQL-to-logic translation."""

from __future__ import annotations

import pytest

from repro.engine.sql.ast import (
    BinaryExpression,
    ColumnExpression,
    NumberLiteral,
    StringLiteral,
)
from repro.engine.sql.lexer import SqlSyntaxError, TokenType, tokenize
from repro.engine.sql.parser import parse_sql
from repro.engine.translate_sql import SqlTranslationError, sql_to_query
from repro.logic.fragments import classify_query
from repro.logic.typecheck import check_query
from repro.relational.schema import DatabaseSchema, RelationSchema


@pytest.fixture
def sales_schema() -> DatabaseSchema:
    return DatabaseSchema.of(
        RelationSchema.of("Products", id="base", seg="base", rrp="num", dis="num"),
        RelationSchema.of("Market", seg="base", rrp="num", dis="num"),
    )


class TestLexer:
    def test_tokenizes_keywords_identifiers_and_operators(self):
        tokens = tokenize("SELECT P.seg FROM Products P WHERE P.rrp <= 10.5")
        kinds = [token.type for token in tokens]
        assert kinds[0] is TokenType.KEYWORD
        assert TokenType.NUMBER in kinds
        assert kinds[-1] is TokenType.END

    def test_string_literals_and_escapes(self):
        tokens = tokenize("SELECT a FROM T WHERE b = 'it''s'")
        strings = [token for token in tokens if token.type is TokenType.STRING]
        assert len(strings) == 1

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @ FROM T")

    def test_keywords_are_case_insensitive(self):
        tokens = tokenize("select a from T")
        assert tokens[0].matches(TokenType.KEYWORD, "SELECT")


class TestParser:
    def test_parses_the_competitive_advantage_query(self):
        query = parse_sql(
            "SELECT P.seg FROM Products P, Market M "
            "WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 25")
        assert [table.binding for table in query.tables] == ["P", "M"]
        assert len(query.conditions) == 2
        assert query.limit == 25
        assert query.select == (ColumnExpression(column="seg", table="P"),)

    def test_parses_arithmetic_with_precedence_and_parentheses(self):
        query = parse_sql("SELECT a FROM T WHERE a + b * c <= (a - b) / 2")
        condition = query.conditions[0]
        assert isinstance(condition.left, BinaryExpression)
        assert condition.left.operator == "+"
        assert isinstance(condition.left.right, BinaryExpression)
        assert condition.left.right.operator == "*"
        assert isinstance(condition.right, BinaryExpression)
        assert condition.right.operator == "/"

    def test_parses_literals_and_unary_minus(self):
        query = parse_sql("SELECT a FROM T WHERE a >= -2 AND b = 'x'")
        first, second = query.conditions
        assert isinstance(first.right, BinaryExpression)  # 0 - 2
        assert isinstance(second.right, StringLiteral)

    def test_select_star_and_distinct(self):
        query = parse_sql("SELECT DISTINCT * FROM T LIMIT 3")
        assert query.select_star and query.distinct
        assert query.limit == 3

    def test_aliases_with_and_without_as(self):
        query = parse_sql("SELECT t.a FROM T AS t, S s WHERE t.a = s.a")
        assert [table.binding for table in query.tables] == ["t", "s"]

    def test_syntax_errors(self):
        for bad in (
            "FROM T",
            "SELECT FROM T",
            "SELECT a FROM",
            "SELECT a FROM T WHERE",
            "SELECT a FROM T WHERE a",
            "SELECT a FROM T LIMIT x",
            "SELECT a FROM T extra trailing",
            "SELECT a FROM T WHERE a < (b",
        ):
            with pytest.raises(SqlSyntaxError):
                parse_sql(bad)

    def test_number_literal_values(self):
        query = parse_sql("SELECT a FROM T WHERE a < 2.5e2")
        assert isinstance(query.conditions[0].right, NumberLiteral)
        assert query.conditions[0].right.value == pytest.approx(250.0)


class TestSqlToLogic:
    def test_produces_a_well_typed_conjunctive_query(self, sales_schema):
        select = parse_sql(
            "SELECT P.seg FROM Products P, Market M "
            "WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis LIMIT 25")
        query, bindings = sql_to_query(select, sales_schema)
        check_query(query, sales_schema)
        fragment = classify_query(query)
        assert fragment.conjunctive
        assert query.arity == 1
        assert len(bindings) == 1

    def test_base_equality_and_string_literals(self, sales_schema):
        select = parse_sql("SELECT P.id FROM Products P WHERE P.seg = 'seg1'")
        query, _ = sql_to_query(select, sales_schema)
        check_query(query, sales_schema)

    def test_unknown_table_and_column_are_rejected(self, sales_schema):
        with pytest.raises(SqlTranslationError):
            sql_to_query(parse_sql("SELECT a FROM Nope"), sales_schema)
        with pytest.raises(SqlTranslationError):
            sql_to_query(parse_sql("SELECT P.nope FROM Products P"), sales_schema)

    def test_ambiguous_column_requires_alias(self, sales_schema):
        with pytest.raises(SqlTranslationError):
            sql_to_query(parse_sql("SELECT seg FROM Products P, Market M"), sales_schema)

    def test_unambiguous_bare_column_is_resolved(self, sales_schema):
        select = parse_sql("SELECT id FROM Products P WHERE dis <= 0.5")
        query, _ = sql_to_query(select, sales_schema)
        check_query(query, sales_schema)

    def test_base_numeric_mixing_is_rejected(self, sales_schema):
        with pytest.raises(SqlTranslationError):
            sql_to_query(parse_sql("SELECT P.id FROM Products P WHERE P.seg < 3"),
                         sales_schema)
        with pytest.raises(SqlTranslationError):
            sql_to_query(parse_sql("SELECT P.id FROM Products P WHERE P.rrp = P.seg"),
                         sales_schema)

    def test_duplicate_bindings_are_rejected(self, sales_schema):
        with pytest.raises(SqlTranslationError):
            sql_to_query(parse_sql("SELECT P.id FROM Products P, Products P"), sales_schema)
