"""Cluster-wide observability: trace propagation, history, profiles, alerts.

The acceptance-critical properties:

* one query through the coordinator produces **one** stitched trace --
  coordinator and worker spans under a single trace id, parent links
  intact across processes (and across failover attempts);
* tracing through the cluster never perturbs answers: observed and
  unobserved clusters return bit-identical certainties;
* ``GET /history``, ``profile`` and ``alerts`` aggregate the fleet
  through the coordinator; ``repro top --json`` and the alert probe
  expose them to operators and scripts.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.cli import EXIT_ALERT_FIRING, main
from repro.client import ReproClient
from repro.cluster import EmbeddedCluster
from repro.datagen.experiments import ExperimentScale, generate_sales_database
from repro.obs import (
    format_traceparent,
    new_context,
    parse_collapsed,
    snapshot_payload,
)
from repro.obs.console import fetch_sample
from repro.server import EmbeddedServer
from repro.service import AnnotationService, ServiceOptions

SQL = "SELECT M.seg FROM Market M WHERE M.rrp >= 0 LIMIT 3"
MUTATION = "INSERT INTO Orders VALUES ('obs-{n}', 'p1', {n}, 0.5)"

SCALE = ExperimentScale(products=30, orders=30, markets=6, null_rate=0.2)


def _database():
    return generate_sales_database(SCALE, rng=1)


def _service(database=None) -> AnnotationService:
    return AnnotationService(database if database is not None else _database(),
                             ServiceOptions(epsilon=0.1, seed=5))


@pytest.fixture(scope="module")
def cluster():
    database = _database()
    services = [_service(database) for _ in range(2)]
    with EmbeddedCluster(services, http=True) as embedded:
        yield embedded


def _span_index(processes):
    """{span_id: (process, span)} over a stitched trace payload."""
    index = {}
    for group in processes:
        for span in group["spans"]:
            index[span["span_id"]] = (group["process"], span)
    return index


class TestStitchedTraces:
    def test_query_result_carries_a_trace_id(self, cluster):
        with ReproClient(cluster.host, cluster.port) as client:
            result = client.query(SQL, seed=5)
        assert result.trace_id and len(result.trace_id) == 32
        int(result.trace_id, 16)  # 128-bit hex

    def test_one_query_exports_one_cross_process_trace(self, cluster):
        with ReproClient(cluster.host, cluster.port) as client:
            result = client.query(SQL, seed=5)
            payload = client.trace(result.trace_id)
        assert payload["trace_id"] == result.trace_id
        labels = [group["process"] for group in payload["processes"]]
        assert labels[0].startswith("coordinator:")
        assert any(label.startswith("worker:") for label in labels)

        index = _span_index(payload["processes"])
        coordinator_spans = [span for process, span in index.values()
                             if process.startswith("coordinator:")]
        names = {span["name"] for span in coordinator_spans}
        assert {"cluster.request", "forward"} <= names

        # Every parent link resolves inside the stitched span set: worker
        # roots parent onto the coordinator's forward span, intermediate
        # spans onto their local parents.
        roots = 0
        for process, span in index.values():
            parent = span["parent_id"]
            if parent is None or parent == 0:
                roots += 1
                assert process.startswith("coordinator:")
            else:
                assert parent in index, \
                    f"dangling parent {parent} in {process}"
        assert roots == 1, "exactly one root span per distributed trace"

    def test_chrome_export_stitches_processes_on_one_timeline(self, cluster,
                                                              tmp_path):
        with ReproClient(cluster.host, cluster.port) as client:
            result = client.query(SQL, seed=5)
            export = client.trace_export(result.trace_id)
        assert export["trace_id"] == result.trace_id
        assert export["span_count"] >= 3
        chrome = export["chrome"]
        meta = [e for e in chrome["traceEvents"] if e["ph"] == "M"]
        assert len(meta) == len(export["processes"]) >= 2
        spans = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        assert {e["pid"] for e in spans} == {e["pid"] for e in meta}
        assert all(e["args"].get("trace_id") == result.trace_id
                   for e in spans)
        # the CLI writes exactly this document
        exit_code = main(["cluster", "trace", str(tmp_path / "trace.json"),
                          "--host", cluster.host,
                          "--port", str(cluster.port),
                          "--trace-id", result.trace_id])
        assert exit_code == 0
        written = json.loads((tmp_path / "trace.json").read_text())
        assert written["otherData"]["trace_id"] == result.trace_id

    def test_mutation_broadcast_traces_every_worker(self, cluster):
        with ReproClient(cluster.host, cluster.port) as client:
            outcome = client.mutate(MUTATION.format(n=1))
            payload = client.trace(outcome.trace_id)
        labels = [group["process"] for group in payload["processes"]]
        workers = [label for label in labels if label.startswith("worker:")]
        assert sorted(workers) == ["worker:w0", "worker:w1"]
        index = _span_index(payload["processes"])
        forwards = [span for _, span in index.values()
                    if span["name"] == "forward"]
        assert len(forwards) == 2
        # sibling fan-out spans under the one mutation root
        assert len({span["parent_id"] for span in forwards}) == 1

    def test_worker_slow_log_records_the_propagated_trace_id(self, cluster):
        with ReproClient(cluster.host, cluster.port) as client:
            result = client.query(SQL, seed=5)
        entries = [entry
                   for server in cluster.worker_servers.values()
                   for entry in server.app.stats()["service"]["slow_queries"]]
        assert entries, "the query must land in some worker's slow log"
        # the worker logged the coordinator's trace id, not a local one:
        # the slowlog is joinable against the distributed trace
        assert result.trace_id in [entry.get("trace_id")
                                   for entry in entries]


class TestFailoverTraces:
    def test_failover_attempts_are_siblings_in_one_trace(self):
        database = _database()
        services = [_service(database) for _ in range(2)]
        with EmbeddedCluster(services, http=False) as cluster:
            owner = cluster.route_of(SQL)
            cluster.stop_worker(owner)
            with ReproClient(cluster.host, cluster.port,
                             timeout=60.0) as client:
                result = client.query(SQL, seed=5)
                assert result.answers
                payload = client.trace(result.trace_id)
        index = _span_index(payload["processes"])
        attempts = [span for _, span in index.values()
                    if span["name"] == "forward"]
        assert len(attempts) >= 2, "the failed attempt must leave a span"
        assert len({span["parent_id"] for span in attempts}) == 1, \
            "failover attempts are siblings under one root"
        outcomes = {span["attributes"].get("worker"):
                    span["attributes"].get("outcome")
                    for span in attempts}
        assert outcomes.get(owner) == "worker_unavailable"
        survivor = next(span["attributes"]["worker"] for span in attempts
                        if span["attributes"].get("worker") != owner)
        # the surviving worker's spans are stitched under the same trace
        assert any(process == f"worker:{survivor}"
                   for process, _ in index.values())


class TestBitIdentity:
    def test_observed_cluster_answers_match_unobserved(self):
        database = _database()
        results = {}
        for observe in (False, True):
            services = [_service(database) for _ in range(2)]
            with EmbeddedCluster(services, http=False,
                                 observe=observe) as cluster:
                with ReproClient(cluster.host, cluster.port) as client:
                    results[observe] = client.query(SQL, seed=5)
        bare, observed = results[False], results[True]
        assert [a.values for a in bare.answers] == \
            [a.values for a in observed.answers]
        assert [a.certainty.value for a in bare.answers] == \
            [a.certainty.value for a in observed.answers]
        assert [a.lineage_digest for a in bare.answers] == \
            [a.lineage_digest for a in observed.answers]
        assert bare.trace_id is None
        assert observed.trace_id is not None


class TestSingleServerPropagation:
    def test_server_adopts_a_client_traceparent(self):
        context = new_context()
        header = format_traceparent(context.trace_id, 0xabc123)
        with EmbeddedServer(_service(), http=False) as server:
            with ReproClient(server.host, server.port) as client:
                result = client.query(SQL, seed=5, traceparent=header)
                payload = client.trace(context.trace_id)
        assert result.trace_id == context.trace_id
        assert payload["process"].startswith("server:")
        roots = [span for span in payload["spans"]
                 if span["parent_id"] == 0xabc123]
        assert roots, "the server's root span must parent onto the caller"

    def test_a_malformed_traceparent_still_serves(self):
        with EmbeddedServer(_service(), http=False) as server:
            with ReproClient(server.host, server.port) as client:
                result = client.query(SQL, seed=5, traceparent="garbage")
        assert result.answers
        assert result.trace_id is not None  # served, traced locally


class TestFleetHistoryAndProfiles:
    def test_history_aggregates_coordinator_and_workers(self, cluster):
        with ReproClient(cluster.host, cluster.port) as client:
            client.query(SQL, seed=5)
            history = client.history()
        assert history["interval_seconds"] > 0
        assert history["snapshots"], "history() samples on demand"
        newest = history["snapshots"][-1]["samples"]
        assert "repro_cluster_requests_total" in newest
        assert any(key.startswith("repro_cluster_request_seconds_bucket")
                   for key in newest)
        assert sorted(history["workers"]) == ["w0", "w1"]
        for payload in history["workers"].values():
            worker_newest = payload["snapshots"][-1]["samples"]
            assert "repro_server_requests_total" in worker_newest

    def test_profile_merges_the_fleet(self, cluster):
        with ReproClient(cluster.host, cluster.port,
                         timeout=60.0) as client:
            payload = client.profile(seconds=0.2)
        assert payload["processes"] == 3  # coordinator + two workers
        assert payload["samples"] >= 1
        assert payload["stacks"] >= 1
        lines = payload["collapsed"].splitlines()
        assert len(lines) == payload["stacks"]

    def test_alerts_report_covers_both_slos(self, cluster):
        with ReproClient(cluster.host, cluster.port) as client:
            client.query(SQL, seed=5)
            payload = client.alerts()
            assert not payload["firing"], "a healthy fleet never alerts"
            states = {(alert["slo"], alert["severity"])
                      for alert in payload["alerts"]}
            assert states == {("availability", "page"),
                              ("availability", "ticket"),
                              ("latency", "page"), ("latency", "ticket")}
            assert all(alert["burn_short"] >= 0.0
                       for alert in payload["alerts"])
            stats = client.stats()
        assert {(a["slo"], a["severity"]) for a in stats["alerts"]} == states


class TestOperatorSurface:
    def test_top_json_snapshot_over_http(self, cluster):
        with ReproClient(cluster.host, cluster.port) as client:
            for seed in range(3):
                client.query(SQL, seed=seed)
        base = f"http://{cluster.host}:{cluster.http_port}"
        history = json.loads(urllib.request.urlopen(base + "/history").read())
        assert history["snapshots"]
        sample = fetch_sample(base)
        payload = snapshot_payload(sample)
        json.dumps(payload)  # machine-readable as-is
        assert payload["alerts"] and payload["firing"] is False
        assert [worker["id"] for worker in payload["workers"]] == ["w0", "w1"]

    def test_cli_top_json(self, cluster, capsys):
        exit_code = main(["top", "--host", cluster.host,
                          "--http-port", str(cluster.http_port), "--json"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "qps" in payload and "alerts" in payload

    def test_cli_alert_probe_exit_codes(self, cluster, capsys, monkeypatch):
        exit_code = main(["client", "--host", cluster.host,
                          "--port", str(cluster.port), "--probe", "alerts"])
        assert exit_code == 0
        assert "availability" in capsys.readouterr().out

        monkeypatch.setattr(
            ReproClient, "alerts",
            lambda self: {"alerts": [{"slo": "availability",
                                      "severity": "page",
                                      "burn_short": 20.0, "burn_long": 18.0,
                                      "burn_threshold": 14.4,
                                      "firing": True}],
                          "firing": True})
        exit_code = main(["client", "--host", cluster.host,
                          "--port", str(cluster.port), "--probe", "alerts"])
        assert exit_code == EXIT_ALERT_FIRING
        assert "FIRING" in capsys.readouterr().out

    def test_http_observability_routes(self, cluster):
        with ReproClient(cluster.host, cluster.port) as client:
            client.query(SQL, seed=5)  # leaves a stored trace to serve
        base = f"http://{cluster.host}:{cluster.http_port}"
        alerts = json.loads(urllib.request.urlopen(base + "/alerts").read())
        assert "firing" in alerts
        trace = json.loads(urllib.request.urlopen(base + "/trace").read())
        assert trace["otherData"]["trace_id"]  # a ready-to-load Chrome doc
        collapsed = urllib.request.urlopen(
            base + "/profile?seconds=0.1").read().decode("utf-8")
        # The route serves collapsed-stack text; every line must round-trip.
        merged = parse_collapsed(collapsed)
        assert all(count >= 1 for count in merged.values())
