"""Tests for Monte-Carlo sample-size bounds and estimation helpers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.montecarlo import (
    DEFAULT_DELTA,
    IndicatorEstimate,
    amplification_rounds,
    estimate_indicator_mean,
    hoeffding_sample_size,
    median_of_means,
    multiplicative_sample_size,
)


class TestSampleSizes:
    def test_hoeffding_matches_formula(self):
        assert hoeffding_sample_size(0.1, 0.25) == math.ceil(math.log(8.0) / 0.02)

    def test_smaller_epsilon_needs_more_samples(self):
        assert hoeffding_sample_size(0.01) > hoeffding_sample_size(0.1)

    def test_smaller_delta_needs_more_samples(self):
        assert hoeffding_sample_size(0.05, 0.01) > hoeffding_sample_size(0.05, 0.25)

    def test_scales_roughly_as_inverse_epsilon_squared(self):
        ratio = hoeffding_sample_size(0.01) / hoeffding_sample_size(0.1)
        assert ratio == pytest.approx(100.0, rel=0.02)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            hoeffding_sample_size(0.0)
        with pytest.raises(ValueError):
            hoeffding_sample_size(1.5)
        with pytest.raises(ValueError):
            hoeffding_sample_size(0.1, delta=0.0)

    def test_multiplicative_sample_size_uses_lower_bound(self):
        assert multiplicative_sample_size(0.1, 0.5) == hoeffding_sample_size(0.05)
        with pytest.raises(ValueError):
            multiplicative_sample_size(0.1, 0.0)

    @given(st.floats(min_value=0.01, max_value=1.0), st.floats(min_value=0.01, max_value=0.5))
    @settings(max_examples=50, deadline=None)
    def test_sample_size_is_always_positive(self, epsilon, delta):
        assert hoeffding_sample_size(epsilon, delta) >= 1


class TestEstimation:
    def test_estimate_constant_indicator(self, rng):
        estimate = estimate_indicator_mean(lambda generator: True, epsilon=0.1, rng=rng)
        assert estimate.value == 1.0
        assert estimate.positives == estimate.samples

    def test_estimate_fair_coin(self):
        estimate = estimate_indicator_mean(
            lambda generator: generator.random() < 0.5, epsilon=0.05, rng=11)
        assert estimate.value == pytest.approx(0.5, abs=0.05)

    def test_interval_is_clipped_to_unit_interval(self):
        estimate = IndicatorEstimate(value=0.02, samples=10, epsilon=0.1,
                                     delta=0.25, positives=0)
        low, high = estimate.interval()
        assert low == 0.0
        assert high == pytest.approx(0.12)

    def test_median_of_means_is_median(self):
        assert median_of_means([0.1, 0.9, 0.5]) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            median_of_means([])

    def test_amplification_rounds(self):
        assert amplification_rounds(DEFAULT_DELTA) == 1
        assert amplification_rounds(0.3) == 1
        assert amplification_rounds(0.01) > 1
        with pytest.raises(ValueError):
            amplification_rounds(0.0)
