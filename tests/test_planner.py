"""Tests for the cost-based planner: model, decisions, service/server wiring."""

from __future__ import annotations

import json

import pytest

from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import NumNull
from repro.server.protocol import ProtocolError, parse_query_request, result_event
from repro.service import (
    MAX_FUSION_BATCH,
    PLANNER_MODES,
    AnnotationService,
    CostModel,
    Planner,
)
from repro.service.planner import DEFAULT_COEFFICIENTS


@pytest.fixture
def shop() -> Database:
    schema = DatabaseSchema.of(
        RelationSchema.of("Products", id="base", seg="base", rrp="num", dis="num"),
        RelationSchema.of("Market", seg="base", rrp="num", dis="num"),
    )
    database = Database(schema)
    database.add("Products", ("p1", "tools", 10.0, 0.5))
    database.add("Products", ("p2", "tools", NumNull("rrp2"), 0.5))
    database.add("Products", ("p3", "tools", NumNull("rrp3"), 0.5))
    database.add("Products", ("p4", "garden", NumNull("rrp4"), 1.0))
    database.add("Market", ("tools", 8.0, 1.0))
    database.add("Market", ("garden", 10.0, 0.5))
    return database


ADVANTAGE = ("SELECT P.id FROM Products P, Market M "
             "WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis")


class TestCostModel:
    def test_defaults_are_the_builtin_coefficients(self):
        model = CostModel()
        assert model.source == "defaults"
        for key, value in DEFAULT_COEFFICIENTS.items():
            assert model[key] == value

    def test_load_merges_partial_calibrations_over_defaults(self, tmp_path):
        calibration = tmp_path / "calibration.json"
        calibration.write_text(json.dumps({
            "kernel_launch": 9.9e-4,
            "future_coefficient": 1.0,  # unknown keys kept, not rejected
        }))
        model = CostModel.load(str(calibration))
        assert model["kernel_launch"] == 9.9e-4
        assert model["future_coefficient"] == 1.0
        assert model["rows_row_cost"] == DEFAULT_COEFFICIENTS["rows_row_cost"]
        assert model.source == str(calibration)

    def test_load_honours_the_environment_override(self, tmp_path, monkeypatch):
        calibration = tmp_path / "env.json"
        calibration.write_text(json.dumps({"shard_overhead": 0.5}))
        monkeypatch.setenv("REPRO_CALIBRATION", str(calibration))
        monkeypatch.chdir(tmp_path)  # hide any repo-local calibration.json
        model = CostModel.load()
        assert model["shard_overhead"] == 0.5

    def test_unreadable_or_malformed_files_fall_back(self, tmp_path,
                                                     monkeypatch):
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        assert CostModel.load(str(broken)).source == "defaults"
        assert CostModel.load(str(tmp_path / "missing.json")).source == "defaults"
        scalar = tmp_path / "scalar.json"
        scalar.write_text("42")
        assert CostModel.load(str(scalar)).source == "defaults"

    def test_enumeration_cost_shapes(self):
        model = CostModel()
        tiny_rows = model.enumeration_cost("rows", 10, 1, 4)
        tiny_columnar = model.enumeration_cost("columnar", 10, 1, 4)
        assert tiny_rows < tiny_columnar, \
            "fixed columnar overhead must dominate on tiny tables"
        big_rows = model.enumeration_cost("rows", 500_000, 1, 4)
        big_columnar = model.enumeration_cost("columnar", 500_000, 1, 4)
        assert big_columnar < big_rows
        huge_sharded = model.enumeration_cost("columnar", 50_000_000, 4, 4)
        huge_single = model.enumeration_cost("columnar", 50_000_000, 1, 4)
        assert huge_sharded < huge_single

    def test_estimation_cost_rewards_fusion_on_many_groups(self):
        model = CostModel()
        solo = model.estimation_cost(64, 300, 2, 1)
        fused = model.estimation_cost(64, 300, 2, 64)
        assert fused < solo
        # One group cannot amortise anything.
        assert model.estimation_cost(1, 300, 2, 1) <= \
            model.estimation_cost(1, 300, 2, 64) + model["kernel_launch"]


class TestPlanner:
    def test_tiny_tables_fall_back_to_rows(self):
        planner = Planner(model=CostModel(), cpus=4)
        backend, shards = planner.plan_enumeration([4, 2])
        assert (backend, shards) == ("rows", 1)

    def test_large_tables_go_columnar(self):
        planner = Planner(model=CostModel(), cpus=1)
        backend, shards = planner.plan_enumeration([400_000, 200_000])
        assert backend == "columnar"
        assert shards == 1, "a 1-core host must not pay sharding overhead"

    def test_huge_tables_shard_across_cpus(self):
        planner = Planner(model=CostModel(), cpus=4)
        backend, shards = planner.plan_enumeration([80_000_000])
        assert (backend, shards) == ("columnar", 4)

    def test_plan_execution_fuses_many_sampled_groups(self):
        planner = Planner(model=CostModel(), cpus=1)
        jobs, executor, batch = planner.plan_execution(
            50, [2] * 50, epsilon=0.05, delta=0.05, method="afpras",
            adaptive=False, coarse=0.5, factor=2.0)
        assert 1 < batch <= MAX_FUSION_BATCH
        assert planner.stats().fused_plans == 1

    def test_plan_execution_never_fuses_exact_methods(self):
        planner = Planner(model=CostModel(), cpus=4)
        for method in ("exact", "fpras"):
            _, _, batch = planner.plan_execution(
                50, [2] * 50, epsilon=0.05, delta=0.05, method=method,
                adaptive=False, coarse=0.5, factor=2.0)
            assert batch == 0

    def test_plan_execution_zero_dimensional_groups_stay_solo(self):
        planner = Planner(model=CostModel(), cpus=4)
        _, _, batch = planner.plan_execution(
            50, [0] * 50, epsilon=0.05, delta=0.05, method="afpras",
            adaptive=False, coarse=0.5, factor=2.0)
        assert batch == 0

    def test_plan_execution_empty_schedule(self):
        planner = Planner(model=CostModel(), cpus=4)
        assert planner.plan_execution(
            0, [], epsilon=0.05, delta=0.05, method="afpras",
            adaptive=False, coarse=0.5, factor=2.0) == (1, "thread", 0)

    def test_runtime_feedback_outweighs_the_prior(self):
        planner = Planner(model=CostModel(), cpus=4)
        assert planner._observed_row_cost("rows") is None
        planner.observe_enumeration("rows", 500, 1.0)
        assert planner._observed_row_cost("rows") is None, \
            "too few rows observed to trust the feedback yet"
        planner.observe_enumeration("rows", 4_500, 9.0)
        assert planner._observed_row_cost("rows") == pytest.approx(2.0e-3)
        # With rows observed to be 1000x the calibrated prior, even a small
        # table now plans columnar.
        backend, _ = planner.plan_enumeration([600])
        assert backend == "columnar"
        assert planner.stats().observed_rows == {"rows": 5_000}

    def test_invalid_observations_are_ignored(self):
        planner = Planner(model=CostModel(), cpus=1)
        planner.observe_enumeration("rows", 0, 1.0)
        planner.observe_enumeration("rows", -5, 1.0)
        planner.observe_enumeration("rows", 10, -1.0)
        assert planner.stats().observed_rows == {}

    def test_decide_reports_the_full_configuration(self):
        planner = Planner(model=CostModel(), cpus=2)
        decision = planner.decide(
            [1_000_000], 40, [2] * 40, epsilon=0.05, delta=0.05,
            method="afpras", adaptive=True, coarse=0.5, factor=2.0)
        assert decision.backend == "columnar"
        assert decision.fusion > 1
        assert decision.estimated_cost > 0
        as_dict = decision.as_dict()
        assert set(as_dict) == {"backend", "shards", "jobs", "executor",
                                "fusion", "estimated_cost"}

    def test_stats_counts_plans_and_choices(self):
        planner = Planner(model=CostModel(), cpus=4)
        planner.plan_enumeration([5])
        planner.plan_enumeration([5])
        planner.plan_enumeration([900_000])
        stats = planner.stats()
        assert stats.plans == 3
        assert stats.backend_choices == {"rows": 2, "columnar": 1}
        assert stats.model_source == "defaults"
        assert set(stats.as_dict()) == {"plans", "backend_choices",
                                        "fused_plans", "observed_rows",
                                        "model_source"}


class TestServicePlannerWiring:
    def test_invalid_planner_mode_rejected(self, shop):
        with pytest.raises(ValueError, match="planner"):
            AnnotationService(shop, planner="optimizer")
        service = AnnotationService(shop)
        with pytest.raises(ValueError, match="planner"):
            service.submit(ADVANTAGE, planner="optimizer")
        with pytest.raises(ValueError, match="fusion"):
            service.submit(ADVANTAGE, fusion=-1)

    def test_auto_mode_records_its_plan(self, shop):
        service = AnnotationService(shop, epsilon=0.2)
        response = service.submit(ADVANTAGE, seed=3, planner="auto")
        planned = response.stats.planned
        assert planned is not None
        assert planned["backend"] == "rows", \
            "the tiny shop database must take the rows fallback"
        assert planned["shards"] == 1
        stats = service.stats()
        assert stats.planner is not None
        assert stats.planner.plans >= 1
        assert stats.planner.backend_choices.get("rows", 0) >= 1
        assert "planner" in stats.report()
        assert stats.as_dict()["planner"]["plans"] >= 1

    def test_manual_mode_reports_no_planner(self, shop):
        service = AnnotationService(shop, epsilon=0.2)
        response = service.submit(ADVANTAGE, seed=3)
        assert response.stats.planned is None
        stats = service.stats()
        assert stats.planner is None
        assert "planner" not in stats.report()

    def test_auto_matches_manual_answers(self, shop):
        manual = AnnotationService(shop, epsilon=0.1).submit(ADVANTAGE, seed=9)
        auto = AnnotationService(shop, epsilon=0.1).submit(
            ADVANTAGE, seed=9, planner="auto")
        assert [a.certainty for a in manual.answers] == \
            [a.certainty for a in auto.answers]
        assert [a.lineage_digest for a in manual.answers] == \
            [a.lineage_digest for a in auto.answers]

    def test_explicit_arguments_beat_the_planner(self, shop):
        service = AnnotationService(shop, epsilon=0.2)
        response = service.submit(ADVANTAGE, seed=3, planner="auto",
                                  jobs=1, executor="thread", fusion=0)
        planned = response.stats.planned
        assert planned["jobs"] == 1
        assert planned["executor"] == "thread"
        assert planned["fusion"] == 0
        assert response.stats.kernels_launched == 0

    def test_fusion_counters_flow_to_stats(self, shop):
        service = AnnotationService(shop, epsilon=0.2)
        response = service.submit(ADVANTAGE, seed=5, fusion=8)
        assert response.stats.kernels_launched > 0
        assert response.stats.tuples_fused > 0
        assert response.stats.fusion_batches > 0
        stats = service.stats()
        assert stats.fusion.kernels_launched == response.stats.kernels_launched
        assert stats.fusion.tuples_fused == response.stats.tuples_fused
        assert stats.fusion.batches == response.stats.fusion_batches
        assert stats.fusion.batch_sizes
        assert "fused kernels" in stats.report()
        as_dict = stats.as_dict()
        assert as_dict["fusion"]["kernels_launched"] > 0

    def test_fused_requests_still_fill_the_result_cache(self, shop):
        service = AnnotationService(shop, epsilon=0.2)
        cold = service.submit(ADVANTAGE, seed=5, fusion=8)
        warm = service.submit(ADVANTAGE, seed=5)
        assert warm.stats.groups_from_cache == warm.stats.groups
        assert [a.certainty for a in cold.answers] == \
            [a.certainty for a in warm.answers]


class TestServerPlannerSurface:
    DEFAULTS = {"epsilon": 0.05, "delta": 0.05, "method": "afpras",
                "limit": None, "seed": 0, "adaptive": False,
                "planner": "manual"}

    def test_planner_option_accepted_and_defaulted(self):
        message = {"type": "query", "sql": "SELECT * FROM T",
                   "options": {"planner": "auto"}}
        _, options = parse_query_request(message, dict(self.DEFAULTS))
        assert options["planner"] == "auto"
        _, options = parse_query_request(
            {"type": "query", "sql": "SELECT * FROM T"}, dict(self.DEFAULTS))
        assert options["planner"] == "manual"

    def test_invalid_planner_option_rejected(self):
        message = {"type": "query", "sql": "SELECT * FROM T",
                   "options": {"planner": "cboe"}}
        with pytest.raises(ProtocolError, match="planner"):
            parse_query_request(message, dict(self.DEFAULTS))

    def test_result_event_carries_fusion_counters(self, shop):
        response = AnnotationService(shop, epsilon=0.2).submit(
            ADVANTAGE, seed=5, fusion=8, planner="auto")
        event = result_event("r1", response)
        stats = event["stats"]
        assert stats["kernels_launched"] == response.stats.kernels_launched
        assert stats["tuples_fused"] == response.stats.tuples_fused
        assert stats["fusion_batches"] == response.stats.fusion_batches
        assert stats["planned"] == response.stats.planned
        manual = AnnotationService(shop, epsilon=0.2).submit(ADVANTAGE, seed=5)
        assert "planned" not in result_event("r2", manual)["stats"]

    def test_planner_mode_tuple_is_the_single_source_of_truth(self):
        assert PLANNER_MODES == ("manual", "auto")
