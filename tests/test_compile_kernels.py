"""Seeded equivalence of the compiled batch kernels and the scalar oracles.

The compiled-kernel engine (:mod:`repro.compile`) must reach exactly the
same decisions as the scalar tree walks it replaces: these tests generate
randomized formulas (linear and polynomial, all six comparison operators,
arbitrary Boolean structure including negation and constants) and assert
bit-identical decision vectors for both :meth:`CompiledFormula.evaluate_batch`
vs :meth:`ConstraintFormula.evaluate` and
:meth:`CompiledFormula.asymptotic_truth_batch` vs
:func:`repro.constraints.asymptotic.asymptotic_truth`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compile import CompiledFormula, LoweringError, compile_formula, lower
from repro.constraints.asymptotic import asymptotic_truth, direction_assignment
from repro.constraints.atoms import Comparison, Constraint
from repro.constraints.formula import (
    And,
    Atom,
    FalseFormula,
    Not,
    Or,
    TrueFormula,
)
from repro.constraints.polynomials import Polynomial

VARIABLES = tuple(f"z{i}" for i in range(5))


def random_polynomial(generator: np.random.Generator, max_degree: int) -> Polynomial:
    """A random sparse polynomial over :data:`VARIABLES`."""
    polynomial = Polynomial.constant(float(generator.uniform(-1.0, 1.0))) \
        if generator.random() < 0.8 else Polynomial.zero()
    for _ in range(int(generator.integers(1, 5))):
        term = Polynomial.constant(float(generator.uniform(-2.0, 2.0)))
        for _ in range(int(generator.integers(0, max_degree + 1))):
            term = term * Polynomial.variable(str(generator.choice(VARIABLES)))
        polynomial = polynomial + term
    return polynomial


def random_formula(generator: np.random.Generator, depth: int = 3,
                   max_degree: int = 3):
    """A random Boolean combination of random polynomial atoms."""
    if depth == 0 or generator.random() < 0.3:
        op = generator.choice(list(Comparison))
        return Atom(Constraint(random_polynomial(generator, max_degree), op))
    kind = int(generator.integers(0, 4))
    if kind == 0:
        return Not(random_formula(generator, depth - 1, max_degree))
    if kind == 3 and generator.random() < 0.15:
        return TrueFormula() if generator.random() < 0.5 else FalseFormula()
    children = tuple(random_formula(generator, depth - 1, max_degree)
                     for _ in range(int(generator.integers(1, 4))))
    return And(children) if kind == 1 else Or(children)


def scalar_evaluate(formula, points: np.ndarray) -> np.ndarray:
    return np.asarray([
        formula.evaluate({name: float(value)
                          for name, value in zip(VARIABLES, row)})
        for row in points
    ])


def scalar_asymptotic(formula, directions: np.ndarray) -> np.ndarray:
    return np.asarray([
        asymptotic_truth(formula, direction_assignment(VARIABLES, row))
        for row in directions
    ])


class TestEvaluateBatchEquivalence:
    @pytest.mark.parametrize("max_degree", [1, 3])
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_scalar_evaluate(self, seed: int, max_degree: int):
        generator = np.random.default_rng(1000 * max_degree + seed)
        formula = random_formula(generator, max_degree=max_degree)
        compiled = compile_formula(formula, VARIABLES)
        points = generator.uniform(-3.0, 3.0, size=(64, len(VARIABLES)))
        assert np.array_equal(compiled.evaluate_batch(points),
                              scalar_evaluate(formula, points))

    def test_linear_fast_path_is_used(self):
        formula = Atom(Constraint.compare(
            Polynomial.variable("z0") - Polynomial.variable("z1"),
            Comparison.LT, 0.5))
        compiled = compile_formula(formula, VARIABLES)
        assert compiled.table.is_linear
        points = np.random.default_rng(3).uniform(-2.0, 2.0, size=(32, 5))
        assert np.array_equal(compiled.evaluate_batch(points),
                              scalar_evaluate(formula, points))

    def test_constants_and_zero_polynomials(self):
        zero_atom = Atom(Constraint(Polynomial.zero(), Comparison.LE))
        formula = And((TrueFormula(), zero_atom,
                       Or((FalseFormula(), Not(zero_atom), zero_atom))))
        compiled = compile_formula(formula, VARIABLES)
        points = np.zeros((4, len(VARIABLES)))
        assert np.array_equal(compiled.evaluate_batch(points),
                              scalar_evaluate(formula, points))

    def test_empty_block(self):
        formula = random_formula(np.random.default_rng(5))
        compiled = compile_formula(formula, VARIABLES)
        empty = np.zeros((0, len(VARIABLES)))
        assert compiled.evaluate_batch(empty).shape == (0,)
        assert compiled.asymptotic_truth_batch(empty).shape == (0,)


class TestAsymptoticBatchEquivalence:
    @pytest.mark.parametrize("max_degree", [1, 3])
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_scalar_asymptotic_truth(self, seed: int, max_degree: int):
        generator = np.random.default_rng(2000 * max_degree + seed)
        formula = random_formula(generator, max_degree=max_degree)
        compiled = compile_formula(formula, VARIABLES)
        directions = generator.standard_normal((64, len(VARIABLES)))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)
        assert np.array_equal(compiled.asymptotic_truth_batch(directions),
                              scalar_asymptotic(formula, directions))

    def test_identically_zero_direction_profile(self):
        # z0 - z0 never appears (Polynomial folds it away), but a polynomial
        # can vanish along specific directions: z0 + z1 on direction (1, -1).
        polynomial = Polynomial.variable("z0") + Polynomial.variable("z1")
        directions = np.asarray([[1.0, -1.0, 0.0, 0.0, 0.0],
                                 [1.0, 1.0, 0.0, 0.0, 0.0]])
        for op in Comparison:
            formula = Atom(Constraint(polynomial, op))
            compiled = compile_formula(formula, VARIABLES)
            assert np.array_equal(compiled.asymptotic_truth_batch(directions),
                                  scalar_asymptotic(formula, directions))


class TestLowering:
    def test_unknown_variable_is_rejected(self):
        formula = Atom(Constraint(Polynomial.variable("mystery"), Comparison.LT))
        with pytest.raises(LoweringError):
            compile_formula(formula, VARIABLES)

    def test_duplicate_variables_are_rejected(self):
        formula = Atom(Constraint(Polynomial.variable("z0"), Comparison.LT))
        with pytest.raises(LoweringError):
            compile_formula(formula, ("z0", "z0"))

    def test_atoms_are_deduplicated(self):
        atom = Atom(Constraint(Polynomial.variable("z0"), Comparison.LT))
        table, _program = lower(And((atom, atom, Not(atom))), VARIABLES)
        assert table.num_atoms == 1

    def test_wrong_point_shape_is_rejected(self):
        formula = Atom(Constraint(Polynomial.variable("z0"), Comparison.LT))
        compiled = compile_formula(formula, VARIABLES)
        with pytest.raises(ValueError):
            compiled.evaluate_batch(np.zeros((4, 3)))

    def test_compile_is_cached(self):
        formula = Atom(Constraint(Polynomial.variable("z0"), Comparison.LT))
        assert compile_formula(formula, VARIABLES) is compile_formula(formula, VARIABLES)
        assert isinstance(compile_formula(formula, VARIABLES), CompiledFormula)
