"""The distributed serving tier: hash ring, coordinator, and fleet behavior.

Ring tests are pure-unit (stability is the property consistent hashing
is *for*: membership changes move only the departed worker's keys).
Coordinator tests run a real fleet through :class:`EmbeddedCluster` --
three in-process workers behind actual sockets -- and pin the routing,
cluster-wide single-flight, mutation-barrier, failover and join-replay
semantics end to end, exactly as a client sees them.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.client import ReproClient
from repro.cluster import EmbeddedCluster, HashRing, family_digest
from repro.datagen.experiments import ExperimentScale, generate_sales_database
from repro.obs.console import render_stats_tables
from repro.service import AnnotationService, ServiceOptions
from repro.service.service import normalise_sql

SQL = "SELECT M.seg FROM Market M WHERE M.rrp >= 0 LIMIT 3"
MUTATION = "INSERT INTO Orders VALUES ('tc-{n}', 'p1', {n}, 0.5)"

SCALE = ExperimentScale(products=30, orders=30, markets=6, null_rate=0.2)


def _database():
    return generate_sales_database(SCALE, rng=1)


def _service(database=None) -> AnnotationService:
    return AnnotationService(database if database is not None else _database(),
                             ServiceOptions(epsilon=0.1, seed=5))


# -- the hash ring ------------------------------------------------------------


class TestHashRing:
    KEYS = [family_digest(f"SELECT {i}") for i in range(400)]

    def test_route_is_deterministic(self):
        a = HashRing(["w0", "w1", "w2"])
        b = HashRing(["w2", "w0", "w1"])  # insertion order is irrelevant
        for key in self.KEYS:
            assert a.route(key) == b.route(key)

    def test_route_lists_every_worker_once(self):
        ring = HashRing(["w0", "w1", "w2"])
        for key in self.KEYS[:50]:
            order = ring.route(key)
            assert sorted(order) == ["w0", "w1", "w2"]

    def test_distribution_covers_all_workers(self):
        ring = HashRing(["w0", "w1", "w2"])
        owners = {ring.owner(key) for key in self.KEYS}
        assert owners == {"w0", "w1", "w2"}

    def test_remove_moves_only_the_removed_workers_keys(self):
        ring = HashRing(["w0", "w1", "w2"])
        before = {key: ring.owner(key) for key in self.KEYS}
        ring.remove("w1")
        for key, owner in before.items():
            if owner == "w1":
                assert ring.owner(key) in ("w0", "w2")
            else:
                assert ring.owner(key) == owner

    def test_add_moves_keys_only_to_the_new_worker(self):
        ring = HashRing(["w0", "w1"])
        before = {key: ring.owner(key) for key in self.KEYS}
        ring.add("w2")
        moved = 0
        for key, owner in before.items():
            after = ring.owner(key)
            if after != owner:
                assert after == "w2"
                moved += 1
        assert 0 < moved < len(self.KEYS)

    def test_remove_then_add_restores_ownership(self):
        ring = HashRing(["w0", "w1", "w2"])
        before = {key: ring.owner(key) for key in self.KEYS}
        ring.remove("w2")
        ring.add("w2")
        assert {key: ring.owner(key) for key in self.KEYS} == before

    def test_empty_ring_routes_nowhere(self):
        ring = HashRing()
        assert ring.route(self.KEYS[0]) == []
        assert ring.owner(self.KEYS[0]) is None

    def test_family_digest_normalisation(self):
        spaced = "SELECT  M.seg   FROM Market M WHERE M.rrp >= 0 LIMIT 3"
        assert family_digest(normalise_sql(SQL)) == \
            family_digest(normalise_sql(spaced))


def test_coordinator_defaults_are_never_empty():
    # Subprocess-worker mode has no ServiceOptions in hand; the coordinator
    # must still resolve omitted request options to servable values, not
    # ``None`` (which would reject every request as malformed).
    from repro.cluster.coordinator import CoordinatorApp
    from repro.server.protocol import parse_query_request

    app = CoordinatorApp([], supervise=False)
    sql, options = parse_query_request({"sql": SQL}, app.request_defaults())
    assert sql == SQL
    assert options["method"] in ("auto", "exact", "afpras", "fpras")
    assert 0.0 < options["epsilon"] <= 1.0


# -- a read-only fleet --------------------------------------------------------


@pytest.fixture(scope="module")
def cluster():
    database = _database()
    services = [_service(database) for _ in range(3)]
    with EmbeddedCluster(services, http=False) as embedded:
        yield embedded


class TestClusterServing:
    def test_health_reports_the_fleet(self, cluster):
        with ReproClient(cluster.host, cluster.port) as client:
            health = client.health()
        assert health["role"] == "coordinator"
        assert health["status"] == "ok"
        assert health["workers"] == 3 and health["workers_healthy"] == 3

    def test_routing_is_sticky_and_caches_warm(self, cluster):
        owner = cluster.route_of(SQL)
        with ReproClient(cluster.host, cluster.port) as client:
            first = client.query(SQL, seed=5)
            again = client.query(SQL, seed=5)
        assert first.answers
        assert [a.values for a in again.answers] == \
            [a.values for a in first.answers]
        # The repeat landed on the same worker, whose caches are warm.
        assert again.stats["groups_computed"] == 0
        assert cluster.route_of(SQL) == owner

    def test_answers_match_a_single_service(self, cluster):
        reference = _service().submit(SQL, seed=5)
        with ReproClient(cluster.host, cluster.port) as client:
            remote = client.query(SQL, seed=5)
        assert [a.values for a in remote.answers] == \
            [a.values for a in reference.answers]
        assert [a.certainty.value for a in remote.answers] == \
            [a.certainty.value for a in reference.answers]
        assert [a.lineage_digest for a in remote.answers] == \
            [a.lineage_digest for a in reference.answers]

    def test_cluster_wide_single_flight(self, cluster):
        """Two concurrent identical requests launch one worker flight."""
        coordinator = cluster.coordinator
        sql = "SELECT P.id FROM Products P WHERE P.rrp <= 37 LIMIT 4"

        async def consume():
            return [event async for event in coordinator.query_events(
                {"op": "query", "id": 1, "sql": sql,
                 "options": {"seed": 11}})]

        async def race():
            launched = coordinator._launched
            coalesced = coordinator._coalesced
            first, second = await asyncio.gather(consume(), consume())
            return (coordinator._launched - launched,
                    coordinator._coalesced - coalesced, first, second)

        launched, coalesced, first, second = cluster.submit(race())
        assert launched == 1 and coalesced == 1
        assert first[-1]["type"] == "result"
        assert first[-1]["answers"] == second[-1]["answers"]

    def test_stats_aggregate_the_fleet(self, cluster):
        with ReproClient(cluster.host, cluster.port) as client:
            stats = client.stats()
        assert len(stats["workers"]) == 3
        assert {worker["id"] for worker in stats["workers"]} == \
            {"w0", "w1", "w2"}
        # The single-server shape survives, so repro top and --probe stats
        # read a cluster unchanged.
        assert "server" in stats and "service" in stats
        assert stats["server"]["requests"] >= 1
        coordinator = stats["coordinator"]
        assert coordinator["requests"] >= 1
        assert sum(coordinator["routed"].values()) >= 1

    def test_metrics_relabel_worker_samples(self, cluster):
        with ReproClient(cluster.host, cluster.port) as client:
            text = client.metrics()
        assert "repro_cluster_requests_total" in text
        assert "repro_cluster_barrier_version" in text
        for worker_id in ("w0", "w1", "w2"):
            assert f'worker="{worker_id}"' in text

    def test_cluster_status_op(self, cluster):
        with ReproClient(cluster.host, cluster.port) as client:
            status = client.cluster()
        assert {worker["id"] for worker in status["workers"]} == \
            {"w0", "w1", "w2"}
        assert all(worker["state"] == "healthy"
                   for worker in status["workers"])
        assert status["ring"]["workers"] == ["w0", "w1", "w2"]
        assert status["coordinator"]["barrier_version"] == 0

    def test_cli_cluster_status(self, cluster, capsys):
        from repro.cli import main

        code = main(["cluster", "status", "--host", cluster.host,
                     "--port", str(cluster.port), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["workers"]) == 3

    def test_console_renders_cluster_sections(self, cluster):
        with ReproClient(cluster.host, cluster.port) as client:
            stats = client.stats()
        text = render_stats_tables(stats)
        assert "worker" in text
        for worker_id in ("w0", "w1", "w2"):
            assert worker_id in text
        assert "barrier version" in text


# -- mutation barrier, failover, join-replay ----------------------------------


@pytest.fixture()
def fresh_cluster():
    database = _database()
    services = [_service(database) for _ in range(3)]
    with EmbeddedCluster(services, http=False) as embedded:
        yield embedded


class TestClusterMutations:
    def test_barrier_versions_are_monotone_and_converge(self, fresh_cluster):
        with ReproClient(fresh_cluster.host, fresh_cluster.port) as client:
            versions = [client.mutate(MUTATION.format(n=n)).data_version
                        for n in range(1, 4)]
            status = client.cluster()
        assert versions == [1, 2, 3]
        assert [worker["data_version"] for worker in status["workers"]] == \
            [3, 3, 3]
        assert status["coordinator"]["barrier_version"] == 3

    def test_mutations_are_visible_to_queries(self, fresh_cluster):
        probe = "SELECT O.id FROM Orders O WHERE O.q >= 900 LIMIT 40"
        with ReproClient(fresh_cluster.host, fresh_cluster.port) as client:
            before = client.query(probe, seed=5)
            client.mutate("INSERT INTO Orders VALUES ('tc-big', 'p1', "
                          "901, 0.5)")
            after = client.query(probe, seed=5)
        assert all(answer.values != ("tc-big",) for answer in before.answers)
        assert any(answer.values == ("tc-big",) for answer in after.answers)

    def test_typed_rejection_leaves_fleet_healthy(self, fresh_cluster):
        with ReproClient(fresh_cluster.host, fresh_cluster.port) as client:
            from repro.client import ServerError
            with pytest.raises(ServerError) as excinfo:
                client.mutate("INSERT INTO Orders VALUES ('only-two', 'p1')")
            assert excinfo.value.code == "validation"
            status = client.cluster()
        # A deterministic rejection is not a worker failure: nobody died,
        # the barrier did not advance.
        assert all(worker["state"] == "healthy"
                   for worker in status["workers"])
        assert status["coordinator"]["barrier_version"] == 0


class TestClusterFailover:
    def test_failover_to_live_replica_preserves_answers(self, fresh_cluster):
        reference = _service().submit(SQL, seed=5)
        owner = fresh_cluster.route_of(SQL)
        fresh_cluster.stop_worker(owner)
        with ReproClient(fresh_cluster.host, fresh_cluster.port,
                         timeout=60.0) as client:
            result = client.query(SQL, seed=5)
            status = client.cluster()
        assert [a.values for a in result.answers] == \
            [a.values for a in reference.answers]
        assert [a.certainty.value for a in result.answers] == \
            [a.certainty.value for a in reference.answers]
        assert [a.lineage_digest for a in result.answers] == \
            [a.lineage_digest for a in reference.answers]
        coordinator = status["coordinator"]
        assert coordinator["failovers"] >= 1
        assert coordinator["worker_deaths"] >= 1
        states = {worker["id"]: worker["state"]
                  for worker in status["workers"]}
        assert states[owner] == "dead"
        # The family now routes to the surviving successor, sticky again.
        survivor = fresh_cluster.route_of(SQL)
        assert survivor != owner
        assert fresh_cluster.route_of(SQL) == survivor

    def test_join_replay_brings_a_fresh_worker_to_the_barrier(
            self, fresh_cluster):
        with ReproClient(fresh_cluster.host, fresh_cluster.port,
                         timeout=60.0) as client:
            client.mutate(MUTATION.format(n=1))
            client.mutate(MUTATION.format(n=2))
            fresh_cluster.stop_worker("w2")
            client.query(SQL, seed=5)  # let the coordinator notice
            client.mutate(MUTATION.format(n=3))

            # A restart rebuilds the service from seed data; the
            # coordinator must replay it the full mutation log before it
            # serves anything.
            fresh_cluster.add_worker("w2", _service())
            status = client.cluster()
        states = {worker["id"]: (worker["state"], worker["data_version"])
                  for worker in status["workers"]}
        assert states["w2"] == ("healthy", 3)
        assert status["coordinator"]["barrier_version"] == 3
        assert status["coordinator"]["replayed_statements"] == 3
