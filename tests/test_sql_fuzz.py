"""Seeded SQL fuzzer: malformed input must fail cleanly, never crash.

Mutates valid SQL strings (truncation, slice deletion/duplication, token
swaps, stray bytes, case flips) and asserts the lexer/parser contract: every
input either parses to a ``SelectQuery`` or raises an error of the
``SqlTranslationError`` family (``SqlSyntaxError`` included) -- never an
unhandled exception such as ``OverflowError`` (huge ``LIMIT`` values) or
``RecursionError`` (deep nesting), both of which this harness caught in
earlier parser versions.  The CLI must translate any such failure into exit
code 2 with a one-line message, never a traceback.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import EXIT_USAGE, main
from repro.datagen.experiments import EXPERIMENT_QUERIES, ExperimentScale, generate_sales_database
from repro.engine.sql.ast import SelectQuery
from repro.engine.sql.lexer import SqlSyntaxError, tokenize
from repro.engine.sql.parser import parse_sql
from repro.engine.translate_sql import SqlTranslationError
from repro.relational.csv_io import save_database

#: The error family user-facing SQL handling is allowed to raise.
CLEAN_ERRORS = (SqlSyntaxError, SqlTranslationError)

CORPUS = tuple(EXPERIMENT_QUERIES.values()) + (
    "SELECT * FROM Products",
    "SELECT DISTINCT P.seg FROM Products P WHERE P.rrp >= 10 LIMIT 3",
    "SELECT P.id FROM Products P WHERE (P.rrp + 1) * P.dis <> 2.5e1",
    "SELECT O.id FROM Orders O WHERE O.dis / O.q >= 3 AND O.pr = 'p1'",
    "SELECT M.seg FROM Market M WHERE M.seg = 'it''s' LIMIT 1;",
)

STRAY_BYTES = "\x00\x1b~`@$%^&[]{}|\\\"'();.,<>=*+-/ü⊥⊤\n\t"


def _mutate(sql: str, rng: np.random.Generator) -> str:
    """One random mutation of ``sql``."""
    kind = rng.random()
    if not sql:
        return sql
    if kind < 0.2:  # truncate at a random position
        return sql[:int(rng.integers(0, len(sql)))]
    if kind < 0.4:  # delete a random slice
        start = int(rng.integers(0, len(sql)))
        stop = min(len(sql), start + int(rng.integers(1, 12)))
        return sql[:start] + sql[stop:]
    if kind < 0.55:  # duplicate a random slice
        start = int(rng.integers(0, len(sql)))
        stop = min(len(sql), start + int(rng.integers(1, 12)))
        return sql[:stop] + sql[start:stop] + sql[stop:]
    if kind < 0.75:  # swap two whitespace-separated tokens
        tokens = sql.split(" ")
        if len(tokens) >= 2:
            first = int(rng.integers(0, len(tokens)))
            second = int(rng.integers(0, len(tokens)))
            tokens[first], tokens[second] = tokens[second], tokens[first]
        return " ".join(tokens)
    if kind < 0.9:  # insert 1-3 stray bytes
        for _ in range(int(rng.integers(1, 4))):
            position = int(rng.integers(0, len(sql) + 1))
            stray = STRAY_BYTES[int(rng.integers(0, len(STRAY_BYTES)))]
            sql = sql[:position] + stray + sql[position:]
        return sql
    # flip the case of a random slice
    start = int(rng.integers(0, len(sql)))
    stop = min(len(sql), start + int(rng.integers(1, 20)))
    return sql[:start] + sql[start:stop].swapcase() + sql[stop:]


def _fuzz_inputs(count: int, seed: int) -> list[str]:
    rng = np.random.default_rng(seed)
    inputs = []
    for _ in range(count):
        sql = CORPUS[int(rng.integers(0, len(CORPUS)))]
        for _ in range(int(rng.integers(1, 4))):  # stack 1-3 mutations
            sql = _mutate(sql, rng)
        inputs.append(sql)
    return inputs


@pytest.fixture(scope="module")
def data_directory(tmp_path_factory):
    """A tiny on-disk sales database for CLI runs."""
    directory = tmp_path_factory.mktemp("fuzz-data")
    database = generate_sales_database(ExperimentScale.tiny(), rng=3)
    save_database(database, directory)
    return directory


class TestLexerParserFuzz:
    def test_mutations_parse_or_fail_cleanly(self):
        for sql in _fuzz_inputs(600, seed=20200614):
            try:
                result = parse_sql(sql)
            except CLEAN_ERRORS:
                continue
            assert isinstance(result, SelectQuery), repr(sql)

    def test_lexer_never_crashes(self):
        for sql in _fuzz_inputs(300, seed=42):
            try:
                tokens = tokenize(sql)
            except SqlSyntaxError:
                continue
            assert tokens and tokens[-1].text == ""

    def test_huge_limit_is_a_clean_error(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT * FROM Products LIMIT 25e99999")
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT * FROM Products LIMIT " + "9" * 400)

    def test_deep_nesting_is_a_clean_error(self):
        nested = "SELECT * FROM T WHERE " + "(" * 5000 + "x" + ")" * 5000 + " = 1"
        with pytest.raises(SqlSyntaxError):
            parse_sql(nested)
        minus_chain = "SELECT * FROM T WHERE x = " + "-" * 5000 + "1"
        with pytest.raises(SqlSyntaxError):
            parse_sql(minus_chain)

    def test_moderate_nesting_still_parses(self):
        depth = 50
        sql = "SELECT * FROM T WHERE " + "(" * depth + "x" + ")" * depth + " = 1"
        assert isinstance(parse_sql(sql), SelectQuery)


class TestCliFuzz:
    def test_rejected_sql_exits_with_usage_code(self, data_directory, capsys):
        """Every mutant the parser rejects makes the CLI exit with code 2."""
        checked = 0
        for sql in _fuzz_inputs(400, seed=7):
            try:
                parse_sql(sql)
            except CLEAN_ERRORS:
                pass
            else:
                continue
            code = main(["annotate", "--data", str(data_directory),
                         "--sql", sql, "--limit", "2", "--epsilon", "0.4",
                         "--seed", "0"])
            capsys.readouterr()
            assert code == EXIT_USAGE, repr(sql)
            checked += 1
            if checked >= 30:
                break
        assert checked >= 10

    def test_semantically_invalid_sql_exits_with_usage_code(self, data_directory, capsys):
        """Parseable but meaningless queries also fail cleanly with code 2."""
        for sql in (
            "SELECT P.id FROM Nowhere P",
            "SELECT P.nope FROM Products P",
            "SELECT id FROM Products P, Orders O",     # ambiguous column
            "SELECT P.id FROM Products P WHERE P.seg < 3",  # base order compare
        ):
            code = main(["annotate", "--data", str(data_directory),
                         "--sql", sql, "--seed", "0"])
            captured = capsys.readouterr()
            assert code == EXIT_USAGE, sql
            assert "Traceback" not in captured.err, sql

    def test_parseable_mutants_never_crash_the_cli(self, data_directory, capsys):
        """Mutants that still parse run end to end or fail with code 2."""
        checked = 0
        for sql in _fuzz_inputs(400, seed=11):
            try:
                parse_sql(sql)
            except CLEAN_ERRORS:
                continue
            code = main(["annotate", "--data", str(data_directory),
                         "--sql", sql, "--limit", "2", "--epsilon", "0.4",
                         "--seed", "0"])
            capsys.readouterr()
            assert code in (0, EXIT_USAGE), repr(sql)
            checked += 1
            if checked >= 15:
                break
        assert checked >= 5
