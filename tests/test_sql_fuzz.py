"""Seeded SQL fuzzer: malformed input must fail cleanly, never crash.

Mutates valid SQL strings (truncation, slice deletion/duplication, token
swaps, stray bytes, case flips) and asserts the lexer/parser contract: every
input either parses to a ``SelectQuery`` or raises an error of the
``SqlTranslationError`` family (``SqlSyntaxError`` included) -- never an
unhandled exception such as ``OverflowError`` (huge ``LIMIT`` values) or
``RecursionError`` (deep nesting), both of which this harness caught in
earlier parser versions.  The CLI must translate any such failure into exit
code 2 with a one-line message, never a traceback.

The mutation grammar gets the same treatment: fuzzed INSERT/DELETE/UPDATE
statements either parse to a typed statement or raise the clean error
family; executable mutants either commit a new snapshot version or fail
with a typed ``MutationError`` -- and in every case the *parent* snapshot
is observably untouched (no corruption, ever).  Rejected statements sent
through ``repro client`` exit with code 2 against a live server whose
data plane must stay consistent throughout.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import EXIT_USAGE, main
from repro.datagen.experiments import EXPERIMENT_QUERIES, ExperimentScale, generate_sales_database
from repro.engine.mutate import execute_mutation
from repro.engine.sql.ast import (
    DeleteStatement,
    InsertStatement,
    SelectQuery,
    UpdateStatement,
)
from repro.engine.sql.lexer import SqlSyntaxError, tokenize
from repro.engine.sql.parser import parse_sql, parse_statement
from repro.engine.translate_sql import SqlTranslationError
from repro.relational.csv_io import save_database
from repro.relational.database import Database
from repro.relational.mutation import MutationError
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import NumNull

#: The error family user-facing SQL handling is allowed to raise.
CLEAN_ERRORS = (SqlSyntaxError, SqlTranslationError)

CORPUS = tuple(EXPERIMENT_QUERIES.values()) + (
    "SELECT * FROM Products",
    "SELECT DISTINCT P.seg FROM Products P WHERE P.rrp >= 10 LIMIT 3",
    "SELECT P.id FROM Products P WHERE (P.rrp + 1) * P.dis <> 2.5e1",
    "SELECT O.id FROM Orders O WHERE O.dis / O.q >= 3 AND O.pr = 'p1'",
    "SELECT M.seg FROM Market M WHERE M.seg = 'it''s' LIMIT 1;",
)

STRAY_BYTES = "\x00\x1b~`@$%^&[]{}|\\\"'();.,<>=*+-/ü⊥⊤\n\t"

#: Valid statements over the small mutation-fuzz schema (``t``: key, x).
MUTATION_CORPUS = (
    "INSERT INTO t VALUES ('p9', 2.5), (NULL, 7)",
    "INSERT INTO t VALUES ('q1', NULL)",
    "DELETE FROM t WHERE x <= 2",
    "DELETE FROM t WHERE key = 'a' AND x > 0.5",
    "UPDATE t SET x = x + 1 WHERE key = 'a'",
    "UPDATE t SET x = 3.5, key = 'r' WHERE x >= 2",
    "UPDATE t SET x = NULL WHERE key <> 'a'",
)

STATEMENT_NODES = (SelectQuery, InsertStatement, DeleteStatement,
                   UpdateStatement)


def _mutation_database() -> Database:
    schema = DatabaseSchema.of(RelationSchema.of("t", key="base", x="num"))
    return Database.from_dict(schema, {
        "t": [("a", 1.0), ("b", NumNull("n0")), ("c", 4.0)],
    }, backend="columnar")


def _fuzz_statements(count: int, seed: int) -> list[str]:
    rng = np.random.default_rng(seed)
    inputs = []
    for _ in range(count):
        sql = MUTATION_CORPUS[int(rng.integers(0, len(MUTATION_CORPUS)))]
        for _ in range(int(rng.integers(1, 4))):
            sql = _mutate(sql, rng)
        inputs.append(sql)
    return inputs


def _mutate(sql: str, rng: np.random.Generator) -> str:
    """One random mutation of ``sql``."""
    kind = rng.random()
    if not sql:
        return sql
    if kind < 0.2:  # truncate at a random position
        return sql[:int(rng.integers(0, len(sql)))]
    if kind < 0.4:  # delete a random slice
        start = int(rng.integers(0, len(sql)))
        stop = min(len(sql), start + int(rng.integers(1, 12)))
        return sql[:start] + sql[stop:]
    if kind < 0.55:  # duplicate a random slice
        start = int(rng.integers(0, len(sql)))
        stop = min(len(sql), start + int(rng.integers(1, 12)))
        return sql[:stop] + sql[start:stop] + sql[stop:]
    if kind < 0.75:  # swap two whitespace-separated tokens
        tokens = sql.split(" ")
        if len(tokens) >= 2:
            first = int(rng.integers(0, len(tokens)))
            second = int(rng.integers(0, len(tokens)))
            tokens[first], tokens[second] = tokens[second], tokens[first]
        return " ".join(tokens)
    if kind < 0.9:  # insert 1-3 stray bytes
        for _ in range(int(rng.integers(1, 4))):
            position = int(rng.integers(0, len(sql) + 1))
            stray = STRAY_BYTES[int(rng.integers(0, len(STRAY_BYTES)))]
            sql = sql[:position] + stray + sql[position:]
        return sql
    # flip the case of a random slice
    start = int(rng.integers(0, len(sql)))
    stop = min(len(sql), start + int(rng.integers(1, 20)))
    return sql[:start] + sql[start:stop].swapcase() + sql[stop:]


def _fuzz_inputs(count: int, seed: int) -> list[str]:
    rng = np.random.default_rng(seed)
    inputs = []
    for _ in range(count):
        sql = CORPUS[int(rng.integers(0, len(CORPUS)))]
        for _ in range(int(rng.integers(1, 4))):  # stack 1-3 mutations
            sql = _mutate(sql, rng)
        inputs.append(sql)
    return inputs


@pytest.fixture(scope="module")
def data_directory(tmp_path_factory):
    """A tiny on-disk sales database for CLI runs."""
    directory = tmp_path_factory.mktemp("fuzz-data")
    database = generate_sales_database(ExperimentScale.tiny(), rng=3)
    save_database(database, directory)
    return directory


class TestLexerParserFuzz:
    def test_mutations_parse_or_fail_cleanly(self):
        for sql in _fuzz_inputs(600, seed=20200614):
            try:
                result = parse_sql(sql)
            except CLEAN_ERRORS:
                continue
            assert isinstance(result, SelectQuery), repr(sql)

    def test_lexer_never_crashes(self):
        for sql in _fuzz_inputs(300, seed=42):
            try:
                tokens = tokenize(sql)
            except SqlSyntaxError:
                continue
            assert tokens and tokens[-1].text == ""

    def test_huge_limit_is_a_clean_error(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT * FROM Products LIMIT 25e99999")
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT * FROM Products LIMIT " + "9" * 400)

    def test_deep_nesting_is_a_clean_error(self):
        nested = "SELECT * FROM T WHERE " + "(" * 5000 + "x" + ")" * 5000 + " = 1"
        with pytest.raises(SqlSyntaxError):
            parse_sql(nested)
        minus_chain = "SELECT * FROM T WHERE x = " + "-" * 5000 + "1"
        with pytest.raises(SqlSyntaxError):
            parse_sql(minus_chain)

    def test_moderate_nesting_still_parses(self):
        depth = 50
        sql = "SELECT * FROM T WHERE " + "(" * depth + "x" + ")" * depth + " = 1"
        assert isinstance(parse_sql(sql), SelectQuery)


class TestCliFuzz:
    def test_rejected_sql_exits_with_usage_code(self, data_directory, capsys):
        """Every mutant the parser rejects makes the CLI exit with code 2."""
        checked = 0
        for sql in _fuzz_inputs(400, seed=7):
            try:
                parse_sql(sql)
            except CLEAN_ERRORS:
                pass
            else:
                continue
            code = main(["annotate", "--data", str(data_directory),
                         "--sql", sql, "--limit", "2", "--epsilon", "0.4",
                         "--seed", "0"])
            capsys.readouterr()
            assert code == EXIT_USAGE, repr(sql)
            checked += 1
            if checked >= 30:
                break
        assert checked >= 10

    def test_semantically_invalid_sql_exits_with_usage_code(self, data_directory, capsys):
        """Parseable but meaningless queries also fail cleanly with code 2."""
        for sql in (
            "SELECT P.id FROM Nowhere P",
            "SELECT P.nope FROM Products P",
            "SELECT id FROM Products P, Orders O",     # ambiguous column
            "SELECT P.id FROM Products P WHERE P.seg < 3",  # base order compare
        ):
            code = main(["annotate", "--data", str(data_directory),
                         "--sql", sql, "--seed", "0"])
            captured = capsys.readouterr()
            assert code == EXIT_USAGE, sql
            assert "Traceback" not in captured.err, sql

    def test_parseable_mutants_never_crash_the_cli(self, data_directory, capsys):
        """Mutants that still parse run end to end or fail with code 2."""
        checked = 0
        for sql in _fuzz_inputs(400, seed=11):
            try:
                parse_sql(sql)
            except CLEAN_ERRORS:
                continue
            code = main(["annotate", "--data", str(data_directory),
                         "--sql", sql, "--limit", "2", "--epsilon", "0.4",
                         "--seed", "0"])
            capsys.readouterr()
            assert code in (0, EXIT_USAGE), repr(sql)
            checked += 1
            if checked >= 15:
                break
        assert checked >= 5


class TestMutationGrammarFuzz:
    def test_statement_mutants_parse_or_fail_cleanly(self):
        """Fuzzed mutations hit typed parse errors, never raw exceptions."""
        for sql in _fuzz_statements(600, seed=20200815):
            try:
                node = parse_statement(sql)
            except CLEAN_ERRORS:
                continue
            assert isinstance(node, STATEMENT_NODES), repr(sql)

    def test_executable_mutants_never_corrupt_a_snapshot(self):
        """Whatever a mutant does, the parent snapshot stays intact.

        Success must seal a *new* version; failure must be a typed
        ``MutationError``.  Either way the database the statement ran
        against keeps its content, data version, and version chain --
        the fuzzer proves there is no partial-commit path.
        """
        committed = 0
        rejected = 0
        for sql in _fuzz_statements(400, seed=9):
            try:
                statement = parse_statement(sql)
            except CLEAN_ERRORS:
                continue
            if isinstance(statement, SelectQuery):
                continue
            database = _mutation_database()
            before = database.relation("t").tuples()
            token = database.version_token
            try:
                sealed, _, outcome = execute_mutation(statement, database)
            except MutationError:
                rejected += 1
            else:
                committed += 1
                assert sealed is not database
                assert sealed.data_version == 1
                assert outcome.data_version == 1
                # Committed snapshots extend the parent's version chain.
                assert sealed.version_token is token
            assert database.relation("t").tuples() == before, repr(sql)
            assert database.data_version == 0, repr(sql)
            assert database.version_token is token, repr(sql)
        assert committed >= 10, "the corpus must keep commits in rotation"
        assert rejected >= 10, "the fuzzer must also exercise failures"

    def test_rejected_statements_exit_the_cli_with_usage_code(self, capsys):
        """``repro client`` turns every rejected mutant into exit code 2,
        and the server's data plane survives the whole barrage."""
        from repro.server import EmbeddedServer
        from repro.service import AnnotationService, ServiceOptions

        service = AnnotationService(_mutation_database(),
                                    ServiceOptions(seed=3, epsilon=0.4))
        checked = 0
        committed = 0
        with EmbeddedServer(service) as server:
            base = ["client", "--host", server.host,
                    "--port", str(server.port)]
            for sql in _fuzz_statements(300, seed=13):
                code = main(base + ["--sql", sql])
                captured = capsys.readouterr()
                assert "Traceback" not in captured.err, repr(sql)
                assert code in (0, EXIT_USAGE), repr(sql)
                if code == 0:
                    committed += 1
                else:
                    checked += 1
                if checked >= 20 and committed >= 3:
                    break
            # However the mutants landed, the snapshot is still coherent:
            # versions advanced only for committed statements and queries
            # keep working.
            stats = server.app.stats()
            assert stats["server"]["internal_errors"] == 0
            code = main(base + ["--sql", "SELECT t.key FROM t WHERE t.x > 0"])
            capsys.readouterr()
            assert code == 0
        assert checked >= 20
        assert committed >= 3
