"""Tests for the annotation service: caching, batching, parallelism, adaptive."""

from __future__ import annotations

import pytest

from repro.engine.annotate import annotate
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import NumNull
from repro.service import (
    AnnotationService,
    ServiceOptions,
    adaptive_schedule,
    build_schedule,
    canonicalise_lineage,
)


@pytest.fixture
def shop() -> Database:
    schema = DatabaseSchema.of(
        RelationSchema.of("Products", id="base", seg="base", rrp="num", dis="num"),
        RelationSchema.of("Market", seg="base", rrp="num", dis="num"),
    )
    database = Database(schema)
    database.add("Products", ("p1", "tools", 10.0, 0.5))
    database.add("Products", ("p2", "tools", NumNull("rrp2"), 0.5))
    database.add("Products", ("p3", "tools", NumNull("rrp3"), 0.5))
    database.add("Products", ("p4", "garden", 4.0, 1.0))
    database.add("Market", ("tools", 8.0, 1.0))
    database.add("Market", ("garden", 10.0, 0.5))
    return database


ADVANTAGE = ("SELECT P.id FROM Products P, Market M "
             "WHERE P.seg = M.seg AND P.rrp * P.dis <= M.rrp * M.dis")

SIMPLE = "SELECT P.id FROM Products P WHERE P.rrp <= 12"


class TestResultCache:
    def test_warm_request_returns_identical_results(self, shop):
        service = AnnotationService(shop, epsilon=0.05)
        cold = service.submit(ADVANTAGE, seed=7)
        warm = service.submit(ADVANTAGE, seed=7)
        assert [a.certainty.value for a in cold.answers] == \
            [a.certainty.value for a in warm.answers]
        assert [a.certainty.interval() for a in cold.answers] == \
            [a.certainty.interval() for a in warm.answers]
        assert cold.stats.groups_computed > 0
        assert warm.stats.groups_computed == 0
        assert warm.stats.groups_from_cache == warm.stats.groups

    def test_whitespace_changes_hit_the_parse_cache(self, shop):
        service = AnnotationService(shop)
        service.submit(SIMPLE, seed=0)
        service.submit("SELECT   P.id  FROM Products P\n WHERE P.rrp <= 12", seed=0)
        stats = service.stats()
        parse = next(cache for cache in stats.caches if cache.name == "parsed sql")
        assert parse.hits >= 1

    def test_different_seeds_do_not_share_results(self, shop):
        service = AnnotationService(shop, epsilon=0.05)
        first = service.submit(SIMPLE, seed=1)
        second = service.submit(SIMPLE, seed=2)
        assert second.stats.groups_from_cache == 0
        # p2/p3 lineages are genuine estimates; different streams, different
        # values (with overwhelming probability at this sample size).
        uncertain_first = [a.certainty.value for a in first.answers
                           if 0.0 < a.certainty.value < 1.0]
        uncertain_second = [a.certainty.value for a in second.answers
                            if 0.0 < a.certainty.value < 1.0]
        assert uncertain_first and uncertain_first != uncertain_second

    def test_seedless_requests_share_the_cache(self, shop):
        # With no seed anywhere, the service fixes fresh entropy once at
        # construction, so repeated requests still hit the certainty cache.
        service = AnnotationService(shop)
        cold = service.submit(SIMPLE)
        warm = service.submit(SIMPLE)
        assert warm.stats.groups_from_cache == warm.stats.groups
        assert [a.certainty.value for a in cold.answers] == \
            [a.certainty.value for a in warm.answers]

    def test_spawned_seed_sequences_are_distinct_cache_keys(self, shop):
        import numpy as np
        first_child, second_child = np.random.SeedSequence(0).spawn(2)
        service = AnnotationService(shop)
        service.submit(SIMPLE, seed=first_child)
        second = service.submit(SIMPLE, seed=second_child)
        # Same entropy, different spawn keys: must not be served from the
        # first child's cached estimates.
        assert second.stats.groups_from_cache == 0

    def test_invalidate_clears_every_cache(self, shop):
        service = AnnotationService(shop)
        service.submit(SIMPLE, seed=0)
        service.invalidate()
        response = service.submit(SIMPLE, seed=0)
        assert response.stats.groups_from_cache == 0


class TestBatchScheduler:
    def test_isomorphic_lineages_share_one_group(self, shop):
        # p2 and p3 carry different nulls but the same formula skeleton
        # (z <= 16), so the scheduler folds them into one task group.
        response = AnnotationService(shop).submit(ADVANTAGE, seed=0)
        by_id = {a.values[0]: a for a in response.answers}
        assert by_id["p2"].certainty.value == by_id["p3"].certainty.value
        assert response.stats.tuples_batched >= 1
        assert response.stats.groups < response.stats.candidates

    def test_grouping_matches_canonicalisation(self, shop):
        from repro.engine.candidates import enumerate_candidates
        from repro.engine.sql.parser import parse_sql
        candidates = enumerate_candidates(parse_sql(ADVANTAGE), shop)
        schedule = build_schedule(candidates)
        assert sorted(index for group in schedule for index in group.members) == \
            list(range(len(candidates)))
        for group in schedule:
            digests = {canonicalise_lineage(candidates[index].lineage).digest
                       for index in group.members}
            assert len(digests) == 1

    def test_reuse_disabled_gives_independent_estimates(self, shop):
        service = AnnotationService(shop, epsilon=0.05)
        response = service.submit(ADVANTAGE, seed=0, reuse_results=False)
        by_id = {a.values[0]: a for a in response.answers}
        assert by_id["p2"].certainty.value != by_id["p3"].certainty.value
        assert by_id["p2"].certainty.value == pytest.approx(0.5, abs=0.1)
        assert by_id["p3"].certainty.value == pytest.approx(0.5, abs=0.1)


class TestParallelExecution:
    @pytest.mark.parametrize("reuse", [True, False])
    def test_jobs_4_bit_identical_to_jobs_1(self, shop, reuse):
        serial = AnnotationService(shop).submit(
            ADVANTAGE, seed=11, jobs=1, reuse_results=reuse)
        parallel = AnnotationService(shop).submit(
            ADVANTAGE, seed=11, jobs=4, reuse_results=reuse)
        assert [a.certainty.value for a in serial.answers] == \
            [a.certainty.value for a in parallel.answers]
        assert [a.values for a in serial.answers] == \
            [a.values for a in parallel.answers]

    def test_annotate_wrapper_jobs_bit_identical(self, shop):
        serial = annotate(ADVANTAGE, shop, epsilon=0.05, rng=5, jobs=1)
        parallel = annotate(ADVANTAGE, shop, epsilon=0.05, rng=5, jobs=4)
        assert [a.certainty.value for a in serial] == \
            [a.certainty.value for a in parallel]

    def test_jobs_zero_uses_cpu_count(self, shop):
        response = AnnotationService(shop).submit(ADVANTAGE, seed=0, jobs=0)
        assert len(response.answers) > 0


class TestAdaptivePrecision:
    def test_schedule_descends_to_requested_epsilon(self):
        schedule = adaptive_schedule(0.02, coarse=0.2, factor=2.0)
        assert schedule[-1] == 0.02
        assert schedule == sorted(schedule, reverse=True)
        assert all(earlier == pytest.approx(2.0 * later)
                   for later, earlier in zip(schedule[1:], schedule))
        assert adaptive_schedule(0.3) == [0.3]

    def test_updates_tighten_monotonically(self, shop):
        updates = []
        service = AnnotationService(shop, epsilon=0.02, adaptive=True)
        response = service.submit(
            SIMPLE, seed=3,
            on_update=lambda group, update: updates.append((group, update)))
        sampled = [a for a in response.answers if a.certainty.samples > 0]
        assert sampled, "expected at least one Monte-Carlo-estimated answer"
        by_group: dict = {}
        for group, update in updates:
            by_group.setdefault(group.canonical.digest, []).append(update)
        multi_stage = [trace for trace in by_group.values() if len(trace) > 1]
        assert multi_stage, "expected a multi-stage refinement trace"
        for trace in multi_stage:
            widths = [update.interval[1] - update.interval[0] for update in trace]
            assert all(later <= earlier + 1e-12
                       for earlier, later in zip(widths, widths[1:]))
            assert [update.stage for update in trace] == list(range(len(trace)))
            assert trace[-1].final
            assert trace[-1].epsilon == pytest.approx(0.02)

    def test_final_result_meets_requested_epsilon(self, shop):
        response = AnnotationService(shop, adaptive=True).submit(
            SIMPLE, seed=3, epsilon=0.04)
        for answer in response.answers:
            if answer.certainty.samples > 0:
                assert answer.certainty.epsilon == pytest.approx(0.04)
                trace = answer.certainty.details["adaptive"]
                assert len(trace) >= 2
                low, high = answer.certainty.details["interval"]
                assert low <= answer.certainty.value + 0.04
                assert high >= answer.certainty.value - 0.04

    def test_adaptive_value_agrees_with_single_shot(self, shop):
        adaptive = AnnotationService(shop, adaptive=True).submit(
            SIMPLE, seed=3, epsilon=0.03)
        single = AnnotationService(shop).submit(SIMPLE, seed=3, epsilon=0.03)
        for left, right in zip(adaptive.answers, single.answers):
            assert left.certainty.value == pytest.approx(right.certainty.value,
                                                         abs=0.06)

    def test_exact_lineages_short_circuit(self, shop):
        # "P.rrp >= 0 is false only for negative halves": p1/p4 fold to
        # certainty 1 exactly; adaptive mode must not waste stages on them.
        response = AnnotationService(shop, adaptive=True).submit(ADVANTAGE, seed=0)
        by_id = {a.values[0]: a for a in response.answers}
        assert by_id["p1"].certainty.value == 1.0
        assert len(by_id["p1"].certainty.details["adaptive"]) == 1


class TestServiceStats:
    def test_report_mentions_every_cache_layer(self, shop):
        service = AnnotationService(shop)
        service.submit(SIMPLE, seed=0)
        report = service.stats().report()
        for name in ("parsed sql", "candidates", "certainty", "compiled kernels"):
            assert name in report

    def test_as_dict_round_trips_counters(self, shop):
        service = AnnotationService(shop)
        service.submit(SIMPLE, seed=0)
        service.submit(SIMPLE, seed=0)
        payload = service.stats().as_dict()
        assert payload["requests"] == 2
        assert payload["estimates_reused"] >= 1
        assert {cache["name"] for cache in payload["caches"]} >= {"certainty"}

    def test_method_validated_eagerly(self, shop):
        with pytest.raises(ValueError, match="unknown method"):
            AnnotationService(shop, options=ServiceOptions(method="bogus"))
        with pytest.raises(ValueError, match="unknown method"):
            AnnotationService(shop).submit(SIMPLE, method="simulate")


class TestWrapperCompatibility:
    def test_annotate_matches_service_values(self, shop):
        wrapper = annotate(ADVANTAGE, shop, epsilon=0.05, rng=9)
        direct = AnnotationService(shop, epsilon=0.05).submit(ADVANTAGE, seed=9)
        assert [a.certainty.value for a in wrapper] == \
            [a.certainty.value for a in direct.answers]

    def test_exact_method_through_service(self, shop):
        response = AnnotationService(shop, method="auto").submit(ADVANTAGE, seed=0)
        assert all(0.0 <= a.certainty.value <= 1.0 for a in response.answers)
        assert any(a.certainty.method == "exact" for a in response.answers)


class TestBackendWiring:
    def test_columnar_backend_serves_identical_answers(self, shop):
        reference = AnnotationService(shop, epsilon=0.05).submit(ADVANTAGE, seed=7)
        columnar = AnnotationService(
            shop, options=ServiceOptions(epsilon=0.05, backend="columnar")
        ).submit(ADVANTAGE, seed=7)
        assert [a.values for a in reference.answers] == \
            [a.values for a in columnar.answers]
        assert [a.witnesses for a in reference.answers] == \
            [a.witnesses for a in columnar.answers]
        # Same canonical lineage + same seed => bit-identical certainties.
        assert [a.certainty.value for a in reference.answers] == \
            [a.certainty.value for a in columnar.answers]

    def test_backend_option_converts_the_snapshot_once(self, shop):
        service = AnnotationService(shop, backend="columnar")
        assert service.database.backend == "columnar"
        assert service.database is not shop
        # A matching backend leaves the snapshot alone.
        same = AnnotationService(service.database, backend="columnar")
        assert same.database is service.database

    def test_columnar_database_is_served_natively(self, shop):
        columnar = shop.with_backend("columnar")
        service = AnnotationService(columnar)
        assert service.database is columnar
        response = service.submit(ADVANTAGE, seed=3)
        assert len(response.answers) == 4
