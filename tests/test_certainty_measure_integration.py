"""Integration tests for the public `certainty` entry point.

These check the paper's worked numbers (introduction example, Proposition
6.1) and that the independent backends -- exact, AFPRAS, FPRAS and the
finite-radius simulation straight from the definition -- agree with each
other on the same inputs.
"""

from __future__ import annotations

import math

import pytest

from repro.certainty import (
    SimulationOptions,
    afpras_formula_measure,
    certainty,
    certainty_from_translation,
    simulate_measure,
)
from repro.constraints.translate import translate
from repro.datagen.intro import (
    EXPECTED_MEASURE_FORMULA_1,
    EXPECTED_MEASURE_QUERY,
    SEGMENT,
    intro_constraint_formula,
)
from repro.logic.builder import base_var, exists, num_var, rel
from repro.logic.formulas import Query
from repro.logic.typecheck import TypeCheckError
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import NumNull


class TestPaperNumbers:
    def test_selection_of_two_nulls_is_half(self, pair_database):
        x, y = num_var("x"), num_var("y")
        query = Query(head=(), body=exists([x, y], rel("R", x, y) & (x > y)))
        assert certainty(query, pair_database, rng=0).value == pytest.approx(0.5)

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -1.0, 2.0, 0.7])
    def test_proposition_61_closed_form(self, pair_database, alpha):
        x, y = num_var("x"), num_var("y")
        query = Query(head=(), body=exists([x, y], rel("R", x, y)
                                           & (x >= 0) & (y <= alpha * x)))
        result = certainty(query, pair_database, rng=0)
        assert result.method == "exact"
        assert result.value == pytest.approx(0.25 + math.atan(alpha) / (2 * math.pi))

    def test_intro_formula_1_value(self):
        formula, variables = intro_constraint_formula()
        value, _ = afpras_formula_measure(formula, variables, epsilon=0.01, rng=0)
        assert value == pytest.approx(EXPECTED_MEASURE_FORMULA_1, abs=0.01)

    def test_intro_query_value_and_backend_agreement(self, intro_db, intro_q):
        approx = certainty(intro_q, intro_db, (SEGMENT,), method="afpras",
                           epsilon=0.02, rng=0)
        assert approx.value == pytest.approx(EXPECTED_MEASURE_QUERY, abs=0.03)
        simulated = simulate_measure(intro_q, intro_db, (SEGMENT,),
                                     SimulationOptions(radius=500.0, samples=400), rng=1)
        assert approx.value == pytest.approx(simulated.value, abs=0.06)

    def test_wrong_segment_has_measure_zero_or_tiny(self, intro_db, intro_q):
        result = certainty(intro_q, intro_db, ("other-segment",), method="afpras",
                           epsilon=0.05, rng=0)
        # A segment not in the database satisfies the universal condition
        # vacuously, so it is certain -- but it is not in the active domain of
        # the head variable; the definition of [Lipski'84] we follow still
        # assigns it measure 1 (vacuous truth).  Checking the exact value
        # documents the semantics.
        assert result.value == pytest.approx(1.0, abs=0.05)


class TestBackendDispatch:
    def test_auto_prefers_exact_for_small_linear(self, pair_database):
        x, y = num_var("x"), num_var("y")
        query = Query(head=(), body=exists([x, y], rel("R", x, y) & (x + y > 0)))
        assert certainty(query, pair_database, rng=0).method == "exact"

    def test_explicit_methods(self, pair_database):
        x, y = num_var("x"), num_var("y")
        query = Query(head=(), body=exists([x, y], rel("R", x, y) & (x > y)))
        for method in ("exact", "afpras", "fpras", "simulate"):
            result = certainty(query, pair_database, method=method, epsilon=0.05, rng=0)
            assert result.value == pytest.approx(0.5, abs=0.07), method

    def test_unknown_method_rejected(self, pair_database):
        x, y = num_var("x"), num_var("y")
        query = Query(head=(), body=exists([x, y], rel("R", x, y)))
        with pytest.raises(ValueError):
            certainty(query, pair_database, method="magic")

    def test_query_is_typechecked(self, pair_database):
        x = num_var("x")
        query = Query(head=(), body=exists(x, rel("R", x)))
        with pytest.raises(TypeCheckError):
            certainty(query, pair_database)

    def test_nonlinear_query_falls_back_to_afpras(self):
        schema = DatabaseSchema.of(RelationSchema.of("R", a="num", b="num", c="num"))
        database = Database(schema)
        database.add("R", (NumNull("a"), NumNull("b"), NumNull("c")))
        a, b, c = num_var("a"), num_var("b"), num_var("c")
        query = Query(head=(), body=exists([a, b, c], rel("R", a, b, c) & (a * b > c)))
        result = certainty(query, database, epsilon=0.05, rng=0)
        assert result.method == "afpras"
        # P(a*b > c) for a uniform direction: by symmetry of (a*b) and c this
        # is 1/2.
        assert result.value == pytest.approx(0.5, abs=0.07)

    def test_certainty_from_translation_roundtrip(self, pair_database):
        x, y = num_var("x"), num_var("y")
        query = Query(head=(), body=exists([x, y], rel("R", x, y) & (x > y)))
        translation = translate(query, pair_database)
        direct = certainty_from_translation(translation, rng=0)
        assert direct.value == pytest.approx(0.5)
        with pytest.raises(ValueError):
            certainty_from_translation(translation, method="magic")


class TestAgreementAcrossBackends:
    """Random CQ(+,<) instances: exact (when available), FPRAS, AFPRAS, simulation."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_two_null_instances(self, seed):
        import numpy as np

        generator = np.random.default_rng(seed)
        schema = DatabaseSchema.of(RelationSchema.of("R", a="num", b="num"))
        database = Database(schema)
        database.add("R", (NumNull("a"), NumNull("b")))
        a, b = num_var("a"), num_var("b")
        c1, c2, c3 = (float(generator.uniform(-2, 2)) for _ in range(3))
        query = Query(head=(), body=exists([a, b], rel("R", a, b)
                                           & (c1 * a + c2 * b <= c3)
                                           & (a >= c3)))
        exact = certainty(query, database, method="exact", rng=0).value
        additive = certainty(query, database, method="afpras", epsilon=0.03, rng=seed).value
        multiplicative = certainty(query, database, method="fpras", epsilon=0.05,
                                   rng=seed).value
        simulated = certainty(query, database, method="simulate", rng=seed).value
        assert additive == pytest.approx(exact, abs=0.05)
        assert multiplicative == pytest.approx(exact, abs=0.05)
        assert simulated == pytest.approx(exact, abs=0.08)
