"""Tests for single-cone and union-of-cones volume estimation."""

from __future__ import annotations

import math

import pytest

from repro.geometry.cones import PolyhedralCone
from repro.geometry.union_volume import union_volume_fraction
from repro.geometry.volume import cone_ball_fraction


def orthant_cone(dimension: int) -> PolyhedralCone:
    """The negative orthant ``{z : z_i <= 0}``, whose fraction is ``2^-d``."""
    rows = [[1.0 if j == i else 0.0 for j in range(dimension)] for i in range(dimension)]
    return PolyhedralCone.from_rows(dimension, weak=rows)


class TestSingleCone:
    def test_full_space(self):
        estimate = cone_ball_fraction(PolyhedralCone.from_rows(3))
        assert estimate.fraction == 1.0
        assert estimate.method == "exact"

    def test_degenerate_cone_is_zero(self):
        cone = PolyhedralCone.from_rows(2, equality=[[1.0, -1.0]])
        estimate = cone_ball_fraction(cone)
        assert estimate.fraction == 0.0
        assert estimate.method == "degenerate"

    def test_one_dimensional_halfline(self):
        cone = PolyhedralCone.from_rows(1, weak=[[1.0]])
        assert cone_ball_fraction(cone).fraction == pytest.approx(0.5)

    def test_one_dimensional_contradiction(self):
        cone = PolyhedralCone.from_rows(1, strict=[[1.0], [-1.0]])
        assert cone_ball_fraction(cone).fraction == 0.0

    def test_two_dimensional_uses_exact_arcs(self):
        estimate = cone_ball_fraction(orthant_cone(2))
        assert estimate.method == "exact"
        assert estimate.fraction == pytest.approx(0.25)

    @pytest.mark.parametrize("dimension", [3, 4, 5])
    def test_orthant_fraction_by_sampling(self, dimension):
        estimate = cone_ball_fraction(orthant_cone(dimension), epsilon=0.02, rng=0)
        assert estimate.fraction == pytest.approx(2.0**-dimension, abs=0.03)
        assert estimate.samples > 0

    def test_halfspace_in_high_dimension(self):
        cone = PolyhedralCone.from_rows(6, strict=[[1.0, 0, 0, 0, 0, 0]])
        estimate = cone_ball_fraction(cone, epsilon=0.03, rng=1)
        assert estimate.fraction == pytest.approx(0.5, abs=0.04)

    def test_telescoping_estimator_agrees(self):
        cone = orthant_cone(3)
        estimate = cone_ball_fraction(cone, epsilon=0.05, rng=2, method="telescoping")
        assert estimate.fraction == pytest.approx(0.125, abs=0.05)
        assert estimate.method == "telescoping"

    def test_invalid_epsilon_and_method(self):
        cone = orthant_cone(2)
        with pytest.raises(ValueError):
            cone_ball_fraction(cone, epsilon=0.0)
        with pytest.raises(ValueError):
            cone_ball_fraction(cone, method="nonsense")


class TestUnionOfCones:
    def test_empty_union(self):
        assert union_volume_fraction([]).fraction == 0.0

    def test_union_of_degenerate_cones(self):
        cone = PolyhedralCone.from_rows(2, equality=[[1.0, 0.0]])
        assert union_volume_fraction([cone, cone]).fraction == 0.0

    def test_opposite_halfplanes_cover_everything_2d(self):
        cones = [PolyhedralCone.from_rows(2, strict=[[1.0, 0.0]]),
                 PolyhedralCone.from_rows(2, strict=[[-1.0, 0.0]])]
        assert union_volume_fraction(cones).fraction == pytest.approx(1.0)

    def test_unconstrained_member_short_circuits(self):
        cones = [PolyhedralCone.from_rows(4), orthant_cone(4)]
        estimate = union_volume_fraction(cones)
        assert estimate.fraction == 1.0
        assert estimate.method == "exact"

    def test_one_dimensional_exact_union(self):
        positive = PolyhedralCone.from_rows(1, weak=[[-1.0]])
        negative = PolyhedralCone.from_rows(1, weak=[[1.0]])
        assert union_volume_fraction([positive]).fraction == pytest.approx(0.5)
        assert union_volume_fraction([positive, negative]).fraction == pytest.approx(1.0)

    def test_karp_luby_on_disjoint_orthants_3d(self):
        # The two opposite orthants of R^3 each cover 1/8 and are disjoint.
        rows_negative = [[1.0, 0, 0], [0, 1.0, 0], [0, 0, 1.0]]
        rows_positive = [[-1.0, 0, 0], [0, -1.0, 0], [0, 0, -1.0]]
        cones = [PolyhedralCone.from_rows(3, weak=rows_negative),
                 PolyhedralCone.from_rows(3, weak=rows_positive)]
        estimate = union_volume_fraction(cones, epsilon=0.03, rng=3, method="karp-luby")
        assert estimate.fraction == pytest.approx(0.25, abs=0.05)
        assert estimate.method == "karp-luby"

    def test_karp_luby_with_overlapping_cones(self):
        # Half-space x<0 and the quadrant {x<0, y<0}: the union is the half-space.
        half = PolyhedralCone.from_rows(3, strict=[[1.0, 0.0, 0.0]])
        quad = PolyhedralCone.from_rows(3, strict=[[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
        estimate = union_volume_fraction([half, quad], epsilon=0.03, rng=4,
                                         method="karp-luby")
        assert estimate.fraction == pytest.approx(0.5, abs=0.06)

    def test_direct_method_cross_check(self):
        cones = [orthant_cone(3)]
        estimate = union_volume_fraction(cones, epsilon=0.03, rng=5, method="direct")
        assert estimate.fraction == pytest.approx(0.125, abs=0.04)

    def test_mixed_dimensions_rejected(self):
        with pytest.raises(ValueError):
            union_volume_fraction([orthant_cone(2), orthant_cone(3)])

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            union_volume_fraction([orthant_cone(2)], epsilon=2.0)
