"""Tests for the exact backends: planar cones and signed-ordering enumeration."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest

from repro.certainty.exact import (
    ExactComputationError,
    ExactOptions,
    exact_measure,
    exact_order_measure,
    is_order_style,
)
from repro.constraints.atoms import Comparison, Constraint
from repro.constraints.formula import And, Atom, Or
from repro.constraints.polynomials import Polynomial
from repro.constraints.translate import TranslationResult, translate
from repro.logic.builder import exists, num_var, rel
from repro.logic.formulas import Query
from repro.relational.values import NumNull


def make_translation(formula, variables):
    nulls = {name: NumNull(name.removeprefix("z_")) for name in variables}
    return TranslationResult(
        formula=formula,
        all_variables=tuple(variables),
        relevant_variables=tuple(name for name in variables if name in formula.variables()),
        null_by_variable=nulls,
    )


def var(name: str) -> Polynomial:
    return Polynomial.variable(name)


class TestOrderStyleDetection:
    def test_accepts_single_variable_and_differences(self):
        formula = And((
            Atom(Constraint(var("z_a") - var("z_b"), Comparison.LT)),
            Atom(Constraint(var("z_a") - 3.0, Comparison.GT)),
        ))
        assert is_order_style(formula)

    def test_rejects_weighted_sums_and_products(self):
        weighted = Atom(Constraint(2.0 * var("z_a") - var("z_b"), Comparison.LT))
        assert not is_order_style(weighted)
        product = Atom(Constraint(var("z_a") * var("z_b"), Comparison.LT))
        assert not is_order_style(product)


class TestSignedOrderingEnumeration:
    def test_single_sign_constraint(self):
        formula = Atom(Constraint(var("z_a"), Comparison.GT))
        translation = make_translation(formula, ("z_a",))
        assert exact_order_measure(translation) == Fraction(1, 2)

    def test_difference_constraint(self):
        formula = Atom(Constraint(var("z_a") - var("z_b"), Comparison.LT))
        translation = make_translation(formula, ("z_a", "z_b"))
        assert exact_order_measure(translation) == Fraction(1, 2)

    def test_conjunction_of_signs(self):
        formula = And((Atom(Constraint(var("z_a"), Comparison.GT)),
                       Atom(Constraint(var("z_b"), Comparison.LT))))
        translation = make_translation(formula, ("z_a", "z_b"))
        assert exact_order_measure(translation) == Fraction(1, 4)

    def test_three_variable_ordering(self):
        # P(a < b < c) = 1/6.
        formula = And((Atom(Constraint(var("z_a") - var("z_b"), Comparison.LT)),
                       Atom(Constraint(var("z_b") - var("z_c"), Comparison.LT))))
        translation = make_translation(formula, ("z_a", "z_b", "z_c"))
        assert exact_order_measure(translation) == Fraction(1, 6)

    def test_ordering_with_sign_constraint(self):
        # P(a < 0 < b) = 1/4.
        formula = And((Atom(Constraint(var("z_a"), Comparison.LT)),
                       Atom(Constraint(var("z_b"), Comparison.GT))))
        translation = make_translation(formula, ("z_a", "z_b"))
        assert exact_order_measure(translation) == Fraction(1, 4)

    def test_disjunction(self):
        # P(a > 0 or b > 0) = 3/4.
        formula = Or((Atom(Constraint(var("z_a"), Comparison.GT)),
                      Atom(Constraint(var("z_b"), Comparison.GT))))
        translation = make_translation(formula, ("z_a", "z_b"))
        assert exact_order_measure(translation) == Fraction(3, 4)

    def test_rejects_non_order_style(self):
        formula = Atom(Constraint(2.0 * var("z_a") + var("z_b"), Comparison.LT))
        translation = make_translation(formula, ("z_a", "z_b"))
        with pytest.raises(ExactComputationError):
            exact_order_measure(translation)

    def test_rejects_too_many_variables(self):
        names = tuple(f"z_v{i}" for i in range(9))
        formula = And(tuple(Atom(Constraint(var(name), Comparison.GT)) for name in names))
        translation = make_translation(formula, names)
        with pytest.raises(ExactComputationError):
            exact_order_measure(translation, ExactOptions(max_order_dimension=7))


class TestExactMeasure:
    def test_no_variables(self):
        formula = Atom(Constraint(Polynomial.constant(-1.0), Comparison.LT))
        translation = make_translation(formula, ())
        assert exact_measure(translation).value == 1.0

    def test_planar_backend_matches_closed_form(self, pair_database):
        x, y = num_var("x"), num_var("y")
        alpha = 3.0
        query = Query(head=(), body=exists([x, y], rel("R", x, y)
                                           & (x >= 0) & (y <= alpha * x)))
        translation = translate(query, pair_database)
        result = exact_measure(translation)
        assert result.method == "exact"
        assert result.value == pytest.approx(0.25 + math.atan(alpha) / (2 * math.pi))

    def test_order_backend_reports_rational(self):
        formula = Atom(Constraint(var("z_a") - var("z_b"), Comparison.LT))
        # Force the order backend by using three variables (planar needs <= 2).
        formula = And((formula, Atom(Constraint(var("z_c"), Comparison.GT))))
        translation = make_translation(formula, ("z_a", "z_b", "z_c"))
        result = exact_measure(translation)
        assert result.value == pytest.approx(0.25)
        assert result.details["backend"] == "signed-orderings"
        assert result.details["rational"] == (1, 4)

    def test_raises_when_no_backend_applies(self):
        # Non-linear, three variables: neither planar nor order-style.
        formula = Atom(Constraint(var("z_a") * var("z_b") - var("z_c"), Comparison.LT))
        translation = make_translation(formula, ("z_a", "z_b", "z_c"))
        with pytest.raises(ExactComputationError):
            exact_measure(translation)
