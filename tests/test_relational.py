"""Tests for the typed relational model: values, schemas, relations, databases."""

from __future__ import annotations

import pytest

from repro.relational.columnar import ColumnarRelation
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, RelationSchema, SchemaError
from repro.relational.types import Attribute, AttributeType
from repro.relational.values import (
    BaseNull,
    NullFactory,
    NumNull,
    is_base_constant,
    is_base_null,
    is_null,
    is_num_null,
    is_numeric_constant,
)


class TestValues:
    def test_null_kinds_are_distinct(self):
        base = BaseNull("1")
        num = NumNull("1")
        assert is_base_null(base) and not is_num_null(base)
        assert is_num_null(num) and not is_base_null(num)
        assert is_null(base) and is_null(num)
        assert base != num

    def test_marked_nulls_compare_by_name(self):
        assert BaseNull("a") == BaseNull("a")
        assert NumNull("a") != NumNull("b")
        assert len({NumNull("a"), NumNull("a"), NumNull("b")}) == 2

    def test_numeric_constants_exclude_booleans(self):
        assert is_numeric_constant(3)
        assert is_numeric_constant(2.5)
        assert not is_numeric_constant(True)
        assert not is_numeric_constant("3")

    def test_base_constants(self):
        assert is_base_constant("hello")
        assert not is_base_constant(3.0)
        assert not is_base_constant(BaseNull("x"))
        assert not is_base_constant(["unhashable"])

    def test_null_factory_produces_fresh_names(self):
        factory = NullFactory(prefix="t")
        nulls = {factory.num() for _ in range(10)} | {factory.base() for _ in range(10)}
        assert len(nulls) == 20

    def test_empty_null_name_rejected(self):
        with pytest.raises(ValueError):
            BaseNull("")
        with pytest.raises(ValueError):
            NumNull("")

    def test_num_null_variable_name(self):
        assert NumNull("price").variable == "z_price"


class TestSchemas:
    def test_attribute_constructors(self):
        assert Attribute.base("id").type is AttributeType.BASE
        assert Attribute.num("price").is_numeric

    def test_relation_schema_of(self):
        schema = RelationSchema.of("R", id="base", price="num")
        assert schema.arity == 2
        assert schema.attribute_names == ("id", "price")
        assert schema.numeric_positions() == (1,)
        assert schema.base_positions() == (0,)
        assert schema.position("price") == 1

    def test_relation_schema_validation_errors(self):
        with pytest.raises(SchemaError):
            RelationSchema.of("R")
        with pytest.raises(SchemaError):
            RelationSchema.of("R", a="whatever")
        with pytest.raises(SchemaError):
            RelationSchema(name="R", attributes=(Attribute.base("a"), Attribute.base("a")))
        schema = RelationSchema.of("R", id="base")
        with pytest.raises(SchemaError):
            schema.attribute("missing")

    def test_tuple_validation(self):
        schema = RelationSchema.of("R", id="base", price="num")
        assert schema.validate_tuple(["a", 1.5]) == ("a", 1.5)
        assert schema.validate_tuple([BaseNull("b"), NumNull("p")]) \
            == (BaseNull("b"), NumNull("p"))
        with pytest.raises(SchemaError):
            schema.validate_tuple(["a"])
        with pytest.raises(SchemaError):
            schema.validate_tuple(["a", "not a number"])
        with pytest.raises(SchemaError):
            schema.validate_tuple([1.0, 2.0])
        with pytest.raises(SchemaError):
            schema.validate_tuple([NumNull("x"), 1.0])

    def test_database_schema(self):
        first = RelationSchema.of("R", a="base")
        second = RelationSchema.of("S", b="num")
        schema = DatabaseSchema.of(first, second)
        assert "R" in schema and "S" in schema
        assert len(schema) == 2
        assert schema.relation("R") is first
        with pytest.raises(SchemaError):
            schema.relation("T")
        with pytest.raises(SchemaError):
            DatabaseSchema.of(first, first)
        extended = schema.extend([RelationSchema.of("T", c="base")])
        assert len(extended) == 3
        with pytest.raises(SchemaError):
            extended.extend([first])


class TestRelation:
    def test_insertion_deduplicates_and_keeps_order(self):
        schema = RelationSchema.of("R", a="base", v="num")
        relation = Relation(schema)
        relation.add(("x", 1.0))
        relation.add(("y", 2.0))
        relation.add(("x", 1.0))
        assert len(relation) == 2
        assert relation.tuples() == (("x", 1.0), ("y", 2.0))
        assert ("x", 1.0) in relation

    def test_column_and_null_inventories(self):
        schema = RelationSchema.of("R", a="base", v="num")
        relation = Relation(schema, [("x", NumNull("n1")), (BaseNull("b1"), 2.0)])
        assert relation.column("a") == ("x", BaseNull("b1"))
        assert relation.num_nulls() == {NumNull("n1")}
        assert relation.base_nulls() == {BaseNull("b1")}

    def test_map_values(self):
        schema = RelationSchema.of("R", v="num")
        relation = Relation(schema, [(1.0,), (2.0,)])
        doubled = relation.map_values(lambda value: value * 2)
        assert doubled.tuples() == ((2.0,), (4.0,))

    @pytest.mark.parametrize("relation_class", [Relation, ColumnarRelation])
    def test_contains_normalises_like_add(self, relation_class):
        """Regression: membership goes through validate_tuple normalisation.

        The raw ``tuple(values) in seen`` lookup reported ``(True,)`` as a
        member whenever ``(1,)`` was stored (``hash(True) == hash(1)``) even
        though ``add((True,))`` would raise rather than dedupe -- membership
        and insertion disagreed.  Both backends must agree with ``add``.
        """
        schema = RelationSchema.of("R", a="base", v="num")
        relation = relation_class(schema)
        relation.add(("x", 1))
        with pytest.raises(SchemaError):
            relation.add(("x", True))
        # A tuple that add() would reject is not a member...
        assert ("x", True) not in relation
        # ...nor is anything of the wrong arity (no exception either).
        assert ("x",) not in relation
        assert ("x", 1, 2) not in relation
        # Well-typed tuples still behave as before.
        assert ("x", 1) in relation
        assert ("x", 1.0) in relation
        assert ("y", 1) not in relation


class TestColumnarRelation:
    def test_round_trip_preserves_content_and_order(self):
        schema = RelationSchema.of("R", a="base", v="num")
        rows = [("x", 1.5), (BaseNull("b"), NumNull("n")), ("y", -2.0)]
        relation = Relation(schema, rows)
        columnar = ColumnarRelation.from_relation(relation)
        assert columnar.tuples() == relation.tuples()
        assert columnar.to_relation().tuples() == relation.tuples()
        assert len(columnar) == 3
        assert columnar.column("a") == relation.column("a")
        assert columnar.row(1) == (BaseNull("b"), NumNull("n"))

    def test_add_dedupes_and_interleaves_with_bulk_storage(self):
        schema = RelationSchema.of("R", a="base", v="num")
        columnar = ColumnarRelation.from_rows(schema, [("x", 1.0)])
        columnar.add(("y", 2.0))
        columnar.add(("x", 1.0))     # duplicate of a sealed row
        columnar.add(("y", 2.0))     # duplicate of a buffered row
        assert columnar.tuples() == (("x", 1.0), ("y", 2.0))
        columnar.add(("z", NumNull("n")))
        assert len(columnar) == 3
        assert columnar.num_nulls() == {NumNull("n")}

    def test_from_columns_dedupes_vectorized(self):
        schema = RelationSchema.of("R", a="base", v="num")
        columnar = ColumnarRelation.from_columns(schema, {
            "a": ["x", "y", "x", "x", BaseNull("b")],
            "v": [1.0, 2.0, 1.0, 3.0, NumNull("n")],
        })
        assert columnar.tuples() == (
            ("x", 1.0), ("y", 2.0), ("x", 3.0), (BaseNull("b"), NumNull("n")))

    def test_inventories_match_row_backend(self):
        schema = RelationSchema.of("R", a="base", v="num")
        rows = [("x", 1.0), ("x", NumNull("n")), (BaseNull("b"), 2.0)]
        relation = Relation(schema, rows)
        columnar = ColumnarRelation.from_relation(relation)
        assert columnar.base_constants() == relation.base_constants() == {"x"}
        assert columnar.num_constants() == relation.num_constants() == {1.0, 2.0}
        assert columnar.base_nulls() == relation.base_nulls()
        assert columnar.num_nulls() == relation.num_nulls()

    def test_type_errors_surface_per_column(self):
        schema = RelationSchema.of("R", a="base", v="num")
        with pytest.raises(SchemaError):
            ColumnarRelation.from_columns(schema, {"a": ["x"], "v": ["oops"]})
        with pytest.raises(SchemaError):
            ColumnarRelation.from_columns(schema, {"a": [2.0], "v": [1.0]})
        with pytest.raises(SchemaError):
            ColumnarRelation.from_columns(schema, {"a": ["x", "y"], "v": [1.0]})
        with pytest.raises(SchemaError):
            ColumnarRelation.from_columns(schema, {"a": ["x"]})

    def test_copy_is_independent(self):
        schema = RelationSchema.of("R", a="base", v="num")
        columnar = ColumnarRelation.from_rows(schema, [("x", 1.0)])
        duplicate = columnar.copy()
        duplicate.add(("y", 2.0))
        assert len(columnar) == 1
        assert len(duplicate) == 2


class TestDatabase:
    def test_inventories(self, mixed_database):
        assert mixed_database.base_constants() >= {"pen", "book", "stationery"}
        assert mixed_database.num_constants() == {2.5, 7.0}
        assert mixed_database.base_nulls() == {BaseNull("mystery"), BaseNull("book_tag")}
        assert mixed_database.num_nulls() == {NumNull("book_price")}
        assert not mixed_database.is_complete()

    def test_num_nulls_ordered_is_deterministic(self, mixed_database):
        assert mixed_database.num_nulls_ordered() == (NumNull("book_price"),)

    def test_from_dict_and_copy(self, mixed_schema):
        database = Database.from_dict(mixed_schema, {
            "Items": [("pen", 1.0)],
            "Tags": [("pen", "office")],
        })
        assert database.total_tuples() == 2
        duplicate = database.copy()
        duplicate.add("Items", ("book", 2.0))
        assert database.total_tuples() == 2
        assert duplicate.total_tuples() == 3

    def test_unknown_relation_rejected(self, mixed_database):
        with pytest.raises(SchemaError):
            mixed_database.add("Nope", ("a",))
        with pytest.raises(SchemaError):
            mixed_database.relation("Nope")

    def test_relation_names_and_iteration(self, mixed_database):
        assert set(mixed_database.relation_names()) == {"Items", "Tags"}
        assert {relation.name for relation in mixed_database} == {"Items", "Tags"}

    def test_backend_switch_round_trips(self, mixed_database):
        assert mixed_database.backend == "rows"
        columnar = mixed_database.with_backend("columnar")
        assert columnar.backend == "columnar"
        assert columnar.with_backend("columnar") is columnar
        assert columnar.total_tuples() == mixed_database.total_tuples()
        assert columnar.base_constants() == mixed_database.base_constants()
        assert columnar.num_constants() == mixed_database.num_constants()
        assert columnar.num_nulls_ordered() == mixed_database.num_nulls_ordered()
        back = columnar.with_backend("rows")
        for name in mixed_database.relation_names():
            assert back.relation(name).tuples() == \
                mixed_database.relation(name).tuples()

    def test_install_relation_validates_schema_and_backend(self, mixed_schema):
        columnar = Database(mixed_schema, backend="columnar")
        bulk = ColumnarRelation.from_columns(
            mixed_schema.relation("Items"), {"name": ["pen"], "price": [1.0]})
        columnar.install_relation(bulk)
        assert columnar.relation("Items").tuples() == (("pen", 1.0),)
        with pytest.raises(SchemaError):
            columnar.install_relation(ColumnarRelation(
                RelationSchema.of("Nope", a="base")))
        with pytest.raises(SchemaError):
            columnar.install_relation(ColumnarRelation(
                RelationSchema.of("Items", name="base", price="base")))
        with pytest.raises(SchemaError):
            columnar.install_relation(Relation(mixed_schema.relation("Items")))

    def test_backend_validation_and_copy(self, mixed_schema, mixed_database):
        with pytest.raises(SchemaError):
            Database(mixed_schema, backend="arrow")
        with pytest.raises(SchemaError):
            mixed_database.with_backend("arrow")
        columnar = mixed_database.with_backend("columnar")
        duplicate = columnar.copy()
        duplicate.add("Items", ("pencil", 0.5))
        assert duplicate.backend == "columnar"
        assert columnar.total_tuples() == mixed_database.total_tuples()
        assert duplicate.total_tuples() == columnar.total_tuples() + 1
