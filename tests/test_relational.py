"""Tests for the typed relational model: values, schemas, relations, databases."""

from __future__ import annotations

import pytest

from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, RelationSchema, SchemaError
from repro.relational.types import Attribute, AttributeType
from repro.relational.values import (
    BaseNull,
    NullFactory,
    NumNull,
    is_base_constant,
    is_base_null,
    is_null,
    is_num_null,
    is_numeric_constant,
)


class TestValues:
    def test_null_kinds_are_distinct(self):
        base = BaseNull("1")
        num = NumNull("1")
        assert is_base_null(base) and not is_num_null(base)
        assert is_num_null(num) and not is_base_null(num)
        assert is_null(base) and is_null(num)
        assert base != num

    def test_marked_nulls_compare_by_name(self):
        assert BaseNull("a") == BaseNull("a")
        assert NumNull("a") != NumNull("b")
        assert len({NumNull("a"), NumNull("a"), NumNull("b")}) == 2

    def test_numeric_constants_exclude_booleans(self):
        assert is_numeric_constant(3)
        assert is_numeric_constant(2.5)
        assert not is_numeric_constant(True)
        assert not is_numeric_constant("3")

    def test_base_constants(self):
        assert is_base_constant("hello")
        assert not is_base_constant(3.0)
        assert not is_base_constant(BaseNull("x"))
        assert not is_base_constant(["unhashable"])

    def test_null_factory_produces_fresh_names(self):
        factory = NullFactory(prefix="t")
        nulls = {factory.num() for _ in range(10)} | {factory.base() for _ in range(10)}
        assert len(nulls) == 20

    def test_empty_null_name_rejected(self):
        with pytest.raises(ValueError):
            BaseNull("")
        with pytest.raises(ValueError):
            NumNull("")

    def test_num_null_variable_name(self):
        assert NumNull("price").variable == "z_price"


class TestSchemas:
    def test_attribute_constructors(self):
        assert Attribute.base("id").type is AttributeType.BASE
        assert Attribute.num("price").is_numeric

    def test_relation_schema_of(self):
        schema = RelationSchema.of("R", id="base", price="num")
        assert schema.arity == 2
        assert schema.attribute_names == ("id", "price")
        assert schema.numeric_positions() == (1,)
        assert schema.base_positions() == (0,)
        assert schema.position("price") == 1

    def test_relation_schema_validation_errors(self):
        with pytest.raises(SchemaError):
            RelationSchema.of("R")
        with pytest.raises(SchemaError):
            RelationSchema.of("R", a="whatever")
        with pytest.raises(SchemaError):
            RelationSchema(name="R", attributes=(Attribute.base("a"), Attribute.base("a")))
        schema = RelationSchema.of("R", id="base")
        with pytest.raises(SchemaError):
            schema.attribute("missing")

    def test_tuple_validation(self):
        schema = RelationSchema.of("R", id="base", price="num")
        assert schema.validate_tuple(["a", 1.5]) == ("a", 1.5)
        assert schema.validate_tuple([BaseNull("b"), NumNull("p")]) \
            == (BaseNull("b"), NumNull("p"))
        with pytest.raises(SchemaError):
            schema.validate_tuple(["a"])
        with pytest.raises(SchemaError):
            schema.validate_tuple(["a", "not a number"])
        with pytest.raises(SchemaError):
            schema.validate_tuple([1.0, 2.0])
        with pytest.raises(SchemaError):
            schema.validate_tuple([NumNull("x"), 1.0])

    def test_database_schema(self):
        first = RelationSchema.of("R", a="base")
        second = RelationSchema.of("S", b="num")
        schema = DatabaseSchema.of(first, second)
        assert "R" in schema and "S" in schema
        assert len(schema) == 2
        assert schema.relation("R") is first
        with pytest.raises(SchemaError):
            schema.relation("T")
        with pytest.raises(SchemaError):
            DatabaseSchema.of(first, first)
        extended = schema.extend([RelationSchema.of("T", c="base")])
        assert len(extended) == 3
        with pytest.raises(SchemaError):
            extended.extend([first])


class TestRelation:
    def test_insertion_deduplicates_and_keeps_order(self):
        schema = RelationSchema.of("R", a="base", v="num")
        relation = Relation(schema)
        relation.add(("x", 1.0))
        relation.add(("y", 2.0))
        relation.add(("x", 1.0))
        assert len(relation) == 2
        assert relation.tuples() == (("x", 1.0), ("y", 2.0))
        assert ("x", 1.0) in relation

    def test_column_and_null_inventories(self):
        schema = RelationSchema.of("R", a="base", v="num")
        relation = Relation(schema, [("x", NumNull("n1")), (BaseNull("b1"), 2.0)])
        assert relation.column("a") == ("x", BaseNull("b1"))
        assert relation.num_nulls() == {NumNull("n1")}
        assert relation.base_nulls() == {BaseNull("b1")}

    def test_map_values(self):
        schema = RelationSchema.of("R", v="num")
        relation = Relation(schema, [(1.0,), (2.0,)])
        doubled = relation.map_values(lambda value: value * 2)
        assert doubled.tuples() == ((2.0,), (4.0,))


class TestDatabase:
    def test_inventories(self, mixed_database):
        assert mixed_database.base_constants() >= {"pen", "book", "stationery"}
        assert mixed_database.num_constants() == {2.5, 7.0}
        assert mixed_database.base_nulls() == {BaseNull("mystery"), BaseNull("book_tag")}
        assert mixed_database.num_nulls() == {NumNull("book_price")}
        assert not mixed_database.is_complete()

    def test_num_nulls_ordered_is_deterministic(self, mixed_database):
        assert mixed_database.num_nulls_ordered() == (NumNull("book_price"),)

    def test_from_dict_and_copy(self, mixed_schema):
        database = Database.from_dict(mixed_schema, {
            "Items": [("pen", 1.0)],
            "Tags": [("pen", "office")],
        })
        assert database.total_tuples() == 2
        duplicate = database.copy()
        duplicate.add("Items", ("book", 2.0))
        assert database.total_tuples() == 2
        assert duplicate.total_tuples() == 3

    def test_unknown_relation_rejected(self, mixed_database):
        with pytest.raises(SchemaError):
            mixed_database.add("Nope", ("a",))
        with pytest.raises(SchemaError):
            mixed_database.relation("Nope")

    def test_relation_names_and_iteration(self, mixed_database):
        assert set(mixed_database.relation_names()) == {"Items", "Tags"}
        assert {relation.name for relation in mixed_database} == {"Items", "Tags"}
