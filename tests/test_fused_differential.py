"""Property-based differential harness: fused execution vs the per-group path.

Block-diagonal kernel fusion (:mod:`repro.service.fused`) and the cost-based
planner (:mod:`repro.service.planner`) promise to be *observationally
invisible*: at a fixed seed, a request answered through fused kernel
launches -- under any fusion batch size, job count, executor, method
resolution, and with the adaptive epsilon ladder on or off -- must return
bit-identical certainties, intervals, adaptive traces, and lineage digests
to the historical per-group path.

This harness reuses the random (schema, data, query) generator of
tests/test_columnar_differential.py and runs every case through two
:class:`AnnotationService` instances over the same database -- one with the
per-group reference configuration, one with a rotating fused/planned
configuration -- comparing answers field for field.  Set
``REPRO_FUSED_CASES`` to scale the case count.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.datagen.generic import generate_database
from repro.service import AnnotationService
from test_columnar_differential import _random_case

#: Service-level submits are heavier than bare enumeration, so the fused
#: harness defaults lower than the columnar one; nightly scales it up.
DEFAULT_CASES = 40

CASES = int(os.environ.get("REPRO_FUSED_CASES", DEFAULT_CASES))

#: Rotating fused configurations.  ``process`` appears sparingly: spawning
#: a pool per case would dominate the harness, and the executors share the
#: payload/stream derivation the thread cases already pin down.
CONFIGURATIONS = (
    {"fusion": 8},
    {"fusion": 2},
    {"fusion": 8, "adaptive": True},
    {"fusion": 3, "jobs": 3},
    {"fusion": 8, "method": "auto"},
    {"fusion": 4, "adaptive": True, "jobs": 2},
    {"planner": "auto"},
    {"fusion": 8, "jobs": 2, "executor": "process"},
)


def _assert_answers_identical(context: str, reference, fused) -> None:
    assert len(reference.answers) == len(fused.answers), context
    for expected, actual in zip(reference.answers, fused.answers):
        assert expected.values == actual.values, context
        assert expected.columns == actual.columns, context
        assert expected.witnesses == actual.witnesses, context
        assert expected.lineage_digest == actual.lineage_digest, context
        # Full dataclass equality: value, method, guarantee, epsilon, delta,
        # samples, dimensions, and the details dict -- which carries the
        # adaptive trace (per-stage values, intervals, sample counts), so
        # the streamed ladder is covered stage by stage, not just at the
        # final value.
        assert expected.certainty == actual.certainty, context
        assert expected.certainty.interval() == actual.certainty.interval(), \
            context


class TestFusedDifferential:
    def test_random_cases_agree(self):
        """Fused answers are bit-identical to per-group answers on random cases."""
        rng = np.random.default_rng(20200807)
        fused_kernels = 0
        fused_tuples = 0
        for case_index in range(CASES):
            schema, specs, sql, group_witnesses = _random_case(rng)
            seed = int(rng.integers(0, 2**31))
            configuration = dict(CONFIGURATIONS[case_index % len(CONFIGURATIONS)])
            adaptive = configuration.pop("adaptive", False)
            method = configuration.pop("method", "afpras")
            database = generate_database(schema, specs, rng=seed)
            context = f"case {case_index}: {sql!r} via {configuration}"

            reference = AnnotationService(database, epsilon=0.25).submit(
                sql, seed=seed, method=method, adaptive=adaptive,
                group_witnesses=group_witnesses)
            candidate = AnnotationService(database, epsilon=0.25).submit(
                sql, seed=seed, method=method, adaptive=adaptive,
                group_witnesses=group_witnesses, **configuration)

            _assert_answers_identical(context, reference, candidate)
            fused_kernels += candidate.stats.kernels_launched
            fused_tuples += candidate.stats.tuples_fused
        # The harness must actually exercise the fused path, not vacuously
        # compare two per-group runs.
        assert fused_kernels > 0
        assert fused_tuples > 0

    def test_case_count_meets_floor(self):
        """CI runs enough cases to cover every configuration several times."""
        if "REPRO_FUSED_CASES" in os.environ and CASES < DEFAULT_CASES:
            pytest.skip(f"case count deliberately scaled down to {CASES}")
        assert CASES >= len(CONFIGURATIONS) * 4

    def test_adaptive_traces_match_stage_by_stage(self):
        """The fused epsilon ladder replays the unfused ladder exactly.

        Beyond final-answer equality (covered above), the streamed updates
        themselves must match: same stages, same per-stage values and
        monotonically intersected intervals, in the same per-group order.
        """
        rng = np.random.default_rng(31)
        compared = 0
        for _ in range(6):
            schema, specs, sql, group_witnesses = _random_case(rng)
            seed = int(rng.integers(0, 2**31))
            database = generate_database(schema, specs, rng=seed)

            def capture(log):
                def on_update(group, update):
                    log.append((group.canonical.digest, update))
                return on_update

            solo_log, fused_log = [], []
            AnnotationService(database, epsilon=0.3).submit(
                sql, seed=seed, adaptive=True,
                group_witnesses=group_witnesses,
                on_update=capture(solo_log))
            AnnotationService(database, epsilon=0.3).submit(
                sql, seed=seed, adaptive=True, fusion=8,
                group_witnesses=group_witnesses,
                on_update=capture(fused_log))
            # Concurrent workers may interleave groups differently; compare
            # each group's ordered update stream, not the global order.
            def by_group(log):
                streams = {}
                for digest, update in log:
                    streams.setdefault(digest, []).append(update)
                return streams
            assert by_group(solo_log) == by_group(fused_log), sql
            compared += len(by_group(solo_log))
        assert compared > 0

    def test_planner_auto_is_invisible_on_random_cases(self):
        """``--planner auto`` may repick every knob but never an answer."""
        rng = np.random.default_rng(77)
        for _ in range(8):
            schema, specs, sql, group_witnesses = _random_case(rng)
            seed = int(rng.integers(0, 2**31))
            database = generate_database(schema, specs, rng=seed)
            context = f"planner case: {sql!r}"
            manual = AnnotationService(database, epsilon=0.25).submit(
                sql, seed=seed, group_witnesses=group_witnesses)
            auto = AnnotationService(database, epsilon=0.25).submit(
                sql, seed=seed, group_witnesses=group_witnesses,
                planner="auto")
            assert auto.stats.planned is not None, context
            _assert_answers_identical(context, manual, auto)
