"""Concurrent reads and writes through the async server.

The live data plane promises MVCC semantics at the wire: writers never
block readers, readers pinned across a commit keep the snapshot they
started on, writers serialise behind the mutation gate and report
strictly advancing data versions, and drain lets an in-flight mutation
deliver its terminal event before the server goes idle.  These tests pin
each of those properties -- transport-free against :class:`ServerApp`
where determinism wants a gate, end-to-end through
:class:`EmbeddedServer` sockets for the four-reader acceptance scenario.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.client import ReproClient
from repro.engine.mutate import execute_mutation
from repro.engine.sql.parser import parse_statement
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import NumNull
from repro.server import EmbeddedServer, ServerApp
from repro.service import AnnotationService, ServiceOptions


def _database() -> Database:
    schema = DatabaseSchema.of(RelationSchema.of("t", key="base", x="num"))
    # Two nulls keep every reader query uncertain, so the certainty
    # estimator (where the pinning gate sits) runs for each of them.
    return Database.from_dict(schema, {
        "t": [("a", 1.0), ("b", NumNull("n0")), ("c", 4.0),
              ("d", NumNull("n1"))],
    }, backend="columnar")


def _service(database: Database | None = None) -> AnnotationService:
    return AnnotationService(database if database is not None else _database(),
                             ServiceOptions(seed=7, epsilon=0.2))


def _rebuild(database: Database) -> Database:
    """The same content on a fresh, cacheless version chain."""
    return Database.from_dict(
        database.schema,
        {name: database.relation(name).tuples()
         for name in database.relation_names()},
        backend=database.backend)


def _snapshot(answers):
    return [(answer.values, answer.certainty.value, answer.lineage_digest)
            for answer in answers]


#: Four distinct queries (distinct lineages, so neither the server's
#: single-flight nor the service's estimate sharing merges the readers).
READER_QUERIES = tuple(f"SELECT t.key FROM t WHERE t.x > {bound}"
                       for bound in (0, 1, 2, 3))

MUTATION = "INSERT INTO t VALUES ('z', 9)"


class GatedWriter:
    """Delegate to a real service, but block ``mutate`` on a test gate.

    Holds the statement *inside* the server's mutation gate, so the test
    can assert what readers and drain do while a writer is in flight.
    """

    def __init__(self, inner: AnnotationService) -> None:
        self.inner = inner
        self.gate = threading.Event()
        self.entered = threading.Event()

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def mutate(self, statement):
        self.entered.set()
        assert self.gate.wait(30), "test gate never opened"
        return self.inner.mutate(statement)


async def _collect(app: ServerApp, message: dict) -> list[dict]:
    return [event async for event in app.query_events(message)]


class TestSnapshotIsolation:
    def test_pinned_readers_keep_their_version(self):
        """Four readers pinned across a commit answer from the old snapshot.

        The gate sits in ``_estimate``: by the time a reader blocks there
        it has pinned its snapshot and enumerated candidates from it.  The
        writer then commits *while all four are pinned* -- without waiting
        on them -- and the readers, once released, must still answer from
        version 0, bit for bit.
        """
        service = _service()
        expected_old = {
            sql: _snapshot(_service(_rebuild(service.database))
                           .submit(sql).answers)
            for sql in READER_QUERIES}

        original = AnnotationService._estimate
        started = threading.Semaphore(0)
        gate = threading.Event()

        def pinned_estimate(self, *args, **kwargs):
            started.release()
            assert gate.wait(30), "test gate never opened"
            return original(self, *args, **kwargs)

        results: dict = {}

        def read(sql: str) -> None:
            results[sql] = service.submit(sql).answers

        AnnotationService._estimate = pinned_estimate
        try:
            threads = [threading.Thread(target=read, args=(sql,))
                       for sql in READER_QUERIES]
            for thread in threads:
                thread.start()
            for _ in READER_QUERIES:
                assert started.acquire(timeout=30), \
                    "every reader must reach the estimator"

            # All four readers hold version 0.  The writer commits now;
            # returning at all proves it does not wait for the readers.
            outcome = service.mutate("DELETE FROM t WHERE key = 'b'")
            assert outcome.data_version == 1

            gate.set()
            for thread in threads:
                thread.join(timeout=30)
                assert not thread.is_alive()
        finally:
            AnnotationService._estimate = original

        for sql in READER_QUERIES:
            assert _snapshot(results[sql]) == expected_old[sql], \
                f"pinned reader replayed the wrong version: {sql!r}"

        # Fresh submits see version 1 -- equal to a cold service on the
        # mutated content, so nothing stale survived the commit either.
        fresh = _service(_rebuild(service.database))
        for sql in READER_QUERIES:
            assert _snapshot(service.submit(sql).answers) == \
                _snapshot(fresh.submit(sql).answers)


class TestServerAppMutations:
    def test_readers_complete_while_a_writer_is_in_flight(self):
        gated = GatedWriter(_service())
        app = ServerApp(gated, workers=6)

        async def scenario():
            writer = asyncio.ensure_future(app.mutate({"sql": MUTATION}))
            await asyncio.to_thread(gated.entered.wait, 30)
            reads = await asyncio.gather(*[
                _collect(app, {"sql": sql}) for sql in READER_QUERIES])
            assert not writer.done(), "the writer must still be in flight"
            gated.gate.set()
            return reads, await writer

        reads, event = asyncio.run(scenario())
        app.close()
        for events in reads:
            assert events[-1]["type"] == "result", \
                "readers must not block on the in-flight writer"
            assert events[-1]["answers"]
        assert event["type"] == "mutation"
        assert event["data_version"] == 1
        counters = app.stats()["server"]
        assert counters["mutations"] == 1
        assert counters["mutation_errors"] == 0

    def test_writers_serialise_and_report_monotone_versions(self):
        app = ServerApp(_service())

        async def scenario():
            return await asyncio.gather(*[
                app.mutate({"sql": f"INSERT INTO t VALUES ('z{i}', {i})"})
                for i in range(4)])

        events = asyncio.run(scenario())
        app.close()
        assert all(event["type"] == "mutation" for event in events)
        # The gate serialises the four writers: whatever order they ran
        # in, each observed its own committed version, none lost.
        assert sorted(event["data_version"] for event in events) == \
            [1, 2, 3, 4]
        assert app.stats()["service"]["data_version"] == 4

    def test_drain_waits_for_the_in_flight_mutation(self):
        gated = GatedWriter(_service())
        app = ServerApp(gated)

        async def scenario():
            writer = asyncio.ensure_future(app.mutate({"sql": MUTATION}))
            await asyncio.to_thread(gated.entered.wait, 30)
            app.begin_drain()
            # New work is refused with the typed draining error...
            refused_mutation = await app.mutate(
                {"sql": "DELETE FROM t WHERE key = 'a'"})
            refused_query = await _collect(app,
                                           {"sql": READER_QUERIES[0]})
            # ...but the in-flight statement is not abandoned: the app
            # only reports idle once its terminal event is delivered.
            assert not await app.wait_idle(timeout=0.05)
            gated.gate.set()
            event = await writer
            assert await app.wait_idle(timeout=30)
            return refused_mutation, refused_query, event

        refused_mutation, refused_query, event = asyncio.run(scenario())
        app.close()
        assert refused_mutation["code"] == "draining"
        assert refused_query[-1]["code"] == "draining"
        assert event["type"] == "mutation"
        assert event["data_version"] == 1
        assert app.stats()["server"]["mutations"] == 1


class TestWireConcurrency:
    def test_four_readers_across_a_mutation_see_whole_versions(self):
        """End-to-end: every answer matches exactly one committed version.

        Four socket clients hammer their queries while a fifth commits an
        UPDATE.  Each response must be bit-identical to a cold service on
        either the version-0 or the version-1 content -- a torn read
        (mixing versions) matches neither.
        """
        service = _service()
        statement = "UPDATE t SET x = 9 WHERE key = 'b'"
        old_content = _rebuild(service.database)
        new_content, _, _ = execute_mutation(parse_statement(statement),
                                             old_content)
        expected = {
            sql: (
                _snapshot(_service(_rebuild(old_content)).submit(sql).answers),
                _snapshot(_service(_rebuild(new_content)).submit(sql).answers),
            )
            for sql in READER_QUERIES}

        rounds = 6
        observed: dict[str, list] = {sql: [] for sql in READER_QUERIES}
        release_writer = threading.Event()
        mutated: dict = {}

        with EmbeddedServer(service, workers=8) as server:
            def read(sql: str) -> None:
                with ReproClient(server.host, server.port) as client:
                    for round_index in range(rounds):
                        observed[sql].append(
                            _snapshot(client.query(sql).answers))
                        if round_index == 1:
                            release_writer.set()

            def write() -> None:
                assert release_writer.wait(30)
                with ReproClient(server.host, server.port) as client:
                    mutated["result"] = client.mutate(statement)

            threads = [threading.Thread(target=read, args=(sql,))
                       for sql in READER_QUERIES]
            threads.append(threading.Thread(target=write))
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
                assert not thread.is_alive()

            stats = server.app.stats()
            assert stats["server"]["mutations"] == 1
            assert stats["service"]["data_version"] == 1

        assert mutated["result"].operation == "update"
        assert mutated["result"].data_version == 1

        for sql in READER_QUERIES:
            before, after = expected[sql]
            for round_index, snapshot in enumerate(observed[sql]):
                assert snapshot in (before, after), \
                    (f"torn read: {sql!r} round {round_index} matches "
                     f"neither committed version")
            # Versions are monotone per connection: once a reader sees
            # version 1 it never slides back to version 0.
            if before != after:
                seen_new = False
                for snapshot in observed[sql]:
                    if snapshot == after:
                        seen_new = True
                    elif seen_new:
                        pytest.fail(f"reader on {sql!r} went back in time")

        # The mutation really happened while readers were mid-stream: the
        # writer waited for two rounds, and four more rounds followed it.
        assert all(len(observed[sql]) == rounds for sql in READER_QUERIES)
