"""Tests for valuations, bijective base valuations and CSV round-tripping."""

from __future__ import annotations

import pytest

from repro.relational.csv_io import load_database, save_database
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.valuation import Valuation, bijective_base_valuation
from repro.relational.values import BaseNull, NumNull


class TestValuation:
    def test_applies_to_values_and_tuples(self):
        valuation = Valuation(base_map={BaseNull("b"): "bob"},
                              num_map={NumNull("n"): 3})
        assert valuation.value(BaseNull("b")) == "bob"
        assert valuation.value(NumNull("n")) == 3.0
        assert valuation.value("constant") == "constant"
        assert valuation.tuple((BaseNull("b"), 7.0, NumNull("n"))) == ("bob", 7.0, 3.0)

    def test_uncovered_nulls_pass_through(self):
        valuation = Valuation()
        assert valuation.value(BaseNull("b")) == BaseNull("b")
        assert valuation.value(NumNull("n")) == NumNull("n")

    def test_database_application(self, mixed_database):
        valuation = Valuation(base_map={BaseNull("mystery"): "eraser",
                                        BaseNull("book_tag"): "reading"},
                              num_map={NumNull("book_price"): 12.0})
        complete = valuation.database(mixed_database)
        assert complete.is_complete()
        assert mixed_database.num_nulls()  # the original is untouched

    def test_extend_merges_maps(self):
        first = Valuation(base_map={BaseNull("a"): "x"})
        second = Valuation(num_map={NumNull("b"): 1.0})
        merged = first.extend(second)
        assert merged.value(BaseNull("a")) == "x"
        assert merged.value(NumNull("b")) == 1.0

    def test_numeric_constructor(self):
        valuation = Valuation.numeric({NumNull("n"): 2.5})
        assert valuation.value(NumNull("n")) == 2.5


class TestBijectiveBaseValuation:
    def test_fresh_injective_and_disjoint(self, mixed_database):
        valuation = bijective_base_valuation(mixed_database)
        images = [valuation.value(null) for null in mixed_database.base_nulls()]
        assert len(set(images)) == len(images)
        assert not set(images) & mixed_database.base_constants()

    def test_avoids_collisions_with_existing_constants(self):
        schema = DatabaseSchema.of(RelationSchema.of("R", a="base"))
        database = Database(schema)
        database.add("R", ("fresh#x",))
        database.add("R", (BaseNull("x"),))
        valuation = bijective_base_valuation(database)
        assert valuation.value(BaseNull("x")) != "fresh#x"

    def test_leaves_numeric_nulls_alone(self, mixed_database):
        valuation = bijective_base_valuation(mixed_database)
        valued = valuation.database(mixed_database)
        assert valued.num_nulls() == mixed_database.num_nulls()
        assert not valued.base_nulls()


class TestCsvRoundTrip:
    def test_round_trip_preserves_everything(self, mixed_database, tmp_path):
        save_database(mixed_database, tmp_path)
        loaded = load_database(mixed_database.schema, tmp_path)
        for relation in mixed_database:
            assert set(loaded.relation(relation.name).tuples()) == set(relation.tuples())

    def test_missing_files_load_as_empty(self, mixed_schema, tmp_path):
        loaded = load_database(mixed_schema, tmp_path)
        assert loaded.total_tuples() == 0

    def test_header_mismatch_is_rejected(self, mixed_database, mixed_schema, tmp_path):
        save_database(mixed_database, tmp_path)
        other_schema = DatabaseSchema.of(
            RelationSchema.of("Items", wrong="base", price="num"),
            mixed_schema.relation("Tags"),
        )
        with pytest.raises(ValueError):
            load_database(other_schema, tmp_path)
