"""Tests for CertaintyResult and the zero-one law backend."""

from __future__ import annotations

import pytest

from repro.certainty.result import CertaintyResult
from repro.certainty.zero_one import naive_holds, zero_one_certainty
from repro.logic.builder import base_var, exists, neg, num_var, rel
from repro.logic.formulas import Query
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import BaseNull, NumNull


class TestCertaintyResult:
    def test_value_is_clipped_and_validated(self):
        assert CertaintyResult(value=1.0 + 1e-12, method="exact").value == 1.0
        with pytest.raises(ValueError):
            CertaintyResult(value=1.5, method="exact")
        with pytest.raises(ValueError):
            CertaintyResult(value=-0.1, method="exact")

    def test_additive_interval(self):
        result = CertaintyResult(value=0.5, method="afpras", guarantee="additive",
                                 epsilon=0.1, samples=100)
        assert result.interval() == (pytest.approx(0.4), pytest.approx(0.6))

    def test_multiplicative_interval(self):
        result = CertaintyResult(value=0.5, method="fpras", guarantee="multiplicative",
                                 epsilon=0.5, samples=100)
        low, high = result.interval()
        assert low == pytest.approx(0.5 / 1.5)
        assert high == pytest.approx(1.0)

    def test_exact_interval_is_point(self):
        result = CertaintyResult(value=0.25, method="exact")
        assert result.interval() == (0.25, 0.25)

    def test_certain_and_impossible_flags(self):
        assert CertaintyResult(value=1.0, method="exact").is_certain()
        assert CertaintyResult(value=0.0, method="exact").is_impossible()
        middling = CertaintyResult(value=0.5, method="exact")
        assert not middling.is_certain() and not middling.is_impossible()


@pytest.fixture
def library() -> Database:
    schema = DatabaseSchema.of(
        RelationSchema.of("Book", title="base", shelf="base"),
        RelationSchema.of("Lost", title="base"),
    )
    database = Database(schema)
    database.add("Book", ("dune", "sci-fi"))
    database.add("Book", (BaseNull("unknown_title"), "poetry"))
    database.add("Lost", ("dune",))
    return database


class TestZeroOneLaw:
    def test_positive_atom(self, library):
        title, shelf = base_var("t"), base_var("s")
        query = Query(head=(shelf,), body=exists(title, rel("Book", title, shelf)))
        assert zero_one_certainty(query, library, ("sci-fi",)).value == 1.0
        assert zero_one_certainty(query, library, ("poetry",)).value == 1.0
        assert zero_one_certainty(query, library, ("cooking",)).value == 0.0

    def test_null_candidate(self, library):
        title, shelf = base_var("t"), base_var("s")
        query = Query(head=(title,), body=exists(shelf, rel("Book", title, shelf)))
        assert zero_one_certainty(query, library, (BaseNull("unknown_title"),)).value == 1.0

    def test_negation_with_nulls(self, library):
        # The unknown title is almost surely not lost.
        title, shelf = base_var("t"), base_var("s")
        query = Query(head=(title,),
                      body=exists(shelf, rel("Book", title, shelf) & neg(rel("Lost", title))))
        assert zero_one_certainty(query, library, (BaseNull("unknown_title"),)).value == 1.0
        assert zero_one_certainty(query, library, ("dune",)).value == 0.0

    def test_rejects_numeric_nulls(self):
        schema = DatabaseSchema.of(RelationSchema.of("R", v="num"))
        database = Database(schema)
        database.add("R", (NumNull("n"),))
        x = num_var("x")
        query = Query(head=(), body=exists(x, rel("R", x)))
        with pytest.raises(ValueError):
            naive_holds(query, database, ())
        with pytest.raises(ValueError):
            naive_holds(Query(head=(x,), body=rel("R", x)), Database(schema), (NumNull("n"),))
