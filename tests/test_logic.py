"""Tests for the FO(+, ·, <) query language: terms, formulae, DSL, typechecking."""

from __future__ import annotations

import pytest

from repro.logic.builder import base_var, conj, disj, exists, forall, implies, neg, num, rel
from repro.logic.formulas import (
    BaseEquality,
    Comparison,
    ComparisonOperator,
    Exists,
    FOAnd,
    FONot,
    FOOr,
    Forall,
    Query,
    RelationAtom,
)
from repro.logic.fragments import ArithmeticLevel, classify_query
from repro.logic.terms import (
    NumericConstant,
    Sort,
    TermOperation,
    Variable,
    term_variables,
    uses_multiplication,
)
from repro.logic.typecheck import TypeCheckError, check_query, free_variables
from repro.relational.schema import DatabaseSchema, RelationSchema


@pytest.fixture
def schema() -> DatabaseSchema:
    return DatabaseSchema.of(
        RelationSchema.of("R", name="base", value="num"),
        RelationSchema.of("S", value="num", other="num"),
    )


class TestTerms:
    def test_operator_overloading_builds_terms(self):
        x, y = num_var_pair()
        term = (x + 2.0) * y - 1.0
        assert isinstance(term, TermOperation)
        assert term.sort is Sort.NUM
        assert term_variables(term) == frozenset({x, y})

    def test_arithmetic_rejects_base_terms(self):
        person = base_var("p")
        with pytest.raises(TypeError):
            _ = person + 1.0

    def test_comparisons_build_formulae(self):
        x, y = num_var_pair()
        formula = x < y
        assert isinstance(formula, Comparison)
        assert formula.op is ComparisonOperator.LT
        assert isinstance(x.equals(y), Comparison)
        assert isinstance(base_var("a").equals(base_var("b")), BaseEquality)

    def test_uses_multiplication_detects_products_of_variables(self):
        x, y = num_var_pair()
        assert uses_multiplication(x * y)
        assert not uses_multiplication(2.0 * x)
        assert not uses_multiplication(x + y)
        assert uses_multiplication(x / y)
        assert not uses_multiplication(x / 2.0)

    def test_numeric_coercion(self):
        x, _ = num_var_pair()
        formula = x < 3
        assert isinstance(formula.right, NumericConstant)
        with pytest.raises(TypeError):
            _ = x + "three"


def num_var_pair():
    from repro.logic.builder import num_var

    return num_var("x"), num_var("y")


class TestBuilder:
    def test_rel_coerces_python_values(self):
        atom = rel("R", "alice", 3.5)
        assert isinstance(atom, RelationAtom)
        assert atom.terms[0].sort is Sort.BASE
        assert atom.terms[1].sort is Sort.NUM

    def test_connective_helpers(self):
        x, y = num_var_pair()
        formula = conj(x < y, disj(x > 0, neg(y > 0)))
        assert isinstance(formula, FOAnd)
        assert isinstance(implies(x < y, y < x), FOOr)

    def test_quantifier_helpers_nest_in_order(self):
        x, y = num_var_pair()
        formula = exists([x, y], x < y)
        assert isinstance(formula, Exists)
        assert formula.variable.name == "x"
        assert isinstance(formula.body, Exists)
        assert isinstance(forall(x, x > 0), Forall)
        assert exists([], x < y) == (x < y)

    def test_conjunction_flattening(self):
        x, y = num_var_pair()
        formula = conj(conj(x < y, y < x), x > 0)
        assert isinstance(formula, FOAnd)
        assert len(formula.conjuncts) == 3


class TestQueries:
    def test_query_heads(self):
        x, _ = num_var_pair()
        query = Query(head=(x,), body=rel("S", x, x))
        assert query.arity == 1
        assert not query.is_boolean
        assert query.head_sorts() == (Sort.NUM,)
        with pytest.raises(ValueError):
            Query(head=(x, x), body=rel("S", x, x))

    def test_free_variables(self):
        x, y = num_var_pair()
        person = base_var("p")
        body = exists(y, rel("R", person, y) & (y < x))
        assert free_variables(body) == frozenset({person, x})

    def test_check_query_accepts_well_formed(self, schema):
        x, y = num_var_pair()
        person = base_var("p")
        query = Query(head=(person,), body=exists([x, y], rel("R", person, x)
                                                  & rel("S", x, y) & (y > x * x)))
        check_query(query, schema)

    def test_check_query_rejects_bad_arity(self, schema):
        person = base_var("p")
        query = Query(head=(), body=exists(person, rel("R", person)))
        with pytest.raises(TypeCheckError):
            check_query(query, schema)

    def test_check_query_rejects_sort_mismatch(self, schema):
        x, y = num_var_pair()
        query = Query(head=(), body=exists([x, y], rel("R", x, y)))
        with pytest.raises(TypeCheckError):
            check_query(query, schema)

    def test_check_query_rejects_unbound_head(self, schema):
        x, y = num_var_pair()
        person = base_var("p")
        query = Query(head=(person,), body=exists([x, y], rel("S", x, y)))
        with pytest.raises(TypeCheckError):
            check_query(query, schema)

    def test_check_query_rejects_inconsistent_variable_sorts(self, schema):
        value = num_var_pair()[0]
        clash = Variable(name="x", variable_sort=Sort.BASE)
        query = Query(head=(), body=exists([value], rel("S", value, value))
                      | exists([clash], rel("R", clash, 1.0) & BaseEquality(clash, clash)))
        with pytest.raises(TypeCheckError):
            check_query(query, schema)


class TestFragments:
    def test_cq_with_order_only(self):
        x, y = num_var_pair()
        query = Query(head=(), body=exists([x, y], rel("S", x, y) & (x < y)))
        fragment = classify_query(query)
        assert fragment.conjunctive
        assert fragment.arithmetic is ArithmeticLevel.ORDER_ONLY
        assert fragment.name == "CQ(<)"
        assert fragment.has_fpras

    def test_cq_with_linear_arithmetic(self):
        x, y = num_var_pair()
        query = Query(head=(), body=exists([x, y], rel("S", x, y) & (x + 2.0 * y < 3)))
        fragment = classify_query(query)
        assert fragment.name == "CQ(+,<)"
        assert fragment.has_fpras

    def test_polynomial_arithmetic(self):
        x, y = num_var_pair()
        query = Query(head=(), body=exists([x, y], rel("S", x, y) & (x * y < 3)))
        fragment = classify_query(query)
        assert fragment.arithmetic is ArithmeticLevel.POLYNOMIAL
        assert not fragment.has_fpras

    def test_fo_fragment(self):
        x, y = num_var_pair()
        query = Query(head=(), body=forall([x], exists(y, rel("S", x, y)) | (x < 0)))
        fragment = classify_query(query)
        assert not fragment.conjunctive
        assert fragment.name == "FO(<)"
        assert not fragment.has_fpras

    def test_negation_breaks_conjunctivity(self):
        x, y = num_var_pair()
        query = Query(head=(), body=exists([x, y], rel("S", x, y) & neg(x < y)))
        assert not classify_query(query).conjunctive
