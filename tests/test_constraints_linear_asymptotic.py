"""Tests for linear-atom handling, homogenisation, cones, and asymptotic evaluation."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.asymptotic import (
    asymptotic_truth,
    atom_asymptotic_truth,
    direction_assignment,
)
from repro.constraints.atoms import Comparison, Constraint
from repro.constraints.formula import And, Atom, Not, Or
from repro.constraints.linear import (
    LinearAtom,
    NonLinearConstraintError,
    disjunct_to_cone,
    formula_to_cones,
    linearise,
)
from repro.constraints.polynomials import Polynomial


def x() -> Polynomial:
    return Polynomial.variable("x")


def y() -> Polynomial:
    return Polynomial.variable("y")


class TestLinearAtom:
    def test_extraction(self):
        atom = linearise(Constraint.compare(2.0 * x() - y(), Comparison.LE, 3.0))
        assert atom.coefficients == {"x": 2.0, "y": -1.0}
        assert atom.constant == -3.0
        assert atom.op is Comparison.LE

    def test_rejects_nonlinear(self):
        with pytest.raises(NonLinearConstraintError):
            linearise(Constraint.compare(x() * y(), Comparison.LT, 0.0))

    def test_homogenise_drops_constant(self):
        atom = linearise(Constraint.compare(x(), Comparison.LT, 5.0)).homogenise()
        assert atom.constant == 0.0
        assert not atom.is_trivial()

    def test_normal_vector_orientation(self):
        atom = linearise(Constraint.compare(x(), Comparison.GT, y()))
        normal = atom.normal_vector(["x", "y"])
        assert normal == pytest.approx([-1.0, 1.0])
        assert atom.oriented_op() is Comparison.LT


class TestConeConversion:
    def test_simple_conjunction(self):
        disjunct = [Constraint.compare(x(), Comparison.LT, 0.0),
                    Constraint.compare(y(), Comparison.LE, 1.0)]
        cone = disjunct_to_cone(disjunct, ["x", "y"])
        assert cone is not None
        assert cone.strict.shape == (1, 2)
        assert cone.weak.shape == (1, 2)

    def test_equality_disjunct_is_dropped(self):
        disjunct = [Constraint.compare(x(), Comparison.EQ, y())]
        assert disjunct_to_cone(disjunct, ["x", "y"]) is None

    def test_ne_atoms_are_measure_preserving_and_dropped(self):
        disjunct = [Constraint.compare(x(), Comparison.NE, y()),
                    Constraint.compare(x(), Comparison.LT, 0.0)]
        cone = disjunct_to_cone(disjunct, ["x", "y"])
        assert cone is not None
        assert cone.num_constraints == 1

    def test_trivially_false_atom_kills_disjunct(self):
        disjunct = [Constraint.compare(Polynomial.constant(5.0), Comparison.LT, 0.0),
                    Constraint.compare(x(), Comparison.LT, 0.0)]
        assert disjunct_to_cone(disjunct, ["x", "y"]) is None

    def test_trivially_true_atom_is_ignored(self):
        disjunct = [Constraint.compare(Polynomial.constant(-5.0), Comparison.LT, 0.0),
                    Constraint.compare(x(), Comparison.LT, 0.0)]
        cone = disjunct_to_cone(disjunct, ["x", "y"])
        assert cone is not None
        assert cone.num_constraints == 1

    def test_formula_to_cones(self):
        formula = Or((
            And((Atom(Constraint.compare(x(), Comparison.LT, 0.0)),
                 Atom(Constraint.compare(y(), Comparison.LT, 0.0)))),
            Atom(Constraint.compare(x(), Comparison.GT, 1.0)),
        ))
        cones = formula_to_cones(formula, ["x", "y"])
        assert len(cones) == 2

    def test_formula_to_cones_rejects_nonlinear(self):
        formula = Atom(Constraint.compare(x() * x(), Comparison.LT, 1.0))
        with pytest.raises(NonLinearConstraintError):
            formula_to_cones(formula, ["x"])

    def test_formula_to_cones_needs_variables(self):
        formula = Atom(Constraint.compare(x(), Comparison.LT, 0.0))
        with pytest.raises(ValueError):
            formula_to_cones(formula, [])


class TestAsymptotic:
    def test_constant_shift_is_irrelevant(self):
        # x < 5 and x < -5 have the same asymptotic behaviour along any direction.
        low = Constraint.compare(x(), Comparison.LT, -5.0)
        high = Constraint.compare(x(), Comparison.LT, 5.0)
        for component in (0.3, -0.3):
            direction = {"x": component}
            assert atom_asymptotic_truth(low, direction) \
                == atom_asymptotic_truth(high, direction) == (component < 0)

    def test_leading_term_dominates(self):
        # x^2 - 1000x > 0 is eventually true along any direction with x != 0.
        constraint = Constraint.compare(x() * x(), Comparison.GT, 1000.0 * x())
        assert atom_asymptotic_truth(constraint, {"x": 0.001})
        assert atom_asymptotic_truth(constraint, {"x": -0.001})

    def test_equality_is_eventually_false_unless_identically_zero(self):
        nontrivial = Constraint.compare(x(), Comparison.EQ, y())
        assert not atom_asymptotic_truth(nontrivial, {"x": 1.0, "y": 2.0})
        identically_zero = Constraint.compare(x() - x(), Comparison.EQ, 0.0)
        assert atom_asymptotic_truth(identically_zero, {"x": 1.0, "y": 2.0})

    def test_orthogonal_direction_uses_constant_term(self):
        # Along a direction with x = 0, the atom x + 1 > 0 is always true and
        # x - 1 > 0 always false.
        assert atom_asymptotic_truth(Constraint.compare(x() + 1.0, Comparison.GT, 0.0),
                                     {"x": 0.0})
        assert not atom_asymptotic_truth(Constraint.compare(x() - 1.0, Comparison.GT, 0.0),
                                         {"x": 0.0})

    def test_formula_connectives(self):
        formula = And((Atom(Constraint.compare(x(), Comparison.GT, 0.0)),
                       Not(Atom(Constraint.compare(y(), Comparison.GT, 0.0)))))
        assert asymptotic_truth(formula, {"x": 1.0, "y": -1.0})
        assert not asymptotic_truth(formula, {"x": 1.0, "y": 1.0})

    def test_direction_assignment(self):
        assignment = direction_assignment(["a", "b"], np.array([0.6, -0.8]))
        assert assignment == {"a": 0.6, "b": -0.8}
        with pytest.raises(ValueError):
            direction_assignment(["a"], np.array([1.0, 2.0]))

    @given(st.floats(min_value=-1, max_value=1, allow_nan=False).filter(lambda v: abs(v) > 1e-3),
           st.floats(min_value=-1, max_value=1, allow_nan=False).filter(lambda v: abs(v) > 1e-3))
    @settings(max_examples=80, deadline=None)
    def test_asymptotic_agrees_with_evaluation_far_out(self, dx, dy):
        formula = Or((
            And((Atom(Constraint.compare(x() + 2.0 * y(), Comparison.LT, 7.0)),
                 Atom(Constraint.compare(x(), Comparison.GT, -3.0)))),
            Atom(Constraint.compare(x() * y(), Comparison.GT, 10.0)),
        ))
        direction = {"x": dx, "y": dy}
        # Skip directions that lie on the zero set of some atom's leading form.
        if abs(dx + 2 * dy) < 1e-2 or abs(dx) < 1e-2 or abs(dx * dy) < 1e-3:
            return
        limit = asymptotic_truth(formula, direction)
        scale = 1e7
        far_point = {"x": dx * scale, "y": dy * scale}
        assert limit == formula.evaluate(far_point)
