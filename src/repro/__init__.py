"""repro: queries with arithmetic on incomplete databases.

A from-scratch reproduction of Console, Hofer and Libkin, *Queries with
Arithmetic on Incomplete Databases* (PODS 2020).  The library provides:

* a typed relational model with marked nulls (:mod:`repro.relational`);
* the two-sorted query language FO(+,·,<) (:mod:`repro.logic`);
* the measure of certainty ``mu(q, D, t)`` with exact, multiplicative
  (FPRAS) and additive (AFPRAS) computation backends
  (:mod:`repro.certainty`);
* an end-to-end SQL-style engine that annotates query answers with their
  confidence (:mod:`repro.engine`);
* synthetic data generators reproducing the paper's workloads
  (:mod:`repro.datagen`) and executable versions of its hardness reductions
  (:mod:`repro.hardness`).

Quickstart::

    from repro import certainty, Database, DatabaseSchema, RelationSchema, NumNull
    from repro.logic import num_var, exists, rel, Query

    schema = DatabaseSchema.of(RelationSchema.of("R", x="num", y="num"))
    db = Database(schema)
    db.add("R", (NumNull("a"), NumNull("b")))

    x, y = num_var("x"), num_var("y")
    q = Query(head=(), body=exists([x, y], rel("R", x, y) & (x > y)))
    print(certainty(q, db).value)   # ~0.5
"""

from repro.certainty import CertaintyResult, certainty, certainty_from_translation
from repro.constraints.translate import TranslationResult, translate
from repro.logic.formulas import Query
from repro.relational import (
    Attribute,
    AttributeType,
    BaseNull,
    Database,
    DatabaseSchema,
    NumNull,
    Relation,
    RelationSchema,
    Valuation,
)

#: Single source of truth for the package version: the build backend reads
#: this attribute (``[tool.setuptools.dynamic]`` in pyproject.toml), and
#: :func:`package_version` serves it at runtime.
__version__ = "0.7.0"


def package_version() -> str:
    """The installed package's version (falls back to :data:`__version__`).

    Prefers :mod:`importlib.metadata` so an installed wheel reports the
    version it was built with; source checkouts (no distribution metadata)
    fall back to the in-tree attribute, which is the same value.
    """
    try:
        from importlib.metadata import version
        return version("repro")
    except Exception:
        return __version__


__all__ = [
    "Attribute",
    "AttributeType",
    "BaseNull",
    "CertaintyResult",
    "Database",
    "DatabaseSchema",
    "NumNull",
    "Query",
    "Relation",
    "RelationSchema",
    "TranslationResult",
    "Valuation",
    "__version__",
    "certainty",
    "certainty_from_translation",
    "package_version",
    "translate",
]
