"""Run a whole cluster inside the current process, on daemon threads.

The cluster analogue of :class:`~repro.server.embedded.EmbeddedServer`,
for tests and benchmarks that need "a real coordinator fronting real
workers on real sockets" without shelling out:

* **in-process workers** (``services=[...]``): each
  :class:`~repro.service.AnnotationService` gets its own
  :class:`EmbeddedServer` (TCP-only) on its own event-loop thread -- a
  faithful stand-in for a worker process, reachable only through the
  socket, but cheap enough that a differential test can run a 3-worker
  fleet per case.  Tests can stop one mid-run to exercise failover and
  hand the coordinator a fresh one to exercise join-replay.
* **subprocess workers** (``worker_argv=..., workers=N``): real
  ``repro server`` child processes via :class:`LocalWorker`, supervised
  and respawnable -- what the smoke/soak harnesses and the scaling bench
  drive.

Either way the coordinator itself is served by a front
:class:`NetworkServer` on a background thread, so clients connect to
``host:port`` exactly as they would to ``repro cluster start``.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional, Sequence

from repro.cluster.coordinator import CoordinatorApp, defaults_from_options
from repro.cluster.workers import LocalWorker, WorkerEndpoint
from repro.server.embedded import EmbeddedServer
from repro.server.netserver import NetworkServer


class EmbeddedCluster:
    """Coordinator + N workers, all inside this process."""

    def __init__(self, services: Sequence = (), *,
                 worker_argv: Optional[Sequence[str]] = None,
                 workers: int = 0,
                 defaults: Optional[dict] = None,
                 host: str = "127.0.0.1", http: bool = True,
                 max_pending: int = 256,
                 health_interval: float = 0.25,
                 supervise: bool = True,
                 drain_timeout: float = 30.0,
                 observe: bool = True) -> None:
        if services and worker_argv:
            raise ValueError("pass services OR worker_argv, not both")
        if not services and not worker_argv:
            raise ValueError("pass in-process services or a worker argv")
        self._services = list(services)
        self._worker_argv = list(worker_argv) if worker_argv else None
        self._worker_count = workers
        if defaults is None and self._services:
            defaults = defaults_from_options(self._services[0].options)
        self._defaults = defaults or {}
        self._host = host
        self._http = http
        self._max_pending = max_pending
        self._health_interval = health_interval
        self._supervise = supervise
        self._drain_timeout = drain_timeout
        self._observe = observe

        self.worker_servers: dict[str, EmbeddedServer] = {}
        self._locals: list[LocalWorker] = []
        self._front: Optional[NetworkServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "EmbeddedCluster":
        assert self._thread is None, "cluster already started"
        endpoints: list[WorkerEndpoint] = []
        if self._services:
            for index, service in enumerate(self._services):
                worker_id = f"w{index}"
                server = EmbeddedServer(service, host=self._host, http=False,
                                        observe=self._observe).start()
                self.worker_servers[worker_id] = server
                endpoints.append(WorkerEndpoint(worker_id, server.host,
                                                server.port))
        else:
            for index in range(self._worker_count):
                worker = LocalWorker(f"w{index}", list(self._worker_argv))
                worker.spawn()
                self._locals.append(worker)
        self.coordinator = CoordinatorApp(
            endpoints, locals_=self._locals,
            defaults=self._defaults,
            max_pending=self._max_pending,
            health_interval=self._health_interval,
            supervise=self._supervise,
            worker_template=self._worker_argv,
            observe=self._observe)
        self._front = NetworkServer(
            app=self.coordinator, host=self._host, port=0,
            http_port=0 if self._http else None,
            drain_timeout=self._drain_timeout)
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-embedded-cluster")
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self.stop_workers()
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            # NetworkServer.start() awaits the coordinator's own bring-up
            # (health-checking every worker) before opening the listeners.
            loop.run_until_complete(self._front.start())
        except BaseException as error:
            self._startup_error = error
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    def stop(self, timeout: float = 120.0) -> bool:
        """Drain the front door (which stops local workers), then the
        in-process worker servers."""
        assert self._loop is not None and self._thread is not None
        future = asyncio.run_coroutine_threadsafe(self._front.drain(),
                                                  self._loop)
        clean = future.result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        self.stop_workers()
        return clean

    def stop_workers(self) -> None:
        for server in self.worker_servers.values():
            try:
                server.stop()
            except Exception:  # already stopped or never came up
                pass
        self.worker_servers.clear()
        for worker in self._locals:
            worker.kill()

    def __enter__(self) -> "EmbeddedCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- addresses and test helpers ------------------------------------------

    @property
    def host(self) -> str:
        return self._front.host

    @property
    def port(self) -> int:
        return self._front.port

    @property
    def http_port(self) -> Optional[int]:
        return self._front.http_port

    def submit(self, coroutine, timeout: float = 60.0):
        """Run a coroutine on the coordinator's event loop (tests drive
        admin operations and introspection through this)."""
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        return future.result(timeout)

    def route_of(self, sql: str) -> Optional[str]:
        """The worker id currently owning a query's family."""
        async def _probe():
            return self.coordinator.route_of(sql)
        return self.submit(_probe())

    def stop_worker(self, worker_id: str) -> None:
        """Take one in-process worker down (drain its embedded server);
        the coordinator notices on the next request or health tick."""
        server = self.worker_servers.pop(worker_id)
        server.stop()

    def add_worker(self, worker_id: str, service) -> None:
        """Bring up a fresh in-process worker (a restart: the service must
        be rebuilt from seed data, exactly like a real process would) and
        have the coordinator replay it the mutation log before it joins."""
        server = EmbeddedServer(service, host=self._host, http=False,
                                observe=self._observe).start()
        self.worker_servers[worker_id] = server
        self.submit(self.coordinator.add_worker(
            WorkerEndpoint(worker_id, server.host, server.port)))
