"""The cluster coordinator: one front door over N ``repro server`` workers.

:class:`CoordinatorApp` implements the same transport-facing interface as
:class:`~repro.server.app.ServerApp` (``query_events`` / ``mutate`` /
``health`` / ``stats`` / ``metrics_text`` / drain), so the PR 5 network
front end serves a whole fleet exactly as it served one process.  What
changes is what happens between parse and answer:

* **cache-affine routing** -- each query is keyed by the blake2b digest
  of its normalised SQL (the *query family*) and consistently hashed onto
  the worker fleet (:mod:`repro.cluster.hashring`), so one family always
  lands on the worker whose parse/plan/certainty caches are already warm
  for it, and a worker joining or leaving only moves its own arc;
* **cluster-wide single-flight** -- concurrent identical requests anywhere
  on the front door coalesce onto one forwarded flight (the worker's own
  per-process coalescing still applies underneath for requests that reach
  it by other paths).  Flight keys include the mutation barrier version,
  so a query admitted after a commit never coalesces onto a pre-commit
  flight;
* **mutation broadcast with a monotone barrier** -- writes are serialised
  behind one gate and broadcast to every routable worker; the coordinator
  acknowledges only after every live worker has committed, records the
  statement in an ordered log, and bumps ``barrier_version``.  Reads
  admitted after the ack therefore observe the write on whichever worker
  they route to (readers in flight keep their pinned MVCC snapshots);
* **health + failover** -- workers are pinged on an interval; a worker
  that drops a connection, times out, or answers ``draining``/
  ``overloaded`` fails the request over to the next worker on the ring
  (queries are pure and seeded, so a replay is safe and bit-identical).
  Locally spawned workers are respawned by the supervisor and **replayed**
  the mutation log before rejoining the ring, so a restarted worker
  re-converges on the barrier version instead of serving stale data;
* **fleet aggregation** -- ``stats()`` fans out to every worker and
  returns per-worker rows plus fleet-wide sums (shaped so ``repro top``
  and ``repro client --probe stats`` keep working unchanged);
  ``metrics_text()`` re-exports every worker's Prometheus samples with a
  ``worker="..."`` label plus the coordinator's own families;
* **rolling restart** -- the ``cluster_drain`` op drains local workers one
  at a time (SIGTERM -> exit 0 -> respawn -> replay -> rejoin), keeping
  the fleet serving throughout via the failover path.

The coordinator holds no database and runs no compute: every byte of an
answer is produced by a worker's :class:`~repro.service.AnnotationService`
and forwarded verbatim, which is what makes cluster answers bit-identical
to single-process ones (the differential test asserts exactly this).
"""

from __future__ import annotations

import asyncio
import os
import time
from typing import Any, AsyncIterator, Mapping, Optional, Sequence

from repro import package_version
from repro.cluster.hashring import DEFAULT_REPLICAS, HashRing, family_digest
from repro.cluster.workers import (
    LocalWorker,
    WorkerEndpoint,
    WorkerSpawnError,
)
from repro.obs.alerts import AlertEvaluator, cluster_slos, disabled_report
from repro.obs.logsetup import get_logger
from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry, counters_family
from repro.obs.profiler import (
    DEFAULT_INTERVAL,
    merge_collapsed,
    profile_payload,
    render_collapsed,
)
from repro.obs.propagate import (
    TRACEPARENT_KEY,
    extract_context,
    format_traceparent,
    new_context,
)
from repro.obs.trace import Trace, TraceStore, spans_to_chrome
from repro.obs.tsdb import TimeSeriesStore
from repro.server.app import Flight
from repro.server.protocol import (
    MAX_LINE_BYTES,
    OverloadError,
    ProtocolError,
    dump_line,
    error_event,
    load_line,
    parse_mutation_request,
    parse_query_request,
    request_key,
)
from repro.service.service import normalise_sql

logger = get_logger("cluster")

#: Terminal event types forwarded from workers.
_TERMINAL = ("result", "error")

#: Worker error codes that trigger failover instead of a passthrough: the
#: request never started computing, so replaying it elsewhere is free.
_RETRIABLE_CODES = ("draining", "overloaded")

#: Idle connections kept pooled per worker.
_POOL_SIZE = 4

_PING_TIMEOUT = 5.0
_STATS_TIMEOUT = 10.0
_MUTATE_TIMEOUT = 120.0


class WorkerUnavailable(Exception):
    """Transport-level failure talking to one worker."""


def defaults_from_options(options=None) -> dict[str, Any]:
    """Request defaults derived from a :class:`ServiceOptions` (the same
    resolution :meth:`ServerApp.request_defaults` performs).  With no
    options, the library defaults apply -- a coordinator must never start
    with an empty defaults mapping, or option resolution fills ``method``
    et al. with ``None`` and every request is rejected as malformed."""
    if options is None:
        from repro.service import ServiceOptions
        options = ServiceOptions()
    seed = options.seed
    return {
        "epsilon": options.epsilon,
        "delta": options.delta,
        "method": options.method,
        "limit": None,
        "seed": seed if isinstance(seed, int) else None,
        "adaptive": options.adaptive,
        "planner": options.planner,
    }


class WorkerLink:
    """Coordinator-side handle of one worker: address, state, connections.

    States: ``starting`` (spawned, not yet health-checked), ``healthy``
    (routable), ``draining`` (rolling restart in progress, unroutable),
    ``restarting`` (respawn under way), ``replaying`` (mutation log catch-
    up), ``dead`` (unreachable; stays dead unless a supervisor or an
    operator brings it back).
    """

    def __init__(self, worker_id: str, host: str, port: int, *,
                 local: Optional[LocalWorker] = None) -> None:
        self.id = worker_id
        self.host = host
        self.port = port
        self.local = local
        self.state = "starting"
        self.data_version = 0
        self.last_seen = 0.0
        self._pool: list[tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        self._next_id = 0

    @property
    def addr(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def routable(self) -> bool:
        return self.state == "healthy"

    @property
    def pid(self) -> Optional[int]:
        return self.local.pid if self.local is not None else None

    def describe(self) -> dict:
        return {
            "id": self.id,
            "addr": self.addr,
            "state": self.state,
            "local": self.local is not None,
            "pid": self.pid,
            "data_version": self.data_version,
        }

    # -- connections ---------------------------------------------------------

    async def _acquire(self):
        if self._pool:
            return self._pool.pop()
        try:
            return await asyncio.open_connection(self.host, self.port,
                                                 limit=MAX_LINE_BYTES)
        except OSError as error:
            raise WorkerUnavailable(f"{self.id}: cannot connect: {error}")

    def _release(self, connection) -> None:
        if len(self._pool) < _POOL_SIZE:
            self._pool.append(connection)
        else:
            connection[1].close()

    def discard_pool(self) -> None:
        """Close every idle connection (the worker went away or moved)."""
        while self._pool:
            _, writer = self._pool.pop()
            writer.close()

    def _stamp(self, message: Mapping) -> dict:
        self._next_id += 1
        return {**message, "id": self._next_id}

    async def roundtrip(self, message: Mapping,
                        timeout: float = _PING_TIMEOUT) -> dict:
        """One request, one response event (ops with a single reply)."""
        stamped = self._stamp(message)
        connection = await self._acquire()
        reader, writer = connection
        try:
            writer.write(dump_line(stamped))
            await asyncio.wait_for(writer.drain(), timeout)
            line = await asyncio.wait_for(reader.readline(), timeout)
        except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError) as error:
            writer.close()
            raise WorkerUnavailable(f"{self.id}: {error!r}")
        if not line:
            writer.close()
            raise WorkerUnavailable(f"{self.id}: connection closed")
        try:
            event = load_line(line)
        except ProtocolError as error:
            writer.close()
            raise WorkerUnavailable(f"{self.id}: garbled response: {error}")
        self._release(connection)
        return event

    async def events(self, message: Mapping) -> AsyncIterator[dict]:
        """Stream a forwarded request's events until its terminal one."""
        stamped = self._stamp(message)
        connection = await self._acquire()
        reader, writer = connection
        try:
            writer.write(dump_line(stamped))
            await writer.drain()
            while True:
                line = await reader.readline()
                if not line:
                    raise WorkerUnavailable(
                        f"{self.id}: connection closed mid-request")
                event = load_line(line)
                yield event
                if event.get("type") in _TERMINAL:
                    break
        except (OSError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError) as error:
            writer.close()
            raise WorkerUnavailable(f"{self.id}: {error!r}")
        except ProtocolError as error:
            writer.close()
            raise WorkerUnavailable(f"{self.id}: garbled event: {error}")
        except BaseException:
            # Generator abandoned (or cancelled) mid-stream: the connection
            # still carries unread frames, so it cannot be pooled.
            writer.close()
            raise
        else:
            self._release(connection)


class CoordinatorApp:
    """Transport-independent cluster serving over a fleet of workers."""

    def __init__(self, endpoints: Sequence[WorkerEndpoint] = (), *,
                 locals_: Sequence[LocalWorker] = (),
                 defaults: Optional[Mapping[str, Any]] = None,
                 replicas: int = DEFAULT_REPLICAS,
                 max_pending: int = 256,
                 health_interval: float = 1.0,
                 supervise: bool = True,
                 worker_template: Optional[Sequence[str]] = None,
                 observe: bool = True) -> None:
        self._defaults = dict(defaults) if defaults else defaults_from_options()
        self._workers: dict[str, WorkerLink] = {}
        self._ring = HashRing(replicas=replicas)
        for local in locals_:
            link = WorkerLink(local.worker_id, local.host, local.port,
                              local=local)
            self._workers[link.id] = link
        for endpoint in endpoints:
            link = WorkerLink(endpoint.worker_id, endpoint.host, endpoint.port)
            self._workers[link.id] = link
        self._max_pending = max_pending
        self._health_interval = health_interval
        self._supervise = supervise
        #: argv template for scale-up spawns (None disables ``cluster_scale``
        #: growth -- remote-only clusters have nothing to spawn from).
        self._worker_template = (list(worker_template)
                                 if worker_template else None)
        self._spawned = sum(1 for w in self._workers.values()
                            if w.local is not None)

        self._flights: dict[tuple, Flight] = {}
        #: Strong references to flight-leader tasks.  The event loop keeps
        #: only weak task references, and a leader suspended on a worker
        #: read is an unreachable cycle (task <-> reader waiter) -- without
        #: this set the GC can destroy it mid-flight.
        self._flight_tasks: set[asyncio.Future] = set()
        self._mutation_gate = asyncio.Lock()
        self._admin_gate = asyncio.Lock()
        self._log: list[str] = []
        self._barrier_version = 0
        self._draining = False
        self._closing = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._health_task: Optional[asyncio.Task] = None
        self._respawn_tasks: dict[str, asyncio.Task] = {}
        self._started = time.monotonic()

        # Lifetime counters (event-loop only).
        self._requests = 0
        self._launched = 0
        self._coalesced = 0
        self._overloads = 0
        self._query_errors = 0
        self._internal_errors = 0
        self._mutations = 0
        self._mutation_errors = 0
        self._mutations_inflight = 0
        self._failovers = 0
        self._worker_deaths = 0
        self._respawns = 0
        self._replayed_statements = 0
        self._routed: dict[str, int] = {w: 0 for w in self._workers}
        #: SLO-relevant front-door errors; the kinds mirror what
        #: :func:`repro.obs.alerts.cluster_slos` counts as bad events.
        self._errors_by_kind = {"internal": 0, "unavailable": 0}

        # Cluster-level observability (zero-cost when off: no registry, no
        # snapshot thread, no tracing -- the forwarded messages are byte-
        # identical to the pre-observability wire shape).
        self._observe = observe
        if observe:
            self._metrics: Optional[MetricsRegistry] = MetricsRegistry()
            self._metrics.register_collector(self._metric_families)
            self._request_seconds = self._metrics.histogram(
                "repro_cluster_request_seconds",
                "Front-door query latency (admission to terminal event)",
                buckets=LATENCY_BUCKETS)
            self._tsdb: Optional[TimeSeriesStore] = \
                TimeSeriesStore(self._metrics)
            self._alert_evaluator: Optional[AlertEvaluator] = \
                AlertEvaluator(cluster_slos())
            self._trace_store: Optional[TraceStore] = TraceStore()
        else:
            self._metrics = None
            self._request_seconds = None
            self._tsdb = None
            self._alert_evaluator = None
            self._trace_store = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self, deadline: float = 30.0) -> None:
        """Health-check every worker into the ring; start the supervisor."""
        await asyncio.gather(*(self._await_healthy(link, deadline)
                               for link in self._workers.values()))
        healthy = [w.id for w in self._workers.values() if w.routable]
        if not healthy:
            raise WorkerSpawnError("no worker became healthy")
        logger.info("cluster up", extra={
            "workers": len(self._workers), "healthy": len(healthy)})
        self._health_task = asyncio.ensure_future(self._health_loop())
        if self._tsdb is not None:
            self._tsdb.start()

    async def _probe(self, link: WorkerLink, deadline: float) -> bool:
        """Poll one worker's health op until it answers or time runs out."""
        end = time.monotonic() + deadline
        while time.monotonic() < end:
            try:
                event = await link.roundtrip({"op": "health"})
            except WorkerUnavailable:
                await asyncio.sleep(0.1)
                continue
            if event.get("status") == "ok":
                return True
            await asyncio.sleep(0.1)
        return False

    async def _await_healthy(self, link: WorkerLink, deadline: float) -> None:
        if await self._probe(link, deadline):
            link.state = "healthy"
            link.last_seen = time.monotonic()
            self._ring.add(link.id)
            return
        link.state = "dead"
        logger.warning("worker never became healthy",
                       extra={"worker": link.id})

    async def _health_loop(self) -> None:
        while not self._closing:
            await asyncio.sleep(self._health_interval)
            links = [w for w in self._workers.values()
                     if w.state in ("healthy", "starting")]
            await asyncio.gather(*(self._check(link) for link in links),
                                 return_exceptions=True)

    async def _check(self, link: WorkerLink) -> None:
        try:
            event = await link.roundtrip({"op": "health"})
        except WorkerUnavailable:
            self._mark_unavailable(link)
            return
        link.last_seen = time.monotonic()
        if link.state == "starting" and event.get("status") == "ok":
            link.state = "healthy"
            self._ring.add(link.id)

    def _mark_unavailable(self, link: WorkerLink) -> None:
        """Take a worker out of rotation; respawn it if it is ours."""
        if link.state in ("dead", "restarting", "replaying", "draining"):
            return
        link.state = "dead"
        link.discard_pool()
        self._worker_deaths += 1
        logger.warning("worker unavailable", extra={"worker": link.id})
        if self._supervise and link.local is not None and not self._closing:
            self._schedule_respawn(link)

    def _schedule_respawn(self, link: WorkerLink) -> None:
        existing = self._respawn_tasks.get(link.id)
        if existing is not None and not existing.done():
            return
        self._respawn_tasks[link.id] = asyncio.ensure_future(
            self._respawn(link))

    async def _respawn(self, link: WorkerLink) -> None:
        link.state = "restarting"
        loop = asyncio.get_running_loop()
        for attempt in range(3):
            try:
                port = await loop.run_in_executor(None, link.local.respawn)
            except WorkerSpawnError:
                await asyncio.sleep(0.5 * (attempt + 1))
                continue
            link.port = port
            link.data_version = 0
            link.discard_pool()
            try:
                await self._rejoin(link)
            except WorkerUnavailable:
                continue
            self._respawns += 1
            logger.info("worker respawned", extra={
                "worker": link.id, "port": port,
                "replayed": self._barrier_version})
            return
        link.state = "dead"
        logger.error("worker respawn failed for good",
                     extra={"worker": link.id})

    async def _rejoin(self, link: WorkerLink) -> None:
        """Replay the mutation log, then put the worker back on the ring.

        Holds the mutation gate so no commit interleaves with the replay:
        the log the worker sees is exactly the ordered history every other
        worker committed.
        """
        async with self._mutation_gate:
            link.state = "replaying"
            for statement in self._log[link.data_version:]:
                event = await link.roundtrip({"op": "mutate",
                                              "sql": statement},
                                             timeout=_MUTATE_TIMEOUT)
                if event.get("type") != "mutation":
                    link.state = "dead"
                    raise WorkerUnavailable(
                        f"{link.id}: replay rejected: {event!r}")
                link.data_version = event["data_version"]
                self._replayed_statements += 1
            link.state = "healthy"
            link.last_seen = time.monotonic()
            self._ring.add(link.id)

    async def add_worker(self, endpoint: WorkerEndpoint, *,
                         local: Optional[LocalWorker] = None) -> WorkerLink:
        """Register a (possibly freshly spawned) worker and bring it up.

        The worker joins in state ``joining`` -- unroutable and excluded
        from mutation broadcasts -- until it has replayed the full
        mutation log, so a stale joiner can never serve a stale read or
        skip a commit.
        """
        link = WorkerLink(endpoint.worker_id, endpoint.host, endpoint.port,
                          local=local)
        link.state = "joining"
        self._workers[link.id] = link
        self._routed.setdefault(link.id, 0)
        if not await self._probe(link, deadline=30.0):
            link.state = "dead"
            raise WorkerUnavailable(f"{link.id} never became healthy")
        await self._rejoin(link)
        return link

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        self._draining = True

    async def wait_idle(self, timeout: Optional[float] = None) -> bool:
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def close(self) -> None:
        """Stop the supervisor and the fleet (local workers drain first)."""
        self._closing = True
        if self._tsdb is not None:
            self._tsdb.stop()
        if self._health_task is not None:
            self._health_task.cancel()
        for task in self._respawn_tasks.values():
            task.cancel()
        for link in self._workers.values():
            link.discard_pool()
            if link.local is not None:
                code = link.local.stop()
                logger.info("worker stopped", extra={
                    "worker": link.id, "exit_code": code})

    # -- the query path ------------------------------------------------------

    def request_defaults(self) -> dict[str, Any]:
        return dict(self._defaults)

    def route_of(self, sql: str) -> Optional[str]:
        """The worker id that currently owns a query's family (debugging,
        tests, and the ``cluster`` status op's routing preview)."""
        order = self._route_order(family_digest(normalise_sql(sql)))
        return order[0].id if order else None

    def _route_order(self, family: bytes,
                     exclude: frozenset = frozenset()) -> list[WorkerLink]:
        order = []
        for worker_id in self._ring.route(family):
            link = self._workers.get(worker_id)
            if link is not None and link.routable and link.id not in exclude:
                order.append(link)
        return order

    async def query_events(self, message: dict) -> AsyncIterator[dict]:
        """Serve one query through the fleet as a stream of wire events."""
        self._requests += 1
        try:
            sql, options = parse_query_request(message,
                                               self.request_defaults())
        except ProtocolError as error:
            self._query_errors += 1
            yield error.as_event()
            return
        if self._draining:
            yield error_event(None, "draining",
                              "cluster is draining; not accepting new queries")
            return
        family = family_digest(normalise_sql(sql))
        key = (request_key(sql, options), self._barrier_version)
        flight = self._flights.get(key)
        if flight is None:
            if len(self._flights) >= self._max_pending:
                self._overloads += 1
                yield OverloadError(
                    f"coordinator is at its admission limit "
                    f"({self._max_pending} pending flights); retry later"
                ).as_event()
                return
            flight = Flight(key)
            self._flights[key] = flight
            self._idle.clear()
            self._launched += 1
            # The flight leader's trace context wins: one computation, one
            # trace id.  A client-sent traceparent is honored; otherwise
            # the coordinator becomes the trace origin.
            task = asyncio.ensure_future(
                self._lead(flight, sql, options, family,
                           context=extract_context(message)))
            self._flight_tasks.add(task)
            task.add_done_callback(self._flight_tasks.discard)
        else:
            self._coalesced += 1
        queue = flight.subscribe()
        while True:
            event = await queue.get()
            yield event
            if event.get("type") in _TERMINAL:
                return

    async def _lead(self, flight: Flight, sql: str, options: dict,
                    family: bytes, context=None) -> None:
        """Forward the flight to its owner, failing over along the ring."""
        terminal: Optional[dict] = None
        tried: set[str] = set()
        tr = root = None
        started = time.perf_counter()
        if self._observe:
            # Every led flight gets a distributed trace.  The per-attempt
            # "forward" span's id rides the forwarded message as a
            # traceparent, so the worker's own spans parent onto it and the
            # stitched export shows the full cross-process tree -- failover
            # attempts appear as sibling forwards under one trace id.
            tr = Trace("request",
                       context=context if context is not None
                       else new_context())
            root = tr.span("cluster.request")
            root.set("family", family.hex()[:16])
        try:
            while terminal is None:
                order = self._route_order(family,
                                          exclude=frozenset(tried))
                if not order:
                    self._internal_errors += 1
                    self._errors_by_kind["unavailable"] += 1
                    terminal = error_event(
                        None, "unavailable",
                        "no live worker can serve this query "
                        f"(tried {sorted(tried) or 'none'})")
                    break
                link = order[0]
                tried.add(link.id)
                self._routed[link.id] = self._routed.get(link.id, 0) + 1
                forward = {"op": "query", "sql": sql, "options": options}
                attempt = None
                if tr is not None:
                    attempt = tr.span("forward", parent=root)
                    attempt.set("worker", link.id)
                    attempt.set("attempt", len(tried))
                    forward[TRACEPARENT_KEY] = format_traceparent(
                        tr.trace_id, attempt.span_id)
                try:
                    async for event in link.events(forward):
                        kind = event.get("type")
                        if kind in _TERMINAL:
                            if kind == "error" and \
                                    event.get("code") in _RETRIABLE_CODES:
                                # The worker refused before computing;
                                # replaying on a replica is free and keeps
                                # the front door available through rolling
                                # restarts.
                                self._failovers += 1
                                if attempt is not None:
                                    attempt.set("outcome", event.get("code"))
                                break
                            terminal = dict(event)
                            break
                        # Adaptive updates stream through live.  On a
                        # mid-stream failover the retry re-streams from
                        # stage zero -- identical values (same seed), so
                        # subscribers see repeats, never contradictions.
                        published = dict(event)
                        published["id"] = None
                        flight.publish(published)
                except WorkerUnavailable:
                    self._failovers += 1
                    self._mark_unavailable(link)
                    if attempt is not None:
                        attempt.set("outcome", "worker_unavailable")
                        attempt.__exit__(None, None, None)
                    continue
                if attempt is not None:
                    attempt.__exit__(None, None, None)
        except Exception as error:  # noqa: BLE001 - reported, not hidden
            self._internal_errors += 1
            self._errors_by_kind["internal"] += 1
            terminal = error_event(None, "internal",
                                   f"{type(error).__name__}: {error}")
        finally:
            # Cancellation (coordinator close) and GeneratorExit skip the
            # clauses above; subscribers must still see a terminal event,
            # and the exception itself must keep propagating.
            if terminal is None:
                terminal = error_event(None, "unavailable",
                                       "coordinator stopped mid-flight")
                self._errors_by_kind["unavailable"] += 1
            if terminal.get("type") == "error" and \
                    terminal.get("code") not in ("internal", "unavailable"):
                self._query_errors += 1
            terminal = dict(terminal)
            terminal["id"] = None
            if tr is not None:
                root.set("type", terminal.get("type"))
                root.__exit__(None, None, None)
                self._request_seconds.observe(time.perf_counter() - started)
                self._trace_store.put(tr)
                terminal["trace_id"] = tr.trace_id
            self._flights.pop(flight.key, None)
            self._maybe_idle()
            flight.publish(terminal)

    def _maybe_idle(self) -> None:
        if not self._flights and self._mutations_inflight == 0:
            self._idle.set()

    # -- the mutation path ---------------------------------------------------

    async def mutate(self, message: dict) -> dict:
        """Broadcast one mutation to the fleet behind the barrier gate."""
        self._requests += 1
        try:
            sql = parse_mutation_request(message)
        except ProtocolError as error:
            self._mutation_errors += 1
            return error.as_event()
        if self._draining:
            return error_event(None, "draining",
                               "cluster is draining; not accepting mutations")
        self._mutations_inflight += 1
        self._idle.clear()
        try:
            async with self._mutation_gate:
                return await self._broadcast(
                    sql, context=extract_context(message))
        finally:
            self._mutations_inflight -= 1
            self._maybe_idle()

    async def _broadcast(self, sql: str, context=None) -> dict:
        tr = root = None
        if self._observe:
            tr = Trace("mutation",
                       context=context if context is not None
                       else new_context())
            root = tr.span("cluster.mutate")
        try:
            event = await self._broadcast_traced(sql, tr, root)
        finally:
            if tr is not None:
                root.__exit__(None, None, None)
                self._trace_store.put(tr)
        if tr is not None:
            event = dict(event)
            event["trace_id"] = tr.trace_id
        return event

    async def _broadcast_traced(self, sql: str, tr, root) -> dict:
        targets = [w for w in self._workers.values() if w.routable]
        if not targets:
            self._internal_errors += 1
            self._errors_by_kind["unavailable"] += 1
            return error_event(None, "unavailable",
                               "no live workers to commit the mutation")
        forwards = []
        spans = []
        for link in targets:
            forward = {"op": "mutate", "sql": sql}
            if tr is not None:
                # One "forward" span per worker, all siblings under the
                # mutate root; each worker parents its own mutation span
                # onto its forward via the injected traceparent.
                span = tr.span("forward", parent=root)
                span.set("worker", link.id)
                forward[TRACEPARENT_KEY] = format_traceparent(
                    tr.trace_id, span.span_id)
                spans.append(span)
            forwards.append(forward)
        try:
            results = await asyncio.gather(
                *(self._mutate_one(link, forward)
                  for link, forward in zip(targets, forwards)))
        finally:
            for span in spans:
                span.__exit__(None, None, None)
        survivors = [(link, event) for link, event in zip(targets, results)
                     if event is not None]
        if not survivors:
            self._internal_errors += 1
            self._errors_by_kind["unavailable"] += 1
            return error_event(None, "unavailable",
                               "every worker died during the mutation "
                               "broadcast")
        canonical = dict(survivors[0][1])
        canonical["id"] = None
        if canonical.get("type") != "mutation":
            # A typed rejection (validation/conflict/invalid_query).  The
            # engine is deterministic over identical snapshots, so every
            # worker rejected identically and no snapshot moved.
            self._mutation_errors += 1
            return canonical
        version = canonical["data_version"]
        self._log.append(sql)
        self._barrier_version = version
        self._mutations += 1
        for link, event in survivors:
            if event.get("type") != "mutation" or \
                    event.get("data_version") != version:
                # A worker disagreeing with the fleet is split-brained;
                # take it out (the supervisor will rebuild it from the
                # log, which is the authoritative history).
                logger.error("worker diverged on mutation", extra={
                    "worker": link.id, "event": event})
                self._mark_unavailable(link)
            else:
                link.data_version = version
        return canonical

    async def _mutate_one(self, link: WorkerLink,
                          forward: dict) -> Optional[dict]:
        try:
            return await link.roundtrip(forward, timeout=_MUTATE_TIMEOUT)
        except WorkerUnavailable:
            # The worker missed this commit; it must not serve reads until
            # the supervisor replays it the full log.
            self._mark_unavailable(link)
            return None

    # -- observation ---------------------------------------------------------

    def health(self) -> dict:
        healthy = sum(1 for w in self._workers.values() if w.routable)
        status = "draining" if self._draining else (
            "ok" if healthy == len(self._workers) else
            ("degraded" if healthy else "down"))
        return {
            "status": status,
            "role": "coordinator",
            "workers": len(self._workers),
            "workers_healthy": healthy,
            "barrier_version": self._barrier_version,
            "active": len(self._flights),
            "max_pending": self._max_pending,
            "uptime_seconds": time.monotonic() - self._started,
            "version": package_version(),
        }

    def _coordinator_stats(self) -> dict:
        return {
            "requests": self._requests,
            "launched": self._launched,
            "coalesced": self._coalesced,
            "overloads": self._overloads,
            "failovers": self._failovers,
            "worker_deaths": self._worker_deaths,
            "respawns": self._respawns,
            "replayed_statements": self._replayed_statements,
            "mutations": self._mutations,
            "mutation_errors": self._mutation_errors,
            "query_errors": self._query_errors,
            "internal_errors": self._internal_errors,
            "barrier_version": self._barrier_version,
            "active": len(self._flights),
            "max_pending": self._max_pending,
            "draining": self._draining,
            "workers": len(self._workers),
            "workers_healthy": sum(1 for w in self._workers.values()
                                   if w.routable),
            "routed": dict(sorted(self._routed.items())),
        }

    async def stats(self) -> dict:
        """Per-worker rows plus fleet-wide aggregates.

        The payload keeps the single-server shape (``server`` and
        ``service`` keys carry the fleet sums) so every existing consumer
        -- ``repro top``, ``--probe stats``, the smoke harness -- reads a
        cluster exactly as it reads one process, and gains ``coordinator``
        and ``workers`` sections on top.
        """
        links = list(self._workers.values())
        payloads = await asyncio.gather(
            *(self._worker_stats(link) for link in links))
        rows = []
        server_sum: dict[str, float] = {}
        service_sum: dict[str, float] = {}
        cache_sum: dict[str, dict] = {}
        flight_sum = {"launches": 0, "joins": 0, "failures": 0,
                      "in_flight": 0}
        have_flight = False
        for link, payload in zip(links, payloads):
            row = link.describe()
            row["routed"] = self._routed.get(link.id, 0)
            if payload is not None:
                server = payload.get("server", {})
                service = payload.get("service", {})
                row.update({
                    "requests": server.get("requests", 0),
                    "active": server.get("active", 0),
                    "launched": server.get("launched", 0),
                    "coalesced": server.get("coalesced", 0),
                    "mutations": server.get("mutations", 0),
                })
                for key, value in server.items():
                    if isinstance(value, bool) or \
                            not isinstance(value, (int, float)):
                        continue
                    server_sum[key] = server_sum.get(key, 0) + value
                for key, value in service.items():
                    if isinstance(value, (int, float)) and \
                            not isinstance(value, bool):
                        service_sum[key] = service_sum.get(key, 0) + value
                for cache in service.get("caches", []):
                    name = cache.get("name", "?")
                    merged = cache_sum.setdefault(
                        name, {"name": name, "capacity": 0, "size": 0,
                               "hits": 0, "misses": 0, "evictions": 0})
                    for field in ("capacity", "size", "hits", "misses",
                                  "evictions"):
                        merged[field] += cache.get(field, 0)
                flight = service.get("single_flight")
                if flight:
                    have_flight = True
                    for field in flight_sum:
                        flight_sum[field] += flight.get(field, 0)
            rows.append(row)
        service_block: dict[str, Any] = dict(service_sum)
        if cache_sum:
            service_block["caches"] = list(cache_sum.values())
        if have_flight:
            service_block["single_flight"] = {"name": "fleet", **flight_sum}
        return {
            "alerts": self.alerts_report()["alerts"],
            "coordinator": self._coordinator_stats(),
            "workers": rows,
            "server": {**server_sum, "active": len(self._flights),
                       "draining": self._draining},
            "service": service_block,
        }

    async def _worker_stats(self, link: WorkerLink) -> Optional[dict]:
        if not link.routable:
            return None
        try:
            event = await link.roundtrip({"op": "stats"},
                                         timeout=_STATS_TIMEOUT)
        except WorkerUnavailable:
            self._mark_unavailable(link)
            return None
        return event.get("stats")

    async def metrics_text(self) -> str:
        """Fleet Prometheus exposition: coordinator families plus every
        worker's samples re-labelled with ``worker="<id>"``."""
        lines: list[str] = []
        if self._metrics is not None:
            # The registry carries the request-latency histogram plus the
            # counter families below (registered as a collector).
            lines.extend(self._metrics.render().splitlines())
        else:
            for family in self._metric_families():
                lines.extend(family.render())
        for link in list(self._workers.values()):
            if not link.routable:
                continue
            try:
                event = await link.roundtrip({"op": "metrics"},
                                             timeout=_STATS_TIMEOUT)
            except WorkerUnavailable:
                self._mark_unavailable(link)
                continue
            lines.extend(_relabel(event.get("metrics", ""), link.id))
        return "\n".join(lines) + "\n"

    def _metric_families(self):
        worker_rows = [({"worker": w.id, "state": w.state}, 1)
                       for w in self._workers.values()]
        routed_rows = [({"worker": worker_id}, count)
                       for worker_id, count in sorted(self._routed.items())]
        return [
            counters_family(
                "repro_cluster_requests_total",
                "Requests received at the cluster front door",
                [({}, self._requests)]),
            counters_family(
                "repro_cluster_flights_total",
                "Forwarded computations vs requests coalesced onto one",
                [({"outcome": "launched"}, self._launched),
                 ({"outcome": "coalesced"}, self._coalesced)]),
            counters_family(
                "repro_cluster_routed_total",
                "Queries routed to each worker",
                routed_rows or [({}, 0)]),
            counters_family(
                "repro_cluster_failovers_total",
                "Requests replayed on a replica after a worker failure",
                [({}, self._failovers)]),
            counters_family(
                "repro_cluster_errors_total",
                "Front-door errors by kind (the cluster SLO's bad events)",
                [({"kind": kind}, count) for kind, count
                 in sorted(self._errors_by_kind.items())]),
            counters_family(
                "repro_cluster_worker_events_total",
                "Worker lifecycle events seen by the supervisor",
                [({"event": "death"}, self._worker_deaths),
                 ({"event": "respawn"}, self._respawns)]),
            counters_family(
                "repro_cluster_mutations_total",
                "Mutation statements committed fleet-wide",
                [({}, self._mutations)]),
            counters_family(
                "repro_cluster_barrier_version",
                "Data version every routable worker has committed",
                [({}, self._barrier_version)], kind="gauge"),
            counters_family(
                "repro_cluster_workers",
                "Workers by state",
                worker_rows or [({}, 0)], kind="gauge"),
            counters_family(
                "repro_cluster_active_flights",
                "Flights currently forwarded",
                [({}, len(self._flights))], kind="gauge"),
        ]

    # -- cluster-wide observability (history, profiles, traces, alerts) ------

    def alerts_report(self) -> dict:
        """Burn-rate alert states over the coordinator's own tsdb window."""
        if self._alert_evaluator is None or self._tsdb is None:
            return disabled_report()
        window = self._alert_evaluator.max_window_seconds
        snapshots = self._tsdb.history(window)["snapshots"]
        return self._alert_evaluator.report(snapshots)

    async def history(self, seconds: Optional[float] = None) -> dict:
        """The coordinator's tsdb window plus every worker's, fanned out.

        Shaped like the single-server payload (``repro top`` reads the
        top-level snapshots the same way) with a ``workers`` mapping on
        top: per-worker windows for the fleet trend panes.
        """
        if self._tsdb is not None:
            own = self._tsdb.history(seconds)
        else:
            own = {"interval_seconds": None, "capacity": 0,
                   "retention_seconds": 0.0, "snapshots": []}
        message: dict[str, Any] = {"op": "history"}
        if seconds is not None:
            message["seconds"] = seconds
        replies = await self._fan_out(message, timeout=_STATS_TIMEOUT)
        workers = {}
        for worker_id, event in replies:
            if event is None or event.get("type") != "history":
                continue
            workers[worker_id] = {key: value for key, value in event.items()
                                  if key not in ("id", "type")}
        return {**own, "workers": workers}

    async def profile(self, seconds: float = 1.0,
                      interval: Optional[float] = None) -> dict:
        """One fleet-wide profile: sample the coordinator and every worker
        concurrently for the same window, merge the collapsed stacks."""
        interval = interval if interval is not None else DEFAULT_INTERVAL
        loop = asyncio.get_running_loop()
        own_future = loop.run_in_executor(None, profile_payload,
                                          float(seconds), interval)
        replies = await self._fan_out({"op": "profile", "seconds": seconds},
                                      timeout=float(seconds) + _STATS_TIMEOUT)
        own = await own_future
        texts = [own["collapsed"]]
        processes = 1
        samples = own["samples"]
        for _worker_id, event in replies:
            if event is None or event.get("type") != "profile":
                continue
            texts.append(event.get("collapsed", ""))
            samples += event.get("samples", 0)
            processes += 1
        merged = merge_collapsed(texts)
        return {
            "seconds": own["seconds"],
            "interval_seconds": own["interval_seconds"],
            "processes": processes,
            "samples": samples,
            "stacks": len(merged),
            "collapsed": render_collapsed(merged),
        }

    async def trace_payload(self, trace_id: Optional[str] = None) \
            -> Optional[dict]:
        """One distributed trace as per-process span groups (raw form)."""
        stitched = await self._collect_trace(trace_id)
        if stitched is None:
            return None
        tid, name, groups = stitched
        return {
            "trace_id": tid,
            "name": name,
            "processes": [{"process": label, "spans": spans}
                          for label, spans in groups],
            "span_count": sum(len(spans) for _, spans in groups),
        }

    async def trace_export(self, trace_id: Optional[str] = None) \
            -> Optional[dict]:
        """One distributed trace stitched into a Chrome trace-event doc."""
        stitched = await self._collect_trace(trace_id)
        if stitched is None:
            return None
        tid, _name, groups = stitched
        return {
            "trace_id": tid,
            "processes": [label for label, _ in groups],
            "span_count": sum(len(spans) for _, spans in groups),
            "chrome": spans_to_chrome(tid, groups),
        }

    async def _collect_trace(self, trace_id: Optional[str]):
        """The coordinator's stored trace plus every worker's spans for the
        same trace id (workers that restarted since simply contribute
        nothing -- parent links still stitch through the spans that
        remain, because ids live in the spans, not the processes)."""
        if self._trace_store is None:
            return None
        trace = (self._trace_store.get(trace_id) if trace_id
                 else self._trace_store.latest())
        if trace is None:
            return None
        tid = trace.trace_id
        groups: list[tuple[str, list[dict]]] = [
            (f"coordinator:{os.getpid()}", trace.span_dicts())]
        replies = await self._fan_out({"op": "trace", "trace_id": tid},
                                      timeout=_STATS_TIMEOUT)
        for worker_id, event in replies:
            if event is None or event.get("type") != "trace" or \
                    event.get("trace_id") != tid:
                continue
            groups.append((f"worker:{worker_id}",
                           list(event.get("spans", ()))))
        return tid, trace.name, groups

    async def _fan_out(self, message: Mapping, *,
                       timeout: float) -> list[tuple[str, Optional[dict]]]:
        """One roundtrip to every routable worker, concurrently; a worker
        failing the roundtrip is marked unavailable and reported ``None``."""
        links = [w for w in self._workers.values() if w.routable]

        async def one(link: WorkerLink) -> tuple[str, Optional[dict]]:
            try:
                return link.id, await link.roundtrip(message, timeout=timeout)
            except WorkerUnavailable:
                self._mark_unavailable(link)
                return link.id, None

        return list(await asyncio.gather(*(one(link) for link in links)))

    # -- admin ops (rolling restart, scale, status) --------------------------

    @property
    def admin_ops(self):
        return {
            "cluster": self._op_status,
            "cluster_drain": self._op_rolling_restart,
            "cluster_scale": self._op_scale,
        }

    @property
    def http_routes(self):
        return {"/cluster": self._op_status}

    async def _op_status(self, message: Mapping) -> dict:
        return {
            "type": "cluster",
            "coordinator": self._coordinator_stats(),
            "workers": [link.describe() for link in self._workers.values()],
            "ring": {"replicas": self._ring.replicas,
                     "workers": sorted(self._ring.workers)},
        }

    async def _op_rolling_restart(self, message: Mapping) -> dict:
        """Drain and respawn local workers one at a time.

        Each worker leaves the ring first (its families fail over to the
        ring successor), receives SIGTERM, must drain cleanly and exit 0,
        is respawned, replays the mutation log, and rejoins before the
        next worker starts -- the fleet never has more than one member
        down on purpose.
        """
        async with self._admin_gate:
            restarted: list[str] = []
            skipped: list[str] = []
            failures: list[str] = []
            loop = asyncio.get_running_loop()
            for link in list(self._workers.values()):
                if link.local is None:
                    skipped.append(link.id)
                    continue
                link.state = "draining"
                self._ring.remove(link.id)
                link.discard_pool()
                code = await loop.run_in_executor(None, link.local.stop)
                if code != 0:
                    failures.append(f"{link.id} exited {code}")
                link.state = "restarting"
                try:
                    port = await loop.run_in_executor(None,
                                                      link.local.respawn)
                except WorkerSpawnError as error:
                    link.state = "dead"
                    failures.append(f"{link.id}: {error}")
                    continue
                link.port = port
                link.data_version = 0
                try:
                    await self._rejoin(link)
                except WorkerUnavailable as error:
                    failures.append(f"{link.id}: {error}")
                    continue
                restarted.append(link.id)
            if failures:
                return error_event(None, "internal",
                                   "rolling restart incomplete: "
                                   + "; ".join(failures))
            return {"id": None, "type": "cluster",
                    "action": "rolling_restart",
                    "restarted": restarted, "skipped": skipped,
                    "barrier_version": self._barrier_version}

    async def _op_scale(self, message: Mapping) -> dict:
        """Grow or shrink the local worker pool to ``workers`` members."""
        target = message.get("workers")
        if not isinstance(target, int) or isinstance(target, bool) \
                or target < 1:
            return error_event(None, "bad_request",
                               f"cluster_scale needs a positive integer "
                               f"'workers', got {target!r}")
        async with self._admin_gate:
            local_links = [w for w in self._workers.values()
                           if w.local is not None]
            remote = len(self._workers) - len(local_links)
            added: list[str] = []
            removed: list[str] = []
            loop = asyncio.get_running_loop()
            while len(local_links) + remote < target:
                if self._worker_template is None:
                    return error_event(
                        None, "bad_request",
                        "cannot scale up: the coordinator was started "
                        "without local workers to clone")
                worker = LocalWorker(f"w{self._spawned}",
                                     list(self._worker_template))
                self._spawned += 1
                try:
                    await loop.run_in_executor(None, worker.spawn)
                except WorkerSpawnError as error:
                    return error_event(None, "internal", str(error))
                try:
                    link = await self.add_worker(
                        WorkerEndpoint(worker.worker_id, worker.host,
                                       worker.port),
                        local=worker)
                except WorkerUnavailable as error:
                    worker.kill()
                    return error_event(None, "internal", str(error))
                local_links.append(link)
                added.append(link.id)
            while len(local_links) + remote > target and local_links:
                link = local_links.pop()
                link.state = "draining"
                self._ring.remove(link.id)
                link.discard_pool()
                await loop.run_in_executor(None, link.local.stop)
                del self._workers[link.id]
                self._routed.pop(link.id, None)
                removed.append(link.id)
            return {"id": None, "type": "cluster", "action": "scale",
                    "workers": len(self._workers),
                    "added": added, "removed": removed}


def _relabel(text: str, worker_id: str) -> list[str]:
    """Inject ``worker="<id>"`` into every sample of an exposition text.

    Comment lines are dropped (the coordinator's own families carry HELP
    text; per-worker duplicates would be noise), sample lines gain the
    label first so fleet dashboards can aggregate or fan out on it.
    """
    label = f'worker="{worker_id}"'
    out: list[str] = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        name_part, _, value = stripped.rpartition(" ")
        if not name_part:
            continue
        if "{" in name_part:
            name, _, rest = name_part.partition("{")
            out.append(f"{name}{{{label},{rest} {value}")
        else:
            out.append(f"{name_part}{{{label}}} {value}")
    return out
