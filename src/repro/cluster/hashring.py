"""Consistent-hash routing for the cluster coordinator.

The coordinator routes every query to the worker that owns its **query
family** -- the blake2b digest of the normalised SQL text (the same
normalisation the service's caches key on, so one family is exactly one
set of cache entries).  Consistent hashing is what makes that ownership
*stable*: each worker is placed on the ring at ``replicas`` pseudo-random
points, a key routes to the first worker point clockwise from its own
hash, and adding or removing one worker therefore only moves the keys in
the arcs that worker owned -- every other family keeps hitting the worker
whose caches are already warm for it.

:meth:`HashRing.route` returns the *full* successor order (each live
worker once, nearest first), which doubles as the failover plan: when the
owner is down the coordinator retries the same request on the next worker
in the list, deterministically, so repeated failovers of one family warm
one replica instead of scattering across the fleet.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Optional

#: Points each worker occupies on the ring.  Plenty for single-digit
#: fleets: the largest arc imbalance at 64 vnodes is a few percent.
DEFAULT_REPLICAS = 64


def _point(token: str) -> int:
    """A ring position: the first 8 bytes of blake2b, as an integer."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def family_digest(normalised_sql: str) -> bytes:
    """The routing key of one query family (pre-normalised SQL text)."""
    return hashlib.blake2b(normalised_sql.encode("utf-8"),
                           digest_size=16).digest()


class HashRing:
    """Worker ids placed on a 64-bit ring at ``replicas`` points each."""

    def __init__(self, workers: Iterable[str] = (), *,
                 replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be at least 1, got {replicas}")
        self._replicas = replicas
        self._workers: set[str] = set()
        self._points: list[int] = []     # sorted ring positions
        self._owners: list[str] = []     # worker id at the same index
        for worker_id in workers:
            self.add(worker_id)

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker_id: str) -> bool:
        return worker_id in self._workers

    @property
    def workers(self) -> frozenset[str]:
        return frozenset(self._workers)

    @property
    def replicas(self) -> int:
        return self._replicas

    def add(self, worker_id: str) -> None:
        if worker_id in self._workers:
            return
        self._workers.add(worker_id)
        for replica in range(self._replicas):
            position = _point(f"{worker_id}#{replica}")
            index = bisect.bisect(self._points, position)
            self._points.insert(index, position)
            self._owners.insert(index, worker_id)

    def remove(self, worker_id: str) -> None:
        if worker_id not in self._workers:
            return
        self._workers.discard(worker_id)
        kept = [(point, owner)
                for point, owner in zip(self._points, self._owners)
                if owner != worker_id]
        self._points = [point for point, _ in kept]
        self._owners = [owner for _, owner in kept]

    def route(self, key: bytes) -> list[str]:
        """Every worker id once, nearest-successor first.

        The first entry owns the key; the rest are the deterministic
        failover order.  Empty when the ring has no workers.
        """
        if not self._points:
            return []
        position = int.from_bytes(
            hashlib.blake2b(key, digest_size=8).digest(), "big")
        start = bisect.bisect(self._points, position) % len(self._points)
        order: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in seen:
                seen.add(owner)
                order.append(owner)
                if len(order) == len(self._workers):
                    break
        return order

    def owner(self, key: bytes) -> Optional[str]:
        """The first worker of :meth:`route`, or ``None`` on an empty ring."""
        order = self.route(key)
        return order[0] if order else None
