"""The distributed serving tier: a coordinator fronting N workers.

One ``repro server`` process was made fast in PR 5; this package makes
*many* of them serve as one system.  :class:`CoordinatorApp` speaks the
same app interface the network front end already serves, so the whole
fleet sits behind one TCP/HTTP door with consistent-hash cache-affine
routing, cluster-wide single-flight, barrier-ordered mutation broadcast,
health-checked failover, and rolling restarts.
"""

from repro.cluster.coordinator import (
    CoordinatorApp,
    WorkerLink,
    WorkerUnavailable,
    defaults_from_options,
)
from repro.cluster.embedded import EmbeddedCluster
from repro.cluster.hashring import DEFAULT_REPLICAS, HashRing, family_digest
from repro.cluster.workers import (
    LocalWorker,
    WorkerEndpoint,
    WorkerSpawnError,
    parse_worker_addr,
    worker_argv,
)

__all__ = [
    "CoordinatorApp",
    "DEFAULT_REPLICAS",
    "EmbeddedCluster",
    "HashRing",
    "LocalWorker",
    "WorkerEndpoint",
    "WorkerLink",
    "WorkerSpawnError",
    "WorkerUnavailable",
    "defaults_from_options",
    "family_digest",
    "parse_worker_addr",
    "worker_argv",
]
