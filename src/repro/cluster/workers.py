"""Worker processes of the cluster tier: spawn, watch, restart, stop.

A **worker** is an ordinary ``repro server`` process -- the PR 5 network
front end around one :class:`~repro.service.AnnotationService`.  The
cluster tier adds no new worker binary: :class:`LocalWorker` spawns
``python -m repro.cli server --port 0 --no-http`` with the serving flags
the operator gave ``repro cluster start``, parses the bound port from the
``listening tcp=...`` announce line (the same stdout contract the smoke
harness relies on), and knows how to SIGTERM-drain or respawn it.

Remote workers (``--worker-addr host:port``) have no process handle; the
coordinator health-checks them the same way but cannot restart them --
they are somebody else's ``repro server``.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.obs.logsetup import get_logger

logger = get_logger("cluster.workers")

#: Seconds a drain (SIGTERM -> exit) may take before SIGKILL.
DEFAULT_STOP_TIMEOUT = 60.0


class WorkerSpawnError(RuntimeError):
    """The worker subprocess did not come up listening."""


@dataclass(frozen=True)
class WorkerEndpoint:
    """One worker address the coordinator fronts."""

    worker_id: str
    host: str
    port: int

    @property
    def addr(self) -> str:
        return f"{self.host}:{self.port}"


def parse_worker_addr(value: str) -> tuple[str, int]:
    """``host:port`` -> ``(host, port)`` with a helpful error."""
    host, separator, port_text = value.rpartition(":")
    if not separator or not host:
        raise ValueError(f"--worker-addr must be host:port, got {value!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"--worker-addr port must be an integer, got {value!r}")
    if not 0 < port < 65536:
        raise ValueError(f"--worker-addr port out of range: {value!r}")
    return host, port


def worker_argv(data_dir: str, serving_flags: Sequence[str]) -> list[str]:
    """The subprocess command line of one local worker.

    ``--port 0`` binds an ephemeral port (read back from the announce
    line) and ``--no-http`` keeps workers TCP-only -- the coordinator is
    the fleet's one HTTP front door.
    """
    return [sys.executable, "-m", "repro.cli", "server",
            "--data", data_dir, "--port", "0", "--no-http",
            *serving_flags]


@dataclass
class LocalWorker:
    """A locally spawned ``repro server`` subprocess, respawnable."""

    worker_id: str
    argv: list[str]
    host: str = "127.0.0.1"
    process: Optional[subprocess.Popen] = field(default=None, repr=False)
    port: int = 0

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def spawn(self) -> int:
        """Start the subprocess; blocks until it announces, returns the port.

        The environment inherits the parent's ``PYTHONPATH`` (the CLI
        entry point needs ``src`` importable exactly as the coordinator
        process has it).
        """
        env = dict(os.environ)
        src_roots = os.pathsep.join(path for path in sys.path
                                    if path.endswith(os.sep + "src")
                                    or path.endswith("/src"))
        if src_roots:
            existing = env.get("PYTHONPATH")
            env["PYTHONPATH"] = src_roots + (
                os.pathsep + existing if existing else "")
        self.process = subprocess.Popen(
            self.argv, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=env)
        announce = self.process.stdout.readline().strip()
        if not announce.startswith("listening tcp="):
            self.kill()
            raise WorkerSpawnError(
                f"worker {self.worker_id} did not announce a port "
                f"(got {announce!r})")
        addresses = dict(part.split("=") for part in announce.split()[1:])
        self.port = int(addresses["tcp"].rsplit(":", 1)[1])
        logger.info("worker spawned", extra={
            "worker": self.worker_id, "pid": self.process.pid,
            "port": self.port})
        return self.port

    def stop(self, timeout: float = DEFAULT_STOP_TIMEOUT) -> Optional[int]:
        """SIGTERM-drain the worker; SIGKILL if the drain stalls.

        Returns the exit code (``None`` if there was no process).  A
        graceful worker drains its in-flight requests and exits 0 -- the
        rolling-restart protocol asserts exactly that.
        """
        if self.process is None:
            return None
        if self.process.poll() is None:
            try:
                self.process.send_signal(signal.SIGTERM)
            except (ProcessLookupError, OSError):  # pragma: no cover - raced
                pass
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover - wedged
                self.process.kill()
                self.process.wait(timeout=10)
        code = self.process.returncode
        self._close_pipes()
        return code

    def kill(self) -> None:
        """SIGKILL immediately (startup failures, abandoned respawns)."""
        if self.process is not None and self.process.poll() is None:
            try:
                self.process.kill()
                self.process.wait(timeout=10)
            except (ProcessLookupError, OSError,
                    subprocess.TimeoutExpired):  # pragma: no cover
                pass
        self._close_pipes()

    def respawn(self) -> int:
        """Replace a dead (or wedged) process with a fresh one."""
        self.kill()
        return self.spawn()

    def _close_pipes(self) -> None:
        if self.process is not None and self.process.stdout is not None:
            try:
                self.process.stdout.close()
            except OSError:  # pragma: no cover - defensive
                pass
