"""Volumes of Euclidean balls and uniform sampling from balls and spheres.

The measure of certainty normalises support volumes by ``Vol(B^k_r)``, the
volume of the ``k``-dimensional ball of radius ``r`` (equation (2) of the
paper), and the additive approximation scheme of Section 8 samples directions
uniformly at random from the unit ball.  Sampling uses the standard Gaussian
normalisation technique the paper cites from Blum, Hopcroft and Kannan,
*Foundations of Data Science*.
"""

from __future__ import annotations

import math
from typing import Optional, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def as_generator(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed, generator or ``None``.

    Every stochastic entry point of the library accepts a seed (``int``), an
    existing generator, or ``None`` (fresh OS entropy) and funnels it through
    this helper so that results are reproducible when a seed is supplied.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def ball_volume(dimension: int, radius: float = 1.0) -> float:
    """Volume of the ``dimension``-dimensional Euclidean ball of ``radius``.

    Uses the closed form ``pi^(n/2) / Gamma(n/2 + 1) * r^n``.  By the paper's
    convention ``Vol(R^0) = 1`` (the Remark at the end of Section 4), so the
    0-dimensional ball has volume 1 regardless of the radius.
    """
    if dimension < 0:
        raise ValueError(f"dimension must be non-negative, got {dimension}")
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    if dimension == 0:
        return 1.0
    log_volume = (dimension / 2.0) * math.log(math.pi) - math.lgamma(dimension / 2.0 + 1.0)
    return math.exp(log_volume) * radius**dimension


def sphere_area(dimension: int, radius: float = 1.0) -> float:
    """Surface area of the sphere bounding the ``dimension``-dimensional ball."""
    if dimension <= 0:
        raise ValueError(f"dimension must be positive, got {dimension}")
    return dimension * ball_volume(dimension, radius) / radius


def sample_sphere(dimension: int, rng: RngLike = None, size: Optional[int] = None) -> np.ndarray:
    """Sample uniformly from the unit sphere in ``dimension`` dimensions.

    Draws standard Gaussians and normalises; rotation invariance of the
    Gaussian makes the normalised vector uniform on the sphere.
    """
    if dimension <= 0:
        raise ValueError(f"dimension must be positive, got {dimension}")
    generator = as_generator(rng)
    count = 1 if size is None else size
    points = generator.standard_normal((count, dimension))
    norms = np.linalg.norm(points, axis=1, keepdims=True)
    # A standard normal vector is zero with probability 0; guard anyway.
    norms[norms == 0.0] = 1.0
    points = points / norms
    if size is None:
        return points[0]
    return points


def sample_ball(dimension: int, rng: RngLike = None, size: Optional[int] = None,
                radius: float = 1.0) -> np.ndarray:
    """Sample uniformly from the ball of ``radius`` in ``dimension`` dimensions.

    A uniform point of the ball is a uniform direction scaled by ``U^{1/n}``
    where ``U`` is uniform on ``[0, 1]``.
    """
    generator = as_generator(rng)
    count = 1 if size is None else size
    directions = sample_sphere(dimension, generator, size=count)
    radii = radius * generator.random(count) ** (1.0 / dimension)
    points = directions * radii[:, None]
    if size is None:
        return points[0]
    return points


def sample_direction(dimension: int, rng: RngLike = None, size: Optional[int] = None) -> np.ndarray:
    """Sample a direction for the asymptotic test of Section 8.

    The AFPRAS samples points of the unit ball and only uses their direction
    (Lemma 8.3); by rotational symmetry this is the same as sampling from the
    unit sphere directly, which is what this helper does.
    """
    return sample_sphere(dimension, rng, size)
