"""Convex bodies with membership oracles and exact chord computations.

The FPRAS of Section 7 reduces the measure of a CQ(+,<) answer to the volume
of a union of convex bodies, each of which is the intersection of the unit
ball with finitely many homogeneous half-spaces.  The algorithm of
Bringmann and Friedrich that the paper invokes only needs, for each body, a
membership oracle, a way to sample from it, and (for the union estimator) a
volume estimate.  The classes in this module provide the membership oracles
and, because every body we ever build is ``half-spaces ∩ ball``, *exact*
line-body intersections ("chords"), which make the hit-and-run sampler both
exact and fast.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

#: Numerical slack used when testing strict inequalities on floats.
EPSILON = 1e-12


@runtime_checkable
class ConvexBody(Protocol):
    """Protocol for convex subsets of ``R^n`` used by the samplers.

    A body must expose its ambient ``dimension``, decide membership of a
    point, and intersect an arbitrary line with itself, returning the
    parameter interval of the chord.
    """

    @property
    def dimension(self) -> int:
        """Ambient dimension of the body."""
        ...

    def contains(self, point: np.ndarray) -> bool:
        """Whether ``point`` belongs to the body (boundary included)."""
        ...

    def chord(self, point: np.ndarray, direction: np.ndarray) -> tuple[float, float]:
        """Intersection of the line ``point + t * direction`` with the body.

        Returns the interval ``(t_min, t_max)``; an empty intersection is
        signalled by ``t_min > t_max``.
        """
        ...


_EMPTY_CHORD = (1.0, 0.0)


@dataclass(frozen=True)
class HalfSpace:
    """The half-space ``{z : a . z <= b}`` (closed) in ``R^n``.

    Homogenised constraints from Section 7 always have ``b = 0``; the general
    offset is kept so the same class serves the Section 10 extension with
    range constraints on attributes.
    """

    normal: np.ndarray
    offset: float = 0.0

    def __post_init__(self) -> None:
        normal = np.asarray(self.normal, dtype=float)
        if normal.ndim != 1:
            raise ValueError("half-space normal must be a 1-D vector")
        object.__setattr__(self, "normal", normal)

    @property
    def dimension(self) -> int:
        return int(self.normal.shape[0])

    def contains(self, point: np.ndarray) -> bool:
        return float(self.normal @ point) <= self.offset + EPSILON

    def value(self, point: np.ndarray) -> float:
        """Signed slack ``a . z - b``; non-positive inside the half-space."""
        return float(self.normal @ point) - self.offset

    def chord(self, point: np.ndarray, direction: np.ndarray) -> tuple[float, float]:
        slope = float(self.normal @ direction)
        intercept = float(self.normal @ point) - self.offset
        if abs(slope) <= EPSILON:
            if intercept <= EPSILON:
                return (-math.inf, math.inf)
            return _EMPTY_CHORD
        boundary = -intercept / slope
        if slope > 0:
            return (-math.inf, boundary)
        return (boundary, math.inf)

    def chord_batch(self, points: np.ndarray,
                    directions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`chord` over ``(m, n)`` point/direction blocks."""
        slopes = directions @ self.normal
        intercepts = points @ self.normal - self.offset
        lower = np.full(points.shape[0], -math.inf)
        upper = np.full(points.shape[0], math.inf)
        parallel = np.abs(slopes) <= EPSILON
        outside = parallel & (intercepts > EPSILON)
        lower[outside], upper[outside] = _EMPTY_CHORD
        crossing = ~parallel
        with np.errstate(divide="ignore", invalid="ignore"):
            boundaries = np.where(crossing, -intercepts / slopes, 0.0)
        positive = crossing & (slopes > 0)
        negative = crossing & (slopes < 0)
        upper[positive] = boundaries[positive]
        lower[negative] = boundaries[negative]
        return lower, upper


@dataclass(frozen=True)
class Ball:
    """The closed Euclidean ball of a given ``radius`` centred at ``center``."""

    center: np.ndarray
    radius: float = 1.0

    def __post_init__(self) -> None:
        center = np.asarray(self.center, dtype=float)
        if center.ndim != 1:
            raise ValueError("ball center must be a 1-D vector")
        if self.radius < 0:
            raise ValueError(f"radius must be non-negative, got {self.radius}")
        object.__setattr__(self, "center", center)

    @classmethod
    def unit(cls, dimension: int) -> "Ball":
        """The unit ball ``B^n_1`` centred at the origin."""
        return cls(center=np.zeros(dimension), radius=1.0)

    @property
    def dimension(self) -> int:
        return int(self.center.shape[0])

    def contains(self, point: np.ndarray) -> bool:
        return float(np.linalg.norm(point - self.center)) <= self.radius + EPSILON

    def chord(self, point: np.ndarray, direction: np.ndarray) -> tuple[float, float]:
        # Solve |point + t*direction - center|^2 = radius^2 for t.
        delta = point - self.center
        a = float(direction @ direction)
        b = 2.0 * float(delta @ direction)
        c = float(delta @ delta) - self.radius * self.radius
        if a <= EPSILON:
            if c <= EPSILON:
                return (-math.inf, math.inf)
            return _EMPTY_CHORD
        discriminant = b * b - 4.0 * a * c
        if discriminant < 0.0:
            return _EMPTY_CHORD
        root = math.sqrt(discriminant)
        return ((-b - root) / (2.0 * a), (-b + root) / (2.0 * a))

    def chord_batch(self, points: np.ndarray,
                    directions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`chord` over ``(m, n)`` point/direction blocks."""
        deltas = points - self.center
        a = np.einsum("ij,ij->i", directions, directions)
        b = 2.0 * np.einsum("ij,ij->i", deltas, directions)
        c = np.einsum("ij,ij->i", deltas, deltas) - self.radius * self.radius
        count = points.shape[0]
        lower = np.full(count, _EMPTY_CHORD[0])
        upper = np.full(count, _EMPTY_CHORD[1])
        degenerate = a <= EPSILON
        inside = degenerate & (c <= EPSILON)
        lower[inside], upper[inside] = -math.inf, math.inf
        discriminants = b * b - 4.0 * a * c
        solvable = ~degenerate & (discriminants >= 0.0)
        roots = np.sqrt(discriminants[solvable])
        denominators = 2.0 * a[solvable]
        lower[solvable] = (-b[solvable] - roots) / denominators
        upper[solvable] = (-b[solvable] + roots) / denominators
        return lower, upper


@dataclass(frozen=True)
class Intersection:
    """Intersection of finitely many convex bodies, itself a convex body."""

    parts: tuple[ConvexBody, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        parts = tuple(self.parts)
        if not parts:
            raise ValueError("an Intersection needs at least one part")
        dimensions = {part.dimension for part in parts}
        if len(dimensions) != 1:
            raise ValueError(f"parts have inconsistent dimensions: {sorted(dimensions)}")
        object.__setattr__(self, "parts", parts)

    @classmethod
    def of(cls, parts: Iterable[ConvexBody]) -> "Intersection":
        return cls(parts=tuple(parts))

    @property
    def dimension(self) -> int:
        return self.parts[0].dimension

    def contains(self, point: np.ndarray) -> bool:
        return all(part.contains(point) for part in self.parts)

    def chord(self, point: np.ndarray, direction: np.ndarray) -> tuple[float, float]:
        lower = -math.inf
        upper = math.inf
        for part in self.parts:
            part_lower, part_upper = part.chord(point, direction)
            lower = max(lower, part_lower)
            upper = min(upper, part_upper)
            if lower > upper:
                return _EMPTY_CHORD
        return (lower, upper)

    def chord_batch(self, points: np.ndarray,
                    directions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`chord`; rows with ``lower > upper`` are empty.

        Taking the running max/min of the parts' intervals preserves
        emptiness (an empty sentinel ``(1, 0)`` can only shrink further), so
        no early exit is needed.
        """
        count = points.shape[0]
        lower = np.full(count, -math.inf)
        upper = np.full(count, math.inf)
        for part in self.parts:
            part_lower, part_upper = part.chord_batch(points, directions)
            np.maximum(lower, part_lower, out=lower)
            np.minimum(upper, part_upper, out=upper)
        return lower, upper


def halfspaces_and_ball(normals: Sequence[np.ndarray],
                        offsets: Sequence[float] | None = None,
                        radius: float = 1.0) -> Intersection:
    """Convenience constructor for ``{z : A z <= b} ∩ B^n_radius``.

    This is the only body shape the CQ(+,<) FPRAS ever needs (Theorem 7.1):
    the homogenised disjuncts are intersections of half-spaces through the
    origin, clipped to the unit ball.
    """
    normals = [np.asarray(normal, dtype=float) for normal in normals]
    if not normals:
        raise ValueError("at least one half-space normal is required")
    dimension = normals[0].shape[0]
    if offsets is None:
        offsets = [0.0] * len(normals)
    if len(offsets) != len(normals):
        raise ValueError("offsets and normals must have the same length")
    parts: list[ConvexBody] = [
        HalfSpace(normal=normal, offset=float(offset))
        for normal, offset in zip(normals, offsets)
    ]
    parts.append(Ball.unit(dimension) if radius == 1.0 else Ball(np.zeros(dimension), radius))
    return Intersection.of(parts)
