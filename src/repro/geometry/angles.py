"""Exact planar (2-dimensional) cone fractions.

Several of the paper's worked examples live in two dimensions, where the
asymptotic measure has a closed form: the fraction of the plane occupied by a
convex cone is its opening angle divided by ``2*pi``.  The introduction's
campaign example evaluates to ``(pi/2 - arctan(10/7)) / (2*pi) ~ 0.097`` and
Proposition 6.1 yields ``arctan(alpha)/(2*pi) + 1/2``.  This module computes
those values exactly (up to floating point) from half-plane normals, which
gives the library an exact backend for databases with at most two numerical
nulls and linear constraints, and a ground truth for testing the samplers.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

TWO_PI = 2.0 * math.pi
_ANGLE_EPS = 1e-12

#: A circular arc, represented as ``(start, length)`` with ``start`` in
#: ``[0, 2*pi)`` and ``0 <= length <= 2*pi``.
Arc = tuple[float, float]


def _normalise_angle(angle: float) -> float:
    """Map an angle to ``[0, 2*pi)``."""
    angle = math.fmod(angle, TWO_PI)
    if angle < 0.0:
        angle += TWO_PI
    return angle


def halfplane_arc(normal: Sequence[float]) -> Arc | None:
    """Arc of unit directions ``d`` with ``normal . d <= 0``.

    The feasible directions of a half-plane through the origin form an arc of
    length exactly ``pi`` starting a quarter turn past the normal's angle.
    A zero normal imposes no restriction and is signalled by ``None``.
    """
    a, b = float(normal[0]), float(normal[1])
    if abs(a) <= _ANGLE_EPS and abs(b) <= _ANGLE_EPS:
        return None
    normal_angle = math.atan2(b, a)
    return (_normalise_angle(normal_angle + math.pi / 2.0), math.pi)


def _intersect_arc_pair(first: Arc, second: Arc) -> list[Arc]:
    """Intersect two arcs; returns zero, one or two pieces."""
    start_a, length_a = first
    start_b, length_b = second
    if length_a <= _ANGLE_EPS or length_b <= _ANGLE_EPS:
        return []
    # Rotate so that the first arc starts at angle 0.
    shift = _normalise_angle(start_b - start_a)
    pieces: list[Arc] = []
    for candidate_start in (shift, shift - TWO_PI):
        lower = max(0.0, candidate_start)
        upper = min(length_a, candidate_start + length_b)
        if upper - lower > _ANGLE_EPS:
            pieces.append((_normalise_angle(start_a + lower), upper - lower))
    return pieces


def intersect_arcs(arcs: Iterable[Arc]) -> list[Arc]:
    """Intersect a collection of arcs, starting from the full circle."""
    current: list[Arc] = [(0.0, TWO_PI)]
    for arc in arcs:
        updated: list[Arc] = []
        for piece in current:
            updated.extend(_intersect_arc_pair(piece, arc))
        current = updated
        if not current:
            return []
    return current


def union_length(arcs: Iterable[Arc]) -> float:
    """Total length of the union of arcs on the circle."""
    segments: list[tuple[float, float]] = []
    for start, length in arcs:
        if length <= _ANGLE_EPS:
            continue
        if length >= TWO_PI - _ANGLE_EPS:
            return TWO_PI
        end = start + length
        if end <= TWO_PI:
            segments.append((start, end))
        else:
            segments.append((start, TWO_PI))
            segments.append((0.0, end - TWO_PI))
    if not segments:
        return 0.0
    segments.sort()
    total = 0.0
    current_start, current_end = segments[0]
    for start, end in segments[1:]:
        if start > current_end:
            total += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    total += current_end - current_start
    return min(total, TWO_PI)


def planar_cone_fraction(normals: Sequence[Sequence[float]]) -> float:
    """Fraction of the plane occupied by ``{z in R^2 : normal . z <= 0 for all normals}``.

    The fraction of the plane and the fraction of any disc centred at the
    origin coincide because the set is a cone; this is the exact value of the
    measure ``nu`` for two-variable homogeneous linear constraints.
    """
    arcs: list[Arc] = []
    for normal in normals:
        arc = halfplane_arc(normal)
        if arc is not None:
            arcs.append(arc)
    if not arcs:
        return 1.0
    pieces = intersect_arcs(arcs)
    return sum(length for _, length in pieces) / TWO_PI


def planar_cones_union_fraction(cones: Sequence[Sequence[Sequence[float]]]) -> float:
    """Fraction of the plane covered by a union of planar cones.

    Each element of ``cones`` is a list of half-plane normals describing one
    convex cone (one disjunct of a homogenised DNF formula); the union's
    measure is the length of the union of the corresponding arcs.
    """
    union_arcs: list[Arc] = []
    for normals in cones:
        arcs = [arc for arc in (halfplane_arc(normal) for normal in normals) if arc is not None]
        if not arcs:
            return 1.0
        union_arcs.extend(intersect_arcs(arcs))
    return union_length(union_arcs) / TWO_PI


def cone_angle_between(first_ray: Sequence[float], second_ray: Sequence[float]) -> float:
    """Angle (in radians) between two rays from the origin, in ``[0, pi]``."""
    u = np.asarray(first_ray, dtype=float)
    v = np.asarray(second_ray, dtype=float)
    norm_u = float(np.linalg.norm(u))
    norm_v = float(np.linalg.norm(v))
    if norm_u <= _ANGLE_EPS or norm_v <= _ANGLE_EPS:
        raise ValueError("rays must be non-zero")
    cosine = float(np.clip(u @ v / (norm_u * norm_v), -1.0, 1.0))
    return math.acos(cosine)
