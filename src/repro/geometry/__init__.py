"""Euclidean geometry substrate used by the certainty measure.

The measure of certainty defined by the paper is, after the reductions of
Section 5, an asymptotic *volume fraction* of the Euclidean ball.  This
subpackage provides everything needed to manipulate those volumes:

* :mod:`repro.geometry.ball` -- volumes of ``n``-balls and uniform sampling
  from balls and spheres (the Blum--Hopcroft--Kannan Gaussian trick cited by
  the paper).
* :mod:`repro.geometry.montecarlo` -- sample-size bounds (Hoeffding /
  Chernoff) and helpers for Monte-Carlo estimation with additive guarantees.
* :mod:`repro.geometry.cones` -- polyhedral cones ``{z : A z < 0}`` produced
  by homogenising the linear constraints of CQ(+,<) queries (Section 7).
* :mod:`repro.geometry.bodies` -- convex bodies (half-space / ball
  intersections) with exact chord computations, used by the hit-and-run
  sampler.
* :mod:`repro.geometry.hitandrun` -- hit-and-run uniform sampling over convex
  bodies.
* :mod:`repro.geometry.volume` -- telescoping-product volume estimation for a
  single convex body.
* :mod:`repro.geometry.union_volume` -- Karp--Luby style estimation of the
  volume of a union of convex bodies given membership oracles (the role
  played by the Bringmann--Friedrich FPRAS in the paper).
* :mod:`repro.geometry.angles` -- exact planar (2-D) cone angles, used for
  the closed-form values of the introduction example and Proposition 6.1.
"""

from repro.geometry.angles import planar_cone_fraction
from repro.geometry.ball import (
    ball_volume,
    sample_ball,
    sample_direction,
    sample_sphere,
)
from repro.geometry.bodies import Ball, ConvexBody, HalfSpace, Intersection
from repro.geometry.cones import PolyhedralCone
from repro.geometry.hitandrun import HitAndRunSampler
from repro.geometry.montecarlo import (
    hoeffding_sample_size,
    estimate_indicator_mean,
)
from repro.geometry.union_volume import union_volume_fraction
from repro.geometry.volume import cone_ball_fraction

__all__ = [
    "Ball",
    "ConvexBody",
    "HalfSpace",
    "HitAndRunSampler",
    "Intersection",
    "PolyhedralCone",
    "ball_volume",
    "cone_ball_fraction",
    "estimate_indicator_mean",
    "hoeffding_sample_size",
    "planar_cone_fraction",
    "sample_ball",
    "sample_direction",
    "sample_sphere",
    "union_volume_fraction",
]
