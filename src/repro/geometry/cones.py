"""Polyhedral cones arising from homogenised linear constraints.

Homogenising a conjunction of linear constraints (Section 7) yields a set of
the form ``{z in R^n : A z < 0 (strict rows), B z <= 0, C z = 0}``.  Equality
rows with a non-zero normal make the cone measure-zero, which the proof of
Theorem 7.1 silently drops; :meth:`PolyhedralCone.is_degenerate` makes that
explicit.  The cone's intersection with the unit ball is the convex body
whose volume the FPRAS estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.geometry.bodies import EPSILON, Ball, HalfSpace, Intersection

try:  # scipy is an optional accelerator for interior-point detection.
    from scipy.optimize import linprog

    _HAVE_SCIPY = True
except Exception:  # pragma: no cover - exercised only on scipy-free installs
    _HAVE_SCIPY = False


@dataclass(frozen=True)
class PolyhedralCone:
    """A cone ``{z : strict rows < 0, weak rows <= 0, equality rows = 0}``.

    ``strict``, ``weak`` and ``equality`` are matrices whose rows are the
    constraint normals; any of them may be empty.  All three share the same
    number of columns (the ambient dimension).
    """

    dimension: int
    strict: np.ndarray = field(default=None)  # type: ignore[assignment]
    weak: np.ndarray = field(default=None)  # type: ignore[assignment]
    equality: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.dimension <= 0:
            raise ValueError(f"dimension must be positive, got {self.dimension}")
        for name in ("strict", "weak", "equality"):
            matrix = getattr(self, name)
            if matrix is None:
                matrix = np.zeros((0, self.dimension))
            matrix = np.asarray(matrix, dtype=float)
            if matrix.size == 0:
                matrix = matrix.reshape(0, self.dimension)
            if matrix.ndim != 2 or matrix.shape[1] != self.dimension:
                raise ValueError(
                    f"{name} rows must have {self.dimension} columns, got shape {matrix.shape}"
                )
            # Normalise non-zero rows: scaling a constraint does not change
            # the cone but keeps the interior-point search and the membership
            # tolerances well conditioned even for badly scaled inputs.
            if matrix.shape[0]:
                norms = np.linalg.norm(matrix, axis=1, keepdims=True)
                nonzero = norms[:, 0] > 0.0
                matrix = matrix.copy()
                matrix[nonzero] = matrix[nonzero] / norms[nonzero]
            object.__setattr__(self, name, matrix)

    @classmethod
    def from_rows(cls, dimension: int,
                  strict: Sequence[Sequence[float]] = (),
                  weak: Sequence[Sequence[float]] = (),
                  equality: Sequence[Sequence[float]] = ()) -> "PolyhedralCone":
        """Build a cone from row sequences (each row one constraint normal)."""
        def to_matrix(rows: Sequence[Sequence[float]]) -> np.ndarray:
            if len(rows) == 0:
                return np.zeros((0, dimension))
            return np.asarray(rows, dtype=float).reshape(len(rows), dimension)

        return cls(dimension=dimension, strict=to_matrix(strict),
                   weak=to_matrix(weak), equality=to_matrix(equality))

    @property
    def num_constraints(self) -> int:
        return int(self.strict.shape[0] + self.weak.shape[0] + self.equality.shape[0])

    def contains(self, point: np.ndarray, strict_tolerance: float = EPSILON) -> bool:
        """Membership oracle (strict rows tested up to a small tolerance)."""
        point = np.asarray(point, dtype=float)
        if self.strict.shape[0] and not np.all(self.strict @ point < strict_tolerance):
            return False
        if self.weak.shape[0] and not np.all(self.weak @ point <= strict_tolerance):
            return False
        if self.equality.shape[0] and not np.all(np.abs(self.equality @ point) <= strict_tolerance):
            return False
        return True

    def contains_batch(self, points: np.ndarray,
                       strict_tolerance: float = EPSILON) -> np.ndarray:
        """Vectorised membership oracle over an ``(m, dimension)`` block.

        Returns an ``(m,)`` boolean array; row ``i`` matches
        ``self.contains(points[i], strict_tolerance)``.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != self.dimension:
            raise ValueError(
                f"points must have shape (m, {self.dimension}), got {points.shape}")
        member = np.ones(points.shape[0], dtype=bool)
        if self.strict.shape[0]:
            member &= (points @ self.strict.T < strict_tolerance).all(axis=1)
        if self.weak.shape[0]:
            member &= (points @ self.weak.T <= strict_tolerance).all(axis=1)
        if self.equality.shape[0]:
            member &= (np.abs(points @ self.equality.T) <= strict_tolerance).all(axis=1)
        return member

    def is_degenerate(self) -> bool:
        """Whether the cone has measure zero in ``R^dimension``.

        A cone is degenerate iff it has a non-trivial equality constraint or
        no interior point for its inequality system.  Degenerate disjuncts
        contribute nothing to the measure and are dropped by the FPRAS, just
        as in the proof of Theorem 7.1.
        """
        if self.equality.shape[0] and np.any(np.abs(self.equality).sum(axis=1) > EPSILON):
            return True
        return self.interior_point() is None

    def interior_point(self) -> Optional[np.ndarray]:
        """A point strictly inside every inequality, with norm at most 1/2.

        Solves ``max s`` subject to ``A z <= -s`` (all inequality rows) and
        ``-1 <= z_i <= 1``; a strictly positive optimum certifies a full
        dimensional cone and yields an interior point after rescaling.  Falls
        back to a randomised search when scipy is unavailable.
        """
        inequalities = np.vstack([self.strict, self.weak])
        if inequalities.shape[0] == 0:
            return np.zeros(self.dimension)
        if _HAVE_SCIPY:
            return self._interior_point_lp(inequalities)
        return self._interior_point_random(inequalities)

    def _interior_point_lp(self, inequalities: np.ndarray) -> Optional[np.ndarray]:
        rows, dimension = inequalities.shape
        # Variables: (z_1..z_n, s).  Maximise s, i.e. minimise -s.
        cost = np.zeros(dimension + 1)
        cost[-1] = -1.0
        a_ub = np.hstack([inequalities, np.ones((rows, 1))])
        b_ub = np.zeros(rows)
        bounds = [(-1.0, 1.0)] * dimension + [(0.0, 1.0)]
        result = linprog(cost, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
        if not result.success:
            return None
        slack = float(result.x[-1])
        if slack <= 1e-9:
            return None
        point = np.asarray(result.x[:-1], dtype=float)
        norm = float(np.linalg.norm(point))
        if norm <= EPSILON:
            return None
        return point / (2.0 * norm)

    def _interior_point_random(self, inequalities: np.ndarray,
                               attempts: int = 20000) -> Optional[np.ndarray]:
        generator = np.random.default_rng(0)
        best_point = None
        best_slack = 0.0
        for _ in range(attempts):
            candidate = generator.standard_normal(self.dimension)
            candidate /= np.linalg.norm(candidate)
            slack = float(-(inequalities @ candidate).max())
            if slack > best_slack:
                best_slack = slack
                best_point = candidate
        if best_point is None or best_slack <= 1e-9:
            return None
        return best_point / 2.0

    def body(self, radius: float = 1.0) -> Intersection:
        """The convex body ``cone ∩ B^n_radius`` (strict rows closed up)."""
        parts: list = []
        for row in np.vstack([self.strict, self.weak]):
            parts.append(HalfSpace(normal=row, offset=0.0))
        for row in self.equality:
            parts.append(HalfSpace(normal=row, offset=0.0))
            parts.append(HalfSpace(normal=-row, offset=0.0))
        parts.append(Ball(np.zeros(self.dimension), radius))
        return Intersection.of(parts)

    def intersect(self, other: "PolyhedralCone") -> "PolyhedralCone":
        """Conjunction of two cones over the same ambient space."""
        if other.dimension != self.dimension:
            raise ValueError("cannot intersect cones of different dimensions")
        return PolyhedralCone(
            dimension=self.dimension,
            strict=np.vstack([self.strict, other.strict]),
            weak=np.vstack([self.weak, other.weak]),
            equality=np.vstack([self.equality, other.equality]),
        )


def membership_matrix(cones: Sequence[PolyhedralCone], points: np.ndarray,
                      strict_tolerance: float = EPSILON) -> np.ndarray:
    """Membership of every point in every cone as an ``(m, len(cones))`` matrix.

    All cones' constraint rows are stacked into one matrix so the ``m x k``
    signed slacks come out of a single ``points @ rows.T`` product; the
    per-cone reductions then run on slices of that product.  This is the
    batched counterpart of calling :meth:`PolyhedralCone.contains` in a
    double loop, and the primitive behind the batched Karp--Luby and direct
    union estimators.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {points.shape}")
    count = points.shape[0]
    if not cones:
        return np.zeros((count, 0), dtype=bool)
    dimensions = {cone.dimension for cone in cones}
    if dimensions != {points.shape[1]}:
        raise ValueError(
            f"points have dimension {points.shape[1]} but cones have {sorted(dimensions)}")
    stacked = np.vstack([np.vstack([cone.strict, cone.weak, cone.equality])
                         for cone in cones])
    slacks = points @ stacked.T if stacked.shape[0] else np.zeros((count, 0))
    member = np.ones((count, len(cones)), dtype=bool)
    offset = 0
    for index, cone in enumerate(cones):
        strict_rows = cone.strict.shape[0]
        weak_rows = cone.weak.shape[0]
        equality_rows = cone.equality.shape[0]
        if strict_rows:
            member[:, index] &= (slacks[:, offset:offset + strict_rows]
                                 < strict_tolerance).all(axis=1)
        offset += strict_rows
        if weak_rows:
            member[:, index] &= (slacks[:, offset:offset + weak_rows]
                                 <= strict_tolerance).all(axis=1)
        offset += weak_rows
        if equality_rows:
            member[:, index] &= (np.abs(slacks[:, offset:offset + equality_rows])
                                 <= strict_tolerance).all(axis=1)
        offset += equality_rows
    return member
