"""Volume estimation for a single convex cone clipped to the unit ball.

Theorem 7.1 needs, for every disjunct of the homogenised formula, an estimate
of ``Vol(cone ∩ B^n_1) / Vol(B^n_1)``.  Exact values are available in
dimensions 1 and 2; in higher dimensions two Monte-Carlo estimators are
provided:

* a *direct* estimator that samples the unit ball uniformly and counts hits
  (cheap, additive error, good when the fraction is not tiny);
* a *telescoping* estimator that introduces the half-spaces one at a time and
  multiplies the conditional acceptance ratios, each estimated with
  hit-and-run samples from the previous body.  This is the practical
  stand-in for the per-body volume oracle of the Bringmann--Friedrich FPRAS
  the paper invokes (see DESIGN.md, substitution table).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry.angles import planar_cone_fraction
from repro.geometry.ball import RngLike, as_generator, sample_ball
from repro.geometry.bodies import EPSILON as BODY_EPSILON
from repro.geometry.bodies import Ball, HalfSpace, Intersection
from repro.geometry.cones import PolyhedralCone
from repro.geometry.hitandrun import HitAndRunSampler


@dataclass(frozen=True)
class VolumeEstimate:
    """A volume-fraction estimate together with how it was obtained."""

    fraction: float
    method: str
    samples: int


def _one_dimensional_fraction(cone: PolyhedralCone) -> float:
    """Exact fraction for a 1-D cone: the allowed part of ``[-1, 1]``."""
    lower, upper = -1.0, 1.0
    rows = np.vstack([cone.strict, cone.weak])
    for (coefficient,) in rows:
        if coefficient > 0:
            upper = min(upper, 0.0)
        elif coefficient < 0:
            lower = max(lower, 0.0)
    for (coefficient,) in cone.equality:
        if abs(coefficient) > 0:
            return 0.0
    return max(0.0, upper - lower) / 2.0


def _direct_fraction(cone: PolyhedralCone, samples: int, rng: RngLike,
                     engine: str = "batched") -> float:
    generator = as_generator(rng)
    points = sample_ball(cone.dimension, generator, size=samples)
    if engine == "batched":
        hits = int(cone.contains_batch(points).sum())
    else:
        hits = sum(1 for point in points if cone.contains(point))
    return hits / samples


def _telescoping_fraction(cone: PolyhedralCone, samples_per_phase: int,
                          rng: RngLike, engine: str = "batched") -> float:
    """Product of conditional acceptance ratios over a half-space elimination order."""
    generator = as_generator(rng)
    interior = cone.interior_point()
    if interior is None:
        return 0.0
    rows = [row for row in np.vstack([cone.strict, cone.weak])]
    dimension = cone.dimension
    fraction = 1.0
    accepted_parts: list = [Ball.unit(dimension)]
    for row in rows:
        body = Intersection.of(accepted_parts)
        sampler = HitAndRunSampler(body=body, start=interior, rng=generator)
        halfspace = HalfSpace(normal=row, offset=0.0)
        if engine == "batched":
            points = sampler.samples(samples_per_phase)
            hits = int((points @ halfspace.normal <= halfspace.offset + BODY_EPSILON).sum())
        else:
            hits = sum(1 for _ in range(samples_per_phase)
                       if halfspace.contains(sampler.sample()))
        ratio = hits / samples_per_phase
        if ratio <= 0.0:
            return 0.0
        fraction *= ratio
        accepted_parts.append(halfspace)
    return fraction


def cone_ball_fraction(cone: PolyhedralCone,
                       epsilon: float = 0.05,
                       rng: RngLike = None,
                       method: str = "auto",
                       engine: str = "batched") -> VolumeEstimate:
    """Estimate ``Vol(cone ∩ B^n_1) / Vol(B^n_1)``.

    Parameters
    ----------
    cone:
        The polyhedral cone (typically one disjunct of a homogenised CQ(+,<)
        formula).
    epsilon:
        Target accuracy; controls the Monte-Carlo sample sizes.
    method:
        ``"auto"`` (exact in dimension <= 2, direct sampling otherwise),
        ``"direct"``, or ``"telescoping"``.
    engine:
        ``"batched"`` (vectorised membership tests, the default) or
        ``"scalar"`` (per-point loops, kept as the reference oracle).
    """
    if not 0.0 < epsilon <= 1.0:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    if engine not in ("batched", "scalar"):
        raise ValueError(f"unknown engine {engine!r}; expected 'batched' or 'scalar'")
    if cone.is_degenerate():
        return VolumeEstimate(fraction=0.0, method="degenerate", samples=0)
    if cone.num_constraints == 0:
        return VolumeEstimate(fraction=1.0, method="exact", samples=0)
    if cone.dimension == 1:
        return VolumeEstimate(fraction=_one_dimensional_fraction(cone),
                              method="exact", samples=0)
    if cone.dimension == 2 and method in ("auto", "exact"):
        rows = np.vstack([cone.strict, cone.weak])
        return VolumeEstimate(fraction=planar_cone_fraction(rows),
                              method="exact", samples=0)
    if method in ("auto", "direct"):
        samples = max(100, math.ceil(2.0 / (epsilon * epsilon)))
        return VolumeEstimate(fraction=_direct_fraction(cone, samples, rng, engine),
                              method="direct", samples=samples)
    if method == "telescoping":
        samples_per_phase = max(100, math.ceil(4.0 / (epsilon * epsilon)))
        total = samples_per_phase * cone.num_constraints
        return VolumeEstimate(
            fraction=_telescoping_fraction(cone, samples_per_phase, rng, engine),
            method="telescoping", samples=total)
    raise ValueError(f"unknown volume estimation method: {method!r}")
