"""Volume of a union of convex cones clipped to the unit ball.

This is the computational core of the CQ(+,<) FPRAS (Theorem 7.1): after
homogenisation, the formula's disjuncts become convex cones ``X_1, ..., X_m``
and the measure is ``Vol(∪ X_i ∩ B^n_1) / Vol(B^n_1)``.  The paper invokes
the Bringmann--Friedrich estimator for unions of bodies given membership
oracles; this module implements the same Karp--Luby self-normalised scheme on
top of the per-cone samplers and volume estimates of the sibling modules:

1. estimate each ``V_i = Vol(X_i ∩ B_1)``;
2. repeatedly pick a cone ``i`` with probability proportional to ``V_i``,
   draw a (near-)uniform point ``x`` of ``X_i ∩ B_1`` and record
   ``1 / |{j : x ∈ X_j}|``;
3. the union volume is ``(Σ V_i)`` times the average of the recorded values.

In dimensions one and two the union is computed exactly (interval/arc
arithmetic), which doubles as a ground truth in the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.geometry.angles import planar_cones_union_fraction
from repro.geometry.ball import RngLike, as_generator, sample_ball
from repro.geometry.cones import PolyhedralCone
from repro.geometry.hitandrun import HitAndRunSampler
from repro.geometry.volume import VolumeEstimate, cone_ball_fraction


@dataclass(frozen=True)
class UnionVolumeEstimate:
    """Result of estimating the volume fraction of a union of cones."""

    fraction: float
    method: str
    samples: int
    per_cone: tuple[VolumeEstimate, ...] = ()


def _exact_one_dimensional(cones: Sequence[PolyhedralCone]) -> float:
    """Exact union fraction in dimension 1 by interval union over ``[-1, 1]``."""
    covered_negative = False
    covered_positive = False
    for cone in cones:
        fraction = cone_ball_fraction(cone, method="auto").fraction
        if fraction >= 1.0:
            return 1.0
        if fraction <= 0.0:
            continue
        # In 1-D a non-degenerate proper cone is exactly a half-line.
        rows = np.vstack([cone.strict, cone.weak])
        positive_allowed = all(row[0] <= 0 for row in rows)
        if positive_allowed:
            covered_positive = True
        else:
            covered_negative = True
    return (0.5 if covered_negative else 0.0) + (0.5 if covered_positive else 0.0)


def _karp_luby(cones: Sequence[PolyhedralCone],
               estimates: Sequence[VolumeEstimate],
               epsilon: float,
               rng: RngLike) -> tuple[float, int]:
    generator = as_generator(rng)
    volumes = np.asarray([estimate.fraction for estimate in estimates], dtype=float)
    total = float(volumes.sum())
    if total <= 0.0:
        return 0.0, 0
    probabilities = volumes / total
    samplers = []
    for cone in cones:
        interior = cone.interior_point()
        samplers.append(HitAndRunSampler(body=cone.body(), start=interior, rng=generator))
    samples = max(200, math.ceil(4.0 / (epsilon * epsilon)))
    accumulator = 0.0
    for _ in range(samples):
        index = int(generator.choice(len(cones), p=probabilities))
        point = samplers[index].sample()
        covering = sum(1 for cone in cones if cone.contains(point, strict_tolerance=1e-9))
        covering = max(covering, 1)
        accumulator += 1.0 / covering
    return total * accumulator / samples, samples


def union_volume_fraction(cones: Sequence[PolyhedralCone],
                          epsilon: float = 0.05,
                          rng: RngLike = None,
                          method: str = "auto") -> UnionVolumeEstimate:
    """Estimate ``Vol(∪ cone_i ∩ B^n_1) / Vol(B^n_1)``.

    Degenerate (measure-zero) cones are dropped first, mirroring the proof of
    Theorem 7.1.  ``method`` may be ``"auto"`` (exact in dimensions <= 2,
    Karp--Luby otherwise), ``"karp-luby"``, or ``"direct"`` (plain rejection
    sampling from the ball, useful as a cross-check).
    """
    if not 0.0 < epsilon <= 1.0:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    live_cones = [cone for cone in cones if not cone.is_degenerate()]
    if not live_cones:
        return UnionVolumeEstimate(fraction=0.0, method="degenerate", samples=0)
    dimensions = {cone.dimension for cone in live_cones}
    if len(dimensions) != 1:
        raise ValueError(f"cones have inconsistent dimensions: {sorted(dimensions)}")
    dimension = dimensions.pop()
    if any(cone.num_constraints == 0 for cone in live_cones):
        return UnionVolumeEstimate(fraction=1.0, method="exact", samples=0)

    if method == "auto" and dimension == 1:
        return UnionVolumeEstimate(fraction=_exact_one_dimensional(live_cones),
                                   method="exact", samples=0)
    if method == "auto" and dimension == 2:
        rows = [np.vstack([cone.strict, cone.weak]) for cone in live_cones]
        return UnionVolumeEstimate(fraction=planar_cones_union_fraction(rows),
                                   method="exact", samples=0)

    if method == "direct":
        generator = as_generator(rng)
        samples = max(200, math.ceil(2.0 / (epsilon * epsilon)))
        points = sample_ball(dimension, generator, size=samples)
        hits = sum(1 for point in points
                   if any(cone.contains(point) for cone in live_cones))
        return UnionVolumeEstimate(fraction=hits / samples, method="direct",
                                   samples=samples)

    estimates = tuple(cone_ball_fraction(cone, epsilon=epsilon, rng=rng)
                      for cone in live_cones)
    fraction, samples = _karp_luby(live_cones, estimates, epsilon, rng)
    return UnionVolumeEstimate(fraction=min(1.0, fraction), method="karp-luby",
                               samples=samples, per_cone=estimates)
