"""Volume of a union of convex cones clipped to the unit ball.

This is the computational core of the CQ(+,<) FPRAS (Theorem 7.1): after
homogenisation, the formula's disjuncts become convex cones ``X_1, ..., X_m``
and the measure is ``Vol(∪ X_i ∩ B^n_1) / Vol(B^n_1)``.  The paper invokes
the Bringmann--Friedrich estimator for unions of bodies given membership
oracles; this module implements the same Karp--Luby self-normalised scheme on
top of the per-cone samplers and volume estimates of the sibling modules:

1. estimate each ``V_i = Vol(X_i ∩ B_1)``;
2. repeatedly pick a cone ``i`` with probability proportional to ``V_i``,
   draw a (near-)uniform point ``x`` of ``X_i ∩ B_1`` and record
   ``1 / |{j : x ∈ X_j}|``;
3. the union volume is ``(Σ V_i)`` times the average of the recorded values.

The default **batched** engine pre-draws all cone indices with one
``generator.choice(..., size=m)`` call, pulls each cone's points as one block
from its hit-and-run sampler, and tests every point against every cone with
one stacked matrix product (:func:`repro.geometry.cones.membership_matrix`).
The original per-sample **scalar** loop is kept as the reference oracle.

Hit-and-run points can drift numerically outside their own cone; the scalar
seed silently clamped the covering count to one, which hides such escapes.
Both engines now count them, report the count in the estimate's details, and
warn when the escaped fraction exceeds :data:`ESCAPE_WARN_FRACTION`.

In dimensions one and two the union is computed exactly (interval/arc
arithmetic), which doubles as a ground truth in the tests.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.geometry.angles import planar_cones_union_fraction
from repro.geometry.ball import RngLike, as_generator, sample_ball
from repro.geometry.cones import PolyhedralCone, membership_matrix
from repro.geometry.hitandrun import HitAndRunSampler
from repro.geometry.volume import VolumeEstimate, cone_ball_fraction

#: Warn when more than this fraction of Karp--Luby points escaped their own
#: cone: the per-cone samplers are then too inaccurate to trust the estimate.
ESCAPE_WARN_FRACTION = 0.01

#: Membership tolerance for the Karp--Luby covering counts.
_COVERING_TOLERANCE = 1e-9


@dataclass(frozen=True)
class UnionVolumeEstimate:
    """Result of estimating the volume fraction of a union of cones."""

    fraction: float
    method: str
    samples: int
    per_cone: tuple[VolumeEstimate, ...] = ()
    #: Estimator diagnostics; Karp--Luby reports ``escaped`` (points that
    #: fell outside the cone they were sampled from) and ``engine``.
    details: Mapping[str, object] = field(default_factory=dict)


def _exact_one_dimensional(cones: Sequence[PolyhedralCone]) -> float:
    """Exact union fraction in dimension 1 by interval union over ``[-1, 1]``."""
    covered_negative = False
    covered_positive = False
    for cone in cones:
        fraction = cone_ball_fraction(cone, method="auto").fraction
        if fraction >= 1.0:
            return 1.0
        if fraction <= 0.0:
            continue
        # In 1-D a non-degenerate proper cone is exactly a half-line.
        rows = np.vstack([cone.strict, cone.weak])
        positive_allowed = all(row[0] <= 0 for row in rows)
        if positive_allowed:
            covered_positive = True
        else:
            covered_negative = True
    return (0.5 if covered_negative else 0.0) + (0.5 if covered_positive else 0.0)


def _karp_luby_sample_size(epsilon: float) -> int:
    return max(200, math.ceil(4.0 / (epsilon * epsilon)))


def _warn_escapes(escaped: int, samples: int) -> None:
    if samples and escaped / samples > ESCAPE_WARN_FRACTION:
        warnings.warn(
            f"Karp--Luby union estimator: {escaped} of {samples} sampled points "
            f"escaped the cone they were drawn from (> {ESCAPE_WARN_FRACTION:.0%}); "
            "the per-cone samplers look numerically unreliable",
            RuntimeWarning, stacklevel=3)


def _karp_luby(cones: Sequence[PolyhedralCone],
               estimates: Sequence[VolumeEstimate],
               epsilon: float,
               rng: RngLike) -> tuple[float, int, int]:
    """Batched Karp--Luby pass; returns ``(fraction, samples, escaped)``.

    All cone indices are drawn up front, each cone's points come out of its
    hit-and-run sampler as one block, and the covering counts for all points
    against all cones are one stacked matrix product.
    """
    generator = as_generator(rng)
    volumes = np.asarray([estimate.fraction for estimate in estimates], dtype=float)
    total = float(volumes.sum())
    if total <= 0.0:
        return 0.0, 0, 0
    probabilities = volumes / total
    samples = _karp_luby_sample_size(epsilon)
    indices = generator.choice(len(cones), size=samples, p=probabilities)
    counts = np.bincount(indices, minlength=len(cones))

    points = np.empty((samples, cones[0].dimension))
    for index, cone in enumerate(cones):
        count = int(counts[index])
        if count == 0:
            continue
        interior = cone.interior_point()
        sampler = HitAndRunSampler(body=cone.body(), start=interior, rng=generator)
        points[indices == index] = sampler.samples(count)

    member = membership_matrix(cones, points, strict_tolerance=_COVERING_TOLERANCE)
    covering = member.sum(axis=1)
    escaped = int((~member[np.arange(samples), indices]).sum())
    # Clamp after counting: a point outside every cone still contributes one
    # covering unit (as in the seed), but is no longer silently invisible.
    covering = np.maximum(covering, 1)
    accumulator = float((1.0 / covering).sum())
    return total * accumulator / samples, samples, escaped


def _karp_luby_scalar(cones: Sequence[PolyhedralCone],
                      estimates: Sequence[VolumeEstimate],
                      epsilon: float,
                      rng: RngLike) -> tuple[float, int, int]:
    """The original per-sample Karp--Luby loop, kept as the reference oracle."""
    generator = as_generator(rng)
    volumes = np.asarray([estimate.fraction for estimate in estimates], dtype=float)
    total = float(volumes.sum())
    if total <= 0.0:
        return 0.0, 0, 0
    probabilities = volumes / total
    samplers = []
    for cone in cones:
        interior = cone.interior_point()
        samplers.append(HitAndRunSampler(body=cone.body(), start=interior, rng=generator))
    samples = _karp_luby_sample_size(epsilon)
    accumulator = 0.0
    escaped = 0
    for _ in range(samples):
        index = int(generator.choice(len(cones), p=probabilities))
        point = samplers[index].sample()
        if not cones[index].contains(point, strict_tolerance=_COVERING_TOLERANCE):
            escaped += 1
        covering = sum(1 for cone in cones
                       if cone.contains(point, strict_tolerance=_COVERING_TOLERANCE))
        covering = max(covering, 1)
        accumulator += 1.0 / covering
    return total * accumulator / samples, samples, escaped


def union_volume_fraction(cones: Sequence[PolyhedralCone],
                          epsilon: float = 0.05,
                          rng: RngLike = None,
                          method: str = "auto",
                          engine: str = "batched") -> UnionVolumeEstimate:
    """Estimate ``Vol(∪ cone_i ∩ B^n_1) / Vol(B^n_1)``.

    Degenerate (measure-zero) cones are dropped first, mirroring the proof of
    Theorem 7.1.  ``method`` may be ``"auto"`` (exact in dimensions <= 2,
    Karp--Luby otherwise), ``"karp-luby"``, or ``"direct"`` (plain rejection
    sampling from the ball, useful as a cross-check).  ``engine`` selects the
    batched kernels (default) or the scalar reference loops.
    """
    if not 0.0 < epsilon <= 1.0:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    if engine not in ("batched", "scalar"):
        raise ValueError(f"unknown engine {engine!r}; expected 'batched' or 'scalar'")
    live_cones = [cone for cone in cones if not cone.is_degenerate()]
    if not live_cones:
        return UnionVolumeEstimate(fraction=0.0, method="degenerate", samples=0)
    dimensions = {cone.dimension for cone in live_cones}
    if len(dimensions) != 1:
        raise ValueError(f"cones have inconsistent dimensions: {sorted(dimensions)}")
    dimension = dimensions.pop()
    if any(cone.num_constraints == 0 for cone in live_cones):
        return UnionVolumeEstimate(fraction=1.0, method="exact", samples=0)

    if method == "auto" and dimension == 1:
        return UnionVolumeEstimate(fraction=_exact_one_dimensional(live_cones),
                                   method="exact", samples=0)
    if method == "auto" and dimension == 2:
        rows = [np.vstack([cone.strict, cone.weak]) for cone in live_cones]
        return UnionVolumeEstimate(fraction=planar_cones_union_fraction(rows),
                                   method="exact", samples=0)

    if method == "direct":
        generator = as_generator(rng)
        samples = max(200, math.ceil(2.0 / (epsilon * epsilon)))
        points = sample_ball(dimension, generator, size=samples)
        if engine == "batched":
            hits = int(membership_matrix(live_cones, points).any(axis=1).sum())
        else:
            hits = sum(1 for point in points
                       if any(cone.contains(point) for cone in live_cones))
        return UnionVolumeEstimate(fraction=hits / samples, method="direct",
                                   samples=samples, details={"engine": engine})

    estimates = tuple(cone_ball_fraction(cone, epsilon=epsilon, rng=rng,
                                         engine=engine)
                      for cone in live_cones)
    karp_luby = _karp_luby if engine == "batched" else _karp_luby_scalar
    fraction, samples, escaped = karp_luby(live_cones, estimates, epsilon, rng)
    _warn_escapes(escaped, samples)
    return UnionVolumeEstimate(fraction=min(1.0, fraction), method="karp-luby",
                               samples=samples, per_cone=estimates,
                               details={"engine": engine, "escaped": escaped})
