"""Hit-and-run sampling over convex bodies.

The union-volume estimator behind the CQ(+,<) FPRAS needs near-uniform
samples from each convex body ``X_i = cone_i ∩ B^n_1``.  Hit-and-run is the
classical rapidly mixing walk for that: from the current point, pick a
uniformly random direction, intersect the resulting line with the body (the
bodies of :mod:`repro.geometry.bodies` compute this chord exactly), and jump
to a uniform point of the chord.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.ball import RngLike, as_generator, sample_sphere
from repro.geometry.bodies import ConvexBody, Intersection

#: Default number of walk steps between returned samples.  The bodies we
#: sample are intersections of a handful of half-spaces with the unit ball and
#: are well rounded once started from an interior point, so a modest thinning
#: is sufficient in practice.
DEFAULT_BURN_IN = 64
DEFAULT_THINNING = 8


@dataclass
class HitAndRunSampler:
    """Markov-chain sampler producing (approximately) uniform points of a body.

    Parameters
    ----------
    body:
        The convex body to sample from.
    start:
        A point of the body used to start the walk; an interior point gives
        the best mixing (see :meth:`PolyhedralCone.interior_point`).
    rng:
        Seed or generator for reproducibility.
    burn_in, thinning:
        Steps discarded before the first sample and between samples.
    """

    body: ConvexBody
    start: np.ndarray
    rng: RngLike = None
    burn_in: int = DEFAULT_BURN_IN
    thinning: int = DEFAULT_THINNING

    def __post_init__(self) -> None:
        self.start = np.asarray(self.start, dtype=float)
        if not self.body.contains(self.start):
            raise ValueError("hit-and-run start point must belong to the body")
        self._generator = as_generator(self.rng)
        self._current = self.start.copy()
        self._warmed_up = False

    def _step(self) -> None:
        direction = sample_sphere(self.body.dimension, self._generator)
        lower, upper = self.body.chord(self._current, direction)
        if lower > upper:
            # Numerically the current point slipped outside; restart the walk.
            self._current = self.start.copy()
            return
        width = upper - lower
        if width <= 0.0:
            return
        offset = lower + self._generator.random() * width
        self._current = self._current + offset * direction

    def sample(self) -> np.ndarray:
        """Return the next (approximately uniform) sample from the body."""
        if not self._warmed_up:
            for _ in range(self.burn_in):
                self._step()
            self._warmed_up = True
        else:
            for _ in range(self.thinning):
                self._step()
        return self._current.copy()

    def samples(self, count: int) -> np.ndarray:
        """Return ``count`` samples stacked in a ``(count, dimension)`` array.

        When the body supports batched chord computation (every body built by
        the FPRAS does), the samples come from ``count`` *independent* walks
        advanced in lockstep: each NumPy step moves all walkers at once, so
        the cost is ``max(burn_in, thinning)`` vectorised steps instead of
        ``count * thinning`` scalar ones -- and the returned points are
        independent rather than a thinned chain.  Each walk takes
        ``max(burn_in, thinning)`` steps so that a sampler configured to mix
        through thinning alone (``burn_in=0``) still mixes here.  Bodies
        without batched chords fall back to the sequential walk.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return np.zeros((0, self.body.dimension))
        if not _supports_chord_batch(self.body):
            return np.asarray([self.sample() for _ in range(count)])
        points = np.tile(self.start, (count, 1))
        for _ in range(max(self.burn_in, self.thinning)):
            directions = sample_sphere(self.body.dimension, self._generator, size=count)
            lower, upper = self.body.chord_batch(points, directions)
            # Mirror the scalar step: numerically escaped walkers restart at
            # the interior point, zero-width chords stay put.
            escaped = lower > upper
            if escaped.any():
                points[escaped] = self.start
            widths = upper - lower
            moving = ~escaped & (widths > 0.0)
            offsets = lower + self._generator.random(count) * widths
            points[moving] += offsets[moving, None] * directions[moving]
        return points


def _supports_chord_batch(body: ConvexBody) -> bool:
    """Whether every part of ``body`` implements :meth:`chord_batch`."""
    if isinstance(body, Intersection):
        return all(_supports_chord_batch(part) for part in body.parts)
    return hasattr(body, "chord_batch")
