"""Monte-Carlo estimation helpers with explicit error/confidence bounds.

Both approximation schemes of the paper are Monte-Carlo algorithms whose
sample sizes come from Chernoff/Hoeffding bounds: the AFPRAS of Section 8
needs ``m >= 1/eps^2`` samples for confidence 3/4, and confidence ``1 -
delta`` is obtained with ``O(log(1/delta))`` more samples.  This module
centralises those computations so the schemes and the benchmarks agree on the
sample sizes they use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.geometry.ball import RngLike, as_generator

#: Default failure probability: the paper's FPRAS/AFPRAS definitions require
#: success probability at least 3/4.
DEFAULT_DELTA = 0.25


def hoeffding_sample_size(epsilon: float, delta: float = DEFAULT_DELTA) -> int:
    """Number of i.i.d. ``[0, 1]`` samples for an additive ``epsilon`` guarantee.

    By Hoeffding's inequality, ``m >= ln(2/delta) / (2 eps^2)`` samples ensure
    the empirical mean is within ``epsilon`` of the true mean with probability
    at least ``1 - delta``.  For ``delta = 1/4`` this is within a small
    constant of the paper's ``m >= eps^{-2}``.
    """
    if not 0.0 < epsilon <= 1.0:
        raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    return max(1, math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon)))


def multiplicative_sample_size(epsilon: float, lower_bound: float,
                               delta: float = DEFAULT_DELTA) -> int:
    """Sample size for a multiplicative ``epsilon`` guarantee on a mean ``>= lower_bound``.

    A relative error ``epsilon`` on a quantity known to be at least
    ``lower_bound`` follows from an additive error of ``epsilon *
    lower_bound``; this is the standard way the FPRAS of Section 7 turns
    per-body estimates into a relative guarantee.
    """
    if not 0.0 < lower_bound <= 1.0:
        raise ValueError(f"lower_bound must be in (0, 1], got {lower_bound}")
    return hoeffding_sample_size(epsilon * lower_bound, delta)


@dataclass(frozen=True)
class IndicatorEstimate:
    """Result of estimating the mean of a ``{0, 1}``-valued random variable."""

    value: float
    samples: int
    epsilon: float
    delta: float
    positives: int

    def interval(self) -> tuple[float, float]:
        """Return the additive ``[value - eps, value + eps]`` interval clipped to ``[0, 1]``."""
        return (max(0.0, self.value - self.epsilon), min(1.0, self.value + self.epsilon))


def estimate_indicator_mean(indicator: Callable[[np.random.Generator], bool],
                            epsilon: float,
                            delta: float = DEFAULT_DELTA,
                            rng: RngLike = None) -> IndicatorEstimate:
    """Estimate ``E[indicator]`` within additive ``epsilon`` with confidence ``1 - delta``.

    ``indicator`` receives the generator and must return a truth value; it is
    called :func:`hoeffding_sample_size` times.  This is the primitive on top
    of which the AFPRAS is built.
    """
    generator = as_generator(rng)
    samples = hoeffding_sample_size(epsilon, delta)
    positives = 0
    for _ in range(samples):
        if indicator(generator):
            positives += 1
    return IndicatorEstimate(
        value=positives / samples,
        samples=samples,
        epsilon=epsilon,
        delta=delta,
        positives=positives,
    )


def estimate_indicator_mean_batch(batch_indicator: Callable[[np.random.Generator, int], np.ndarray],
                                  epsilon: float,
                                  delta: float = DEFAULT_DELTA,
                                  rng: RngLike = None,
                                  block_size: int = 65_536) -> IndicatorEstimate:
    """Batched variant of :func:`estimate_indicator_mean`.

    ``batch_indicator`` receives the generator and a block size and must
    return a boolean array of that length (one decision per draw).  The
    Hoeffding sample count is split into blocks of at most ``block_size`` so
    the callee's working set stays bounded; the sample size and guarantee are
    identical to the scalar variant.
    """
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    generator = as_generator(rng)
    samples = hoeffding_sample_size(epsilon, delta)
    positives = 0
    remaining = samples
    while remaining:
        count = min(remaining, block_size)
        decisions = np.asarray(batch_indicator(generator, count))
        if decisions.shape != (count,):
            raise ValueError(
                f"batch indicator returned shape {decisions.shape} for {count} draws")
        positives += int(np.count_nonzero(decisions))
        remaining -= count
    return IndicatorEstimate(
        value=positives / samples,
        samples=samples,
        epsilon=epsilon,
        delta=delta,
        positives=positives,
    )


def median_of_means(estimates: list[float]) -> float:
    """Median of independent estimates; boosts confidence of a constant-confidence estimator.

    Running an FPRAS with success probability 3/4 independently ``t`` times
    and taking the median is the standard confidence amplification the paper
    alludes to ("the confidence level 3/4 can be changed to any arbitrary
    value ``1 - delta``").
    """
    if not estimates:
        raise ValueError("median_of_means requires at least one estimate")
    return float(np.median(np.asarray(estimates, dtype=float)))


def amplification_rounds(delta: float) -> int:
    """Number of independent 3/4-confidence runs whose median reaches confidence ``1 - delta``.

    By a Chernoff bound, ``t >= 18 ln(1/delta)`` independent runs suffice (a
    loose but simple constant); always at least one round.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if delta >= DEFAULT_DELTA:
        return 1
    return max(1, math.ceil(18.0 * math.log(1.0 / delta)))
