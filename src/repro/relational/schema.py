"""Relation and database schemas for the two-sorted data model.

A schema declares, for each relation, the names and types of its columns
(``R(base^k num^m)`` in the paper's notation; interleaving of base and
numerical columns is allowed, as it is in any real DDL).  Schemas validate
the tuples stored in relations: base columns only accept base constants and
base nulls, numerical columns only numerical constants and numerical nulls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.relational.types import Attribute, AttributeType
from repro.relational.values import (
    Value,
    is_base_constant,
    is_base_null,
    is_num_null,
    is_numeric_constant,
)


class SchemaError(ValueError):
    """Raised for malformed schemas or tuples that do not match their schema."""


@dataclass(frozen=True)
class RelationSchema:
    """The declaration of one relation: its name and typed attributes."""

    name: str
    attributes: tuple[Attribute, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be non-empty")
        attributes = tuple(self.attributes)
        if not attributes:
            raise SchemaError(f"relation {self.name!r} must have at least one attribute")
        names = [attribute.name for attribute in attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"relation {self.name!r} has duplicate attribute names")
        object.__setattr__(self, "attributes", attributes)

    @classmethod
    def of(cls, name: str, /, **columns: str) -> "RelationSchema":
        """Concise constructor: ``RelationSchema.of("R", id="base", price="num")``.

        ``name`` is positional-only so that relations may have a column that
        is itself called ``name``.
        """
        attributes = []
        for column, type_name in columns.items():
            try:
                attribute_type = AttributeType(type_name)
            except ValueError as error:
                raise SchemaError(
                    f"unknown attribute type {type_name!r} for column {column!r}") from error
            attributes.append(Attribute(name=column, type=attribute_type))
        return cls(name=name, attributes=tuple(attributes))

    @property
    def arity(self) -> int:
        return len(self.attributes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(attribute.name for attribute in self.attributes)

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name."""
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        raise SchemaError(f"relation {self.name!r} has no attribute {name!r}")

    def position(self, name: str) -> int:
        """Index of the attribute ``name`` within the relation."""
        for index, attribute in enumerate(self.attributes):
            if attribute.name == name:
                return index
        raise SchemaError(f"relation {self.name!r} has no attribute {name!r}")

    def numeric_positions(self) -> tuple[int, ...]:
        """Indices of the numerical columns."""
        return tuple(index for index, attribute in enumerate(self.attributes)
                     if attribute.is_numeric)

    def base_positions(self) -> tuple[int, ...]:
        """Indices of the base columns."""
        return tuple(index for index, attribute in enumerate(self.attributes)
                     if not attribute.is_numeric)

    def validate_tuple(self, values: Sequence[Value]) -> tuple[Value, ...]:
        """Check arity and per-column typing of a tuple; return it normalised."""
        values = tuple(values)
        if len(values) != self.arity:
            raise SchemaError(
                f"relation {self.name!r} expects {self.arity} values, got {len(values)}")
        for attribute, value in zip(self.attributes, values):
            if attribute.is_numeric:
                if not (is_numeric_constant(value) or is_num_null(value)):
                    raise SchemaError(
                        f"column {self.name}.{attribute.name} is numerical but got {value!r}")
            else:
                if not (is_base_constant(value) or is_base_null(value)):
                    raise SchemaError(
                        f"column {self.name}.{attribute.name} is base-typed but got {value!r}")
        return values


@dataclass(frozen=True)
class DatabaseSchema:
    """A collection of relation schemas indexed by relation name."""

    relations: Mapping[str, RelationSchema] = field(default_factory=dict)

    def __post_init__(self) -> None:
        relations = dict(self.relations)
        for name, schema in relations.items():
            if name != schema.name:
                raise SchemaError(
                    f"schema registered under {name!r} but declares name {schema.name!r}")
        object.__setattr__(self, "relations", relations)

    @classmethod
    def of(cls, *relation_schemas: RelationSchema) -> "DatabaseSchema":
        names = [schema.name for schema in relation_schemas]
        if len(set(names)) != len(names):
            raise SchemaError("duplicate relation names in database schema")
        return cls(relations={schema.name: schema for schema in relation_schemas})

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self.relations.values())

    def __len__(self) -> int:
        return len(self.relations)

    def relation(self, name: str) -> RelationSchema:
        if name not in self.relations:
            raise SchemaError(f"unknown relation {name!r}")
        return self.relations[name]

    def names(self) -> tuple[str, ...]:
        return tuple(self.relations.keys())

    def extend(self, more: Iterable[RelationSchema]) -> "DatabaseSchema":
        """A new schema with additional relations."""
        merged = dict(self.relations)
        for schema in more:
            if schema.name in merged:
                raise SchemaError(f"relation {schema.name!r} already declared")
            merged[schema.name] = schema
        return DatabaseSchema(relations=merged)
