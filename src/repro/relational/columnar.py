"""Columnar relations: one NumPy array per column, nulls via companion codes.

The row backend (:class:`~repro.relational.relation.Relation`) stores Python
tuples in a list; every access touches every value object.  At the table
sizes the ROADMAP's north star implies (10^5-10^6 rows), that representation
is the dominant cost of query evaluation -- the PR 1 kernels and the PR 2
scheduler sit idle behind a row-at-a-time scan.  :class:`ColumnarRelation`
stores the same logical content column-wise so that the vectorized join
engine (:mod:`repro.engine.vectorized`) can prune and join whole columns at
once:

* a **base column** is an ``int64`` code array plus a small interning
  dictionary (insertion-ordered list of distinct values, constants and
  :class:`~repro.relational.values.BaseNull` marks alike).  Code equality is
  value equality, which is exactly the paper's semantics for base columns --
  a marked null equals itself and nothing else;
* a **numerical column** is a ``float64`` value array (``NaN`` at null
  slots) plus an ``int64`` null-code array (``-1`` for constants, otherwise
  an index into the column's list of :class:`NumNull` marks).

The class is protocol-compatible with :class:`Relation` (iteration, ``add``,
``tuples``, inventories, ...), so everything outside the vectorized hot path
-- the Proposition 5.3 translator, CSV round-tripping, the certainty schemes
-- works on either backend unchanged.  Conversion both ways is lossless up
to numeric widening (``int`` constants come back as the equal ``float``).

Incremental ``add`` appends to a small row-buffer that is sealed into the
arrays on the next columnar access, so interactive use stays cheap while
bulk construction (:meth:`from_columns`, :meth:`from_relation`) never pays a
per-row ``validate_tuple``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.relational.schema import RelationSchema, SchemaError
from repro.relational.values import (
    BaseNull,
    NumNull,
    Value,
    is_base_null,
    is_num_null,
    is_numeric_constant,
)


@dataclass
class BaseColumnData:
    """Interned base column: ``values[codes[i]]`` is the value of row ``i``."""

    codes: np.ndarray
    #: Interning dictionary, in order of first appearance.
    values: list
    #: Inverse of :attr:`values`.
    code_of: dict
    #: Lazily memoised fixed-width encoding of :attr:`values` for
    #: shared-memory shipping (:mod:`repro.relational.sharding`): ``None``
    #: until first asked, ``False`` when the dictionary is unpackable, else
    #: ``(texts, null_mask)`` arrays.  Excluded from comparisons -- it is a
    #: cache of ``values``, not independent state.
    packed: object = field(default=None, compare=False, repr=False)

    def value_objects(self) -> np.ndarray:
        """The column as an object array of the original values."""
        dictionary = np.empty(len(self.values), dtype=object)
        for index, value in enumerate(self.values):
            dictionary[index] = value
        if len(self.codes) == 0:
            return np.empty(0, dtype=object)
        return dictionary[self.codes]


@dataclass
class NumericColumnData:
    """Numerical column: floats with ``NaN`` at null slots, nulls coded aside."""

    values: np.ndarray
    #: ``-1`` where the entry is a constant, else an index into :attr:`nulls`.
    null_codes: np.ndarray
    nulls: list

    def value_objects(self) -> np.ndarray:
        """The column as an object array (Python floats and ``NumNull`` marks)."""
        objects = np.array(self.values.tolist(), dtype=object)
        if len(objects) == 0:
            return np.empty(0, dtype=object)
        for position in np.flatnonzero(self.null_codes >= 0):
            objects[position] = self.nulls[self.null_codes[position]]
        return objects

    @property
    def null_mask(self) -> np.ndarray:
        return self.null_codes >= 0


def _intern_base_column(values: Iterable[Value],
                        column_label: str,
                        validate: bool) -> BaseColumnData:
    codes: list[int] = []
    dictionary: list = []
    code_of: dict = {}
    for value in values:
        try:
            code = code_of.get(value)
        except TypeError as error:
            raise SchemaError(
                f"column {column_label} is base-typed but got "
                f"unhashable {value!r}") from error
        if code is None:
            if validate and (is_num_null(value) or is_numeric_constant(value)):
                raise SchemaError(
                    f"column {column_label} is base-typed but got {value!r}")
            code = len(dictionary)
            code_of[value] = code
            dictionary.append(value)
        codes.append(code)
    return BaseColumnData(codes=np.asarray(codes, dtype=np.int64),
                          values=dictionary, code_of=code_of)


def _intern_numeric_column(values: Iterable[Value],
                           column_label: str) -> NumericColumnData:
    floats: list[float] = []
    null_codes: list[int] = []
    nulls: list = []
    null_code_of: dict = {}
    for value in values:
        if is_num_null(value):
            code = null_code_of.get(value)
            if code is None:
                code = len(nulls)
                null_code_of[value] = code
                nulls.append(value)
            floats.append(np.nan)
            null_codes.append(code)
        elif is_numeric_constant(value):
            floats.append(float(value))
            null_codes.append(-1)
        else:
            raise SchemaError(
                f"column {column_label} is numerical but got {value!r}")
    return NumericColumnData(values=np.asarray(floats, dtype=np.float64),
                             null_codes=np.asarray(null_codes, dtype=np.int64),
                             nulls=nulls)


class ColumnarRelation:
    """A relation stored column-wise; drop-in compatible with :class:`Relation`.

    Set semantics are preserved: duplicate tuples inserted through ``add`` /
    ``extend`` are stored once.  Bulk constructors accept ``dedupe=False``
    for inputs known to be duplicate-free (conversion from a row relation,
    generated serial keys), in which case the seen-set is built lazily only
    if row-at-a-time mutation resumes later.
    """

    def __init__(self, schema: RelationSchema,
                 tuples: Iterable[Sequence[Value]] = ()) -> None:
        self._schema = schema
        self._columns: Optional[list] = None  # sealed column data, row-aligned
        self._sealed_rows = 0
        self._tail: list[tuple[Value, ...]] = []
        self._seen: Optional[set[tuple[Value, ...]]] = set()
        self._row_cache: Optional[tuple[tuple[Value, ...], ...]] = None
        self._object_cache: dict[str, np.ndarray] = {}
        for values in tuples:
            self.add(values)

    # -- bulk construction -------------------------------------------------

    @classmethod
    def from_columns(cls, schema: RelationSchema,
                     columns: dict[str, Sequence[Value]],
                     dedupe: bool = True,
                     validate: bool = True) -> "ColumnarRelation":
        """Build a relation straight from per-column value sequences.

        This is the zero-copy-ish path the data generator and the row-to-
        columnar conversion use: no per-row ``validate_tuple``, typing is
        checked once per column while interning.  With ``dedupe=True``
        duplicate rows are dropped (first occurrence wins), matching the set
        semantics of ``add``.
        """
        missing = [attribute.name for attribute in schema.attributes
                   if attribute.name not in columns]
        if missing:
            raise SchemaError(
                f"relation {schema.name!r} is missing columns {missing}")
        lengths = {len(columns[attribute.name]) for attribute in schema.attributes}
        if len(lengths) > 1:
            raise SchemaError(
                f"relation {schema.name!r}: ragged columns of lengths {sorted(lengths)}")
        relation = cls(schema)
        data = []
        for attribute in schema.attributes:
            label = f"{schema.name}.{attribute.name}"
            raw = columns[attribute.name]
            if attribute.is_numeric:
                data.append(_intern_numeric_column(raw, label))
            else:
                data.append(_intern_base_column(raw, label, validate=validate))
        if dedupe:
            data = _dedupe_columns(data)
        relation._columns = data
        relation._sealed_rows = len(data[0].codes) if isinstance(data[0], BaseColumnData) \
            else len(data[0].values)
        relation._seen = None  # rebuilt lazily if add()/``in`` is used later
        return relation

    @classmethod
    def from_rows(cls, schema: RelationSchema,
                  rows: Sequence[Sequence[Value]],
                  dedupe: bool = True,
                  validate: bool = True) -> "ColumnarRelation":
        """Columnarise a sequence of row tuples in one pass."""
        columns = {
            attribute.name: [row[index] for row in rows]
            for index, attribute in enumerate(schema.attributes)
        }
        for row in rows:
            if len(row) != schema.arity:
                raise SchemaError(
                    f"relation {schema.name!r} expects {schema.arity} values, "
                    f"got {len(row)}")
        return cls.from_columns(schema, columns, dedupe=dedupe, validate=validate)

    @classmethod
    def from_relation(cls, relation) -> "ColumnarRelation":
        """Convert a row :class:`Relation` (already validated and deduped)."""
        return cls.from_rows(relation.schema, relation.tuples(),
                             dedupe=False, validate=False)

    def to_relation(self):
        """Materialise back into a row :class:`Relation`."""
        from repro.relational.relation import Relation
        return Relation(self._schema, self.tuples())

    def copy(self) -> "ColumnarRelation":
        """A cheap copy: sealed arrays are immutable here, so they are shared."""
        duplicate = ColumnarRelation(self._schema)
        self._flush()
        duplicate._columns = list(self._columns) if self._columns is not None else None
        duplicate._sealed_rows = self._sealed_rows
        duplicate._seen = set(self._seen) if self._seen is not None else None
        duplicate._row_cache = self._row_cache
        return duplicate

    # -- the Relation protocol ---------------------------------------------

    @property
    def schema(self) -> RelationSchema:
        return self._schema

    @property
    def name(self) -> str:
        return self._schema.name

    @property
    def arity(self) -> int:
        return self._schema.arity

    def add(self, values: Sequence[Value]) -> None:
        """Insert a tuple after validating it against the schema."""
        normalised = self._schema.validate_tuple(values)
        if normalised in self._seen_set():
            return
        self._seen.add(normalised)
        self._tail.append(normalised)
        self._row_cache = None
        self._object_cache.clear()

    def extend(self, tuples: Iterable[Sequence[Value]]) -> None:
        for values in tuples:
            self.add(values)

    def __len__(self) -> int:
        return self._sealed_rows + len(self._tail)

    def __iter__(self) -> Iterator[tuple[Value, ...]]:
        return iter(self.tuples())

    def __contains__(self, values: Sequence[Value]) -> bool:
        try:
            normalised = self._schema.validate_tuple(values)
        except SchemaError:
            return False
        return normalised in self._seen_set()

    def tuples(self) -> tuple[tuple[Value, ...], ...]:
        """All tuples, in insertion order (materialised lazily and cached)."""
        if self._row_cache is None:
            self._flush()
            if self._sealed_rows == 0:
                self._row_cache = ()
            else:
                object_columns = [self._column_data(index).value_objects()
                                  for index in range(self._schema.arity)]
                self._row_cache = tuple(zip(*object_columns))
        return self._row_cache

    def row(self, index: int) -> tuple[Value, ...]:
        """Materialise the single row ``index`` without touching the others."""
        if self._row_cache is not None:
            return self._row_cache[index]
        self._flush()
        values = []
        for position in range(self._schema.arity):
            data = self._column_data(position)
            if isinstance(data, BaseColumnData):
                values.append(data.values[data.codes[index]])
            else:
                code = data.null_codes[index]
                values.append(data.nulls[code] if code >= 0
                              else float(data.values[index]))
        return tuple(values)

    def column(self, name: str) -> tuple[Value, ...]:
        """All values of the named column, in insertion order."""
        return tuple(self.column_objects(name))

    def column_objects(self, name: str) -> np.ndarray:
        """The named column as an object array of Python values (cached)."""
        cached = self._object_cache.get(name)
        if cached is None:
            cached = self.column_data(name).value_objects()
            self._object_cache[name] = cached
        return cached

    def column_data(self, name: str):
        """The sealed columnar storage of the named column."""
        self._flush()
        return self._column_data(self._schema.position(name))

    def base_nulls(self) -> set:
        """Base-type nulls occurring anywhere in the relation."""
        self._flush()
        nulls: set = set()
        for index, attribute in enumerate(self._schema.attributes):
            if not attribute.is_numeric and self._columns is not None:
                nulls.update(value for value in self._columns[index].values
                             if is_base_null(value))
        return nulls

    def num_nulls(self) -> set:
        """Numerical-type nulls occurring anywhere in the relation."""
        self._flush()
        nulls: set = set()
        for index, attribute in enumerate(self._schema.attributes):
            if attribute.is_numeric and self._columns is not None:
                nulls.update(self._columns[index].nulls)
        return nulls

    def base_constants(self) -> set:
        """Base-type constants occurring anywhere in the relation."""
        self._flush()
        constants: set = set()
        for index, attribute in enumerate(self._schema.attributes):
            if not attribute.is_numeric and self._columns is not None:
                constants.update(value for value in self._columns[index].values
                                 if not is_base_null(value))
        return constants

    def num_constants(self) -> set[float]:
        """Numerical constants occurring anywhere in the relation."""
        self._flush()
        constants: set[float] = set()
        for index, attribute in enumerate(self._schema.attributes):
            if attribute.is_numeric and self._columns is not None:
                data = self._columns[index]
                constants.update(
                    float(value)
                    for value in data.values[data.null_codes < 0].tolist())
        return constants

    def take(self, indices: np.ndarray) -> "ColumnarRelation":
        """The sub-relation of the rows at ``indices``, in that order.

        This is the shard constructor of :mod:`repro.relational.sharding`:
        row-aligned arrays are gathered with one fancy-indexing pass per
        column, and each column's interning dictionary is *compacted* to
        the values the taken rows actually use.  Compaction matters for
        shard scaling -- the vectorized engine's dictionary remap loops and
        the shared-memory payloads are dictionary-sized, so K shards over a
        table with D distinct values must cost ``O(D)`` total, not
        ``O(K*D)`` -- and it keeps the sub-relation's inventories
        (``base_constants`` and friends) exact.  Code *numbering* changes
        under compaction; only code equality carries meaning, which every
        consumer honours.
        """
        self._flush()
        indices = np.asarray(indices, dtype=np.int64)
        result = ColumnarRelation(self._schema)
        taken = []
        for data in self._columns or []:
            if isinstance(data, BaseColumnData):
                codes = data.codes[indices]
                used, compacted = np.unique(codes, return_inverse=True)
                values = [data.values[code] for code in used.tolist()]
                taken.append(BaseColumnData(
                    codes=compacted.astype(np.int64),
                    values=values,
                    code_of={value: code for code, value in enumerate(values)}))
            else:
                null_codes = data.null_codes[indices]
                used = np.unique(null_codes[null_codes >= 0])
                compacted = np.where(
                    null_codes >= 0,
                    np.searchsorted(used, null_codes), -1).astype(np.int64)
                taken.append(NumericColumnData(
                    values=data.values[indices],
                    null_codes=compacted,
                    nulls=[data.nulls[code] for code in used.tolist()]))
        result._columns = taken
        result._sealed_rows = len(indices)
        result._seen = None
        return result

    def with_appended(self, rows: Sequence[Sequence[Value]]) -> "ColumnarRelation":
        """A new relation sharing this one's sealed arrays plus a tail segment.

        The MVCC append path: the parent snapshot's column arrays are
        shared (immutable once sealed), the appended rows are merged as a
        tail through the dictionary-preserving :meth:`_flush`, so existing
        row codes never change and the parent relation is untouched.  The
        caller guarantees the rows are validated and duplicate-free
        against the parent content (:class:`~repro.relational.mutation.
        Mutation` does); the seen-set is left unset and rebuilt lazily if
        row-at-a-time ``add`` resumes.
        """
        self._flush()
        result = ColumnarRelation(self._schema)
        result._columns = list(self._columns) if self._columns is not None else None
        result._sealed_rows = self._sealed_rows
        result._seen = None
        result._tail = [tuple(row) for row in rows]
        result._flush()
        return result

    def map_values(self, mapping) -> "ColumnarRelation":
        """A new columnar relation with every value passed through ``mapping``."""
        result = ColumnarRelation(self._schema)
        for row in self.tuples():
            result.add(tuple(mapping(value) for value in row))
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnarRelation({self.name}, {len(self)} tuples)"

    # -- internals ----------------------------------------------------------

    def _column_data(self, position: int):
        assert self._columns is not None
        return self._columns[position]

    def _seen_set(self) -> set[tuple[Value, ...]]:
        if self._seen is None:
            # Bulk-loaded without a seen-set; rebuild it once on demand.
            self._seen = set(self.tuples())
        return self._seen

    def _flush(self) -> None:
        """Seal buffered rows into the column arrays."""
        if self._columns is None:
            sealed = ColumnarRelation.from_rows(
                self._schema, self._tail, dedupe=False, validate=False)
            self._columns = sealed._columns
            self._sealed_rows = len(self._tail)
            self._tail = []
            return
        if not self._tail:
            return
        fresh = ColumnarRelation.from_rows(
            self._schema, self._tail, dedupe=False, validate=False)
        merged = []
        for index, attribute in enumerate(self._schema.attributes):
            old = self._columns[index]
            new = fresh._columns[index]
            if attribute.is_numeric:
                null_codes = new.null_codes.copy()
                null_code_of = {null: code for code, null in enumerate(old.nulls)}
                nulls = list(old.nulls)
                for position, null in enumerate(new.nulls):
                    code = null_code_of.get(null)
                    if code is None:
                        code = len(nulls)
                        nulls.append(null)
                    null_codes[new.null_codes == position] = code
                merged.append(NumericColumnData(
                    values=np.concatenate([old.values, new.values]),
                    null_codes=np.concatenate([old.null_codes, null_codes]),
                    nulls=nulls))
            else:
                code_of = dict(old.code_of)
                values = list(old.values)
                remap = np.empty(len(new.values), dtype=np.int64)
                for position, value in enumerate(new.values):
                    code = code_of.get(value)
                    if code is None:
                        code = len(values)
                        code_of[value] = code
                        values.append(value)
                    remap[position] = code
                merged.append(BaseColumnData(
                    codes=np.concatenate([old.codes, remap[new.codes]]),
                    values=values, code_of=code_of))
        self._columns = merged
        self._sealed_rows += len(self._tail)
        self._tail = []


def _dedupe_columns(data: list) -> list:
    """Drop duplicate rows (first occurrence wins), fully vectorized.

    Every column reduces each row to an integer code (base columns already
    have one; numerical columns get one from ``np.unique`` over values with
    nulls offset into their own code range), so a row is a small integer
    vector and duplicate detection is ``np.unique`` over the stacked matrix.
    """
    if not data:
        return data
    length = len(data[0].codes) if isinstance(data[0], BaseColumnData) \
        else len(data[0].values)
    if length == 0:
        return data
    code_rows = []
    for column in data:
        if isinstance(column, BaseColumnData):
            code_rows.append(column.codes)
        else:
            # NaNs (null slots) all collapse to one np.unique code; shifting
            # by the null code keeps distinct nulls distinct.
            _, value_codes = np.unique(column.values, return_inverse=True)
            codes = np.where(column.null_codes >= 0,
                             value_codes.max(initial=0) + 1 + column.null_codes,
                             value_codes)
            code_rows.append(codes)
    matrix = np.stack(code_rows, axis=1)
    _, first_positions = np.unique(matrix, axis=0, return_index=True)
    if len(first_positions) == length:
        return data
    keep = np.sort(first_positions)
    deduped = []
    for column in data:
        if isinstance(column, BaseColumnData):
            deduped.append(BaseColumnData(codes=column.codes[keep],
                                          values=column.values,
                                          code_of=column.code_of))
        else:
            deduped.append(NumericColumnData(values=column.values[keep],
                                             null_codes=column.null_codes[keep],
                                             nulls=column.nulls))
    return deduped
