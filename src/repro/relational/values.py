"""Database values: constants and marked nulls.

Following the marked (labelled) null model of the paper, a database entry is
either a constant of its column's type or a null.  Base-type nulls (written
``⊥_i`` in the paper) and numerical-type nulls (``⊤_i``) are distinct kinds
of objects; two occurrences of the same null name denote the same unknown
value, which is what makes the translation of Proposition 5.3 produce shared
variables.

Constants are ordinary Python values: any hashable non-numeric object (most
commonly a string) for base columns, and ``int``/``float`` for numerical
columns.  Booleans are rejected as numeric constants to avoid the classic
``True == 1`` confusion.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from numbers import Real
from typing import Hashable, Union


@dataclass(frozen=True)
class BaseNull:
    """A marked null occurring in a base-type column (``⊥_name``)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("null name must be non-empty")

    def __repr__(self) -> str:
        return f"⊥{self.name}"


@dataclass(frozen=True)
class NumNull:
    """A marked null occurring in a numerical column (``⊤_name``)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("null name must be non-empty")

    def __repr__(self) -> str:
        return f"⊤{self.name}"

    @property
    def variable(self) -> str:
        """Name of the real variable this null becomes in constraint formulae."""
        return f"z_{self.name}"


#: Any value that may appear in a base-type column.
BaseValue = Union[Hashable, BaseNull]

#: Any value that may appear in a numerical column.
NumValue = Union[int, float, NumNull]

#: Any database entry.
Value = Union[BaseValue, NumValue]


def is_base_null(value: object) -> bool:
    """Whether ``value`` is a base-type null."""
    return isinstance(value, BaseNull)


def is_num_null(value: object) -> bool:
    """Whether ``value`` is a numerical-type null."""
    return isinstance(value, NumNull)


def is_null(value: object) -> bool:
    """Whether ``value`` is a null of either type."""
    return isinstance(value, (BaseNull, NumNull))


def is_numeric_constant(value: object) -> bool:
    """Whether ``value`` is a legal numerical constant (a real, not a bool)."""
    return isinstance(value, Real) and not isinstance(value, bool)


def is_base_constant(value: object) -> bool:
    """Whether ``value`` is a legal base constant (hashable, not a null, not a number)."""
    if is_null(value) or is_numeric_constant(value):
        return False
    try:
        hash(value)
    except TypeError:
        return False
    return True


class NullFactory:
    """Generates fresh, distinct marked nulls.

    Data generators and the hardness reductions need many fresh nulls; the
    factory guarantees unique names within one factory instance.
    """

    def __init__(self, prefix: str = "n") -> None:
        self._prefix = prefix
        self._counter = itertools.count(1)

    def base(self) -> BaseNull:
        """A fresh base-type null."""
        return BaseNull(name=f"{self._prefix}{next(self._counter)}")

    def num(self) -> NumNull:
        """A fresh numerical-type null."""
        return NumNull(name=f"{self._prefix}{next(self._counter)}")
