"""Typed relational model with marked nulls.

The paper's data model (Section 3) has two column types -- a *base* type with
the usual single-domain semantics and a *numerical* type interpreted over a
subset of the reals -- and two corresponding families of marked nulls
(``⊥_i`` for base columns, ``⊤_i`` for numerical columns).  This subpackage
implements that model:

* :mod:`repro.relational.types` -- the two attribute types and attribute
  declarations;
* :mod:`repro.relational.values` -- constants and marked nulls;
* :mod:`repro.relational.schema` -- relation and database schemas
  (``R(base^k num^m)`` declarations, with interleaving allowed);
* :mod:`repro.relational.relation` -- relations as finite sets of tuples;
* :mod:`repro.relational.columnar` -- the same relations stored column-wise
  (NumPy arrays + interning dictionaries) for the vectorized join engine;
* :mod:`repro.relational.database` -- incomplete databases, their active
  domains and null inventories;
* :mod:`repro.relational.valuation` -- valuations ``v = (v_base, v_num)``
  and the bijective base valuations of Proposition 5.2;
* :mod:`repro.relational.csv_io` -- plain-text round-tripping of databases.
"""

from repro.relational.columnar import ColumnarRelation
from repro.relational.database import BACKENDS, Database
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.types import Attribute, AttributeType
from repro.relational.valuation import Valuation, bijective_base_valuation
from repro.relational.values import (
    BaseNull,
    NumNull,
    is_base_null,
    is_null,
    is_num_null,
)

__all__ = [
    "Attribute",
    "AttributeType",
    "BACKENDS",
    "BaseNull",
    "ColumnarRelation",
    "Database",
    "DatabaseSchema",
    "NumNull",
    "Relation",
    "RelationSchema",
    "Valuation",
    "bijective_base_valuation",
    "is_base_null",
    "is_null",
    "is_num_null",
]
