"""Hash-partitioned shards of columnar relations, with lossless merge.

The vectorized join engine of PR 3 made the per-core cost of candidate
enumeration small; this module makes the *core count* part of the equation.
A :class:`ColumnarRelation` is split into ``K`` shards by hashing its
join-key column(s) -- the columns the query plan joins on -- so that rows
with equal key values always land in the same shard.  Under such
*key-aligned* partitioning an equi-join never produces a cross-shard pair:
each shard can be joined independently (in another process, on another
core) and the shard results merged back into exactly the answer the
unsharded engine would produce.

Three properties carry the whole design:

* **alignment** -- the shard of a row depends only on the *values* of its
  key columns, through a process-stable hash (:func:`stable_value_hash`).
  Equal values hash equally in every table and every process, independent
  of ``PYTHONHASHSEED``, so join partners always co-locate;
* **order preservation** -- every shard remembers the original row index of
  each of its rows (:attr:`RelationShard.offsets`, ascending).  Because the
  reference DFS enumerates witnesses in ascending outer-row order and all
  witnesses of one outer row live in one shard, a stable merge keyed by the
  outer table's global row index restores the exact reference witness
  order (:func:`merge_order`);
* **zero-copy distribution** -- a shard's sealed NumPy arrays can be
  exported into ``multiprocessing.shared_memory`` blocks
  (:func:`export_shard` / :func:`attach_shard`), so worker processes map
  the column data instead of unpickling a copy of it.  The small interning
  dictionaries still travel by pickle; the row-aligned arrays do not.

Queries without an equi-join plan (single-table scans) are partitioned
round-robin instead, which balances load and still satisfies order
preservation (no joins means the merge key is the scan's own row index).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.relational.columnar import (
    BaseColumnData,
    ColumnarRelation,
    NumericColumnData,
)
from repro.relational.values import BaseNull, NumNull

__all__ = [
    "RelationShard",
    "ShardPayload",
    "attach_shard",
    "export_shard",
    "merge_order",
    "partition_rows",
    "release_payload",
    "shard_relation",
    "stable_value_hash",
]

#: Odd multiplier for combining multi-column key hashes (FNV-style mix).
_HASH_MIX = np.uint64(0x100000001B3)


def stable_value_hash(value) -> int:
    """A 64-bit hash of a database value, stable across processes and runs.

    Python's built-in ``hash`` is salted per process (``PYTHONHASHSEED``),
    so it cannot decide shard placement: two processes would disagree on
    where a key lives.  This hash is derived from a tagged byte encoding of
    the value instead.  Values that compare equal under the engine's base
    semantics produce equal bytes: a marked null is encoded by its kind and
    name (a null equals only itself), strings by their UTF-8 bytes, and any
    other (rare) hashable base constant by its ``repr``.
    """
    if isinstance(value, BaseNull):
        data = b"\x00" + value.name.encode("utf-8")
    elif isinstance(value, NumNull):
        data = b"\x01" + value.name.encode("utf-8")
    elif isinstance(value, str):
        data = b"\x02" + value.encode("utf-8")
    elif isinstance(value, bytes):
        data = b"\x03" + value
    else:
        data = b"\x04" + repr(value).encode("utf-8")
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


def _column_hashes(relation: ColumnarRelation, column: str) -> np.ndarray:
    """Per-row 64-bit key hashes of one column, vectorized over the codes.

    Base columns hash their (small) interning dictionary once and gather by
    code; numerical columns hash constants by their float bits and nulls by
    name, so the (unusual) numerical join key still aligns equal values.
    """
    data = relation.column_data(column)
    if isinstance(data, BaseColumnData):
        dictionary = np.fromiter(
            (stable_value_hash(value) for value in data.values),
            dtype=np.uint64, count=len(data.values))
        if len(data.codes) == 0:
            return np.empty(0, dtype=np.uint64)
        return dictionary[data.codes]
    assert isinstance(data, NumericColumnData)
    hashes = data.values.view(np.uint64).copy()
    # Normalise -0.0 to +0.0 so equal floats hash equally.
    hashes[data.values == 0.0] = np.float64(0.0).view(np.uint64)
    null_positions = np.flatnonzero(data.null_codes >= 0)
    if len(null_positions):
        # Hash each distinct null once, then gather -- a per-null masking
        # loop would rescan the whole column per distinct null, quadratic
        # under datagen's every-null-is-fresh convention.
        null_hashes = np.fromiter(
            (stable_value_hash(null) for null in data.nulls),
            dtype=np.uint64, count=len(data.nulls))
        hashes[null_positions] = null_hashes[data.null_codes[null_positions]]
    return hashes


def partition_rows(relation: ColumnarRelation, shards: int,
                   key_columns: Optional[Sequence[str]] = None) -> list[np.ndarray]:
    """Assign every row to a shard; returns one ascending index array per shard.

    With ``key_columns`` the assignment is ``hash(key values) % shards``
    (key-aligned: equal keys -> equal shard, in any relation); without, rows
    are dealt round-robin, the load-balancing fallback for scans that never
    join.  ``shards=1`` returns the identity partition.  Shards may come
    back empty -- skewed keys, or fewer rows than shards -- which downstream
    code must (and does) tolerate.
    """
    if shards < 1:
        raise ValueError(f"shard count must be at least 1, got {shards}")
    count = len(relation)
    if shards == 1:
        return [np.arange(count, dtype=np.int64)]
    if not key_columns:
        assignment = np.arange(count, dtype=np.uint64) % np.uint64(shards)
    else:
        combined = np.zeros(count, dtype=np.uint64)
        for column in key_columns:
            combined = combined * _HASH_MIX ^ _column_hashes(relation, column)
        assignment = combined % np.uint64(shards)
    return [np.flatnonzero(assignment == shard).astype(np.int64)
            for shard in range(shards)]


@dataclass(frozen=True)
class RelationShard:
    """One shard: a columnar sub-relation plus its rows' original indices.

    ``offsets`` is ascending, so the shard preserves the relative order of
    the rows it holds; ``offsets[local]`` recovers the global row index the
    unsharded engine would have used, which is what the merge sorts by.
    """

    relation: ColumnarRelation
    offsets: np.ndarray

    def __len__(self) -> int:
        return len(self.offsets)


def shard_relation(relation: ColumnarRelation, shards: int,
                   key_columns: Optional[Sequence[str]] = None) -> list[RelationShard]:
    """Partition a columnar relation into :class:`RelationShard` sub-relations.

    Each shard gathers its row-aligned arrays with one fancy-indexing pass
    per column and carries a dictionary compacted to its own rows (see
    :meth:`ColumnarRelation.take`), so per-shard costs -- engine remap
    loops, shared-memory payloads -- scale with the shard, not with the
    parent table's distinct-value count.
    """
    return [RelationShard(relation=relation.take(indices), offsets=indices)
            for indices in partition_rows(relation, shards, key_columns)]


def merge_order(outer_offsets: Sequence[np.ndarray]) -> np.ndarray:
    """The permutation restoring global DFS order over concatenated shards.

    ``outer_offsets[s]`` holds, per witness produced by shard ``s``, the
    global row index of the witness's *outer* (first-joined) table row.  The
    reference engine emits witnesses in ascending outer-row order, and
    key-aligned partitioning puts all witnesses of one outer row into one
    shard in their reference-relative order; a stable sort of the
    concatenation by outer index is therefore exactly the reference order.
    """
    if not outer_offsets:
        return np.empty(0, dtype=np.int64)
    concatenated = np.concatenate([np.asarray(offsets, dtype=np.int64)
                                   for offsets in outer_offsets])
    return np.argsort(concatenated, kind="stable")


# -- shared-memory shipping --------------------------------------------------
#
# A shard handed to a worker process consists of a handful of large
# row-aligned arrays (codes, float values, null codes) and small Python
# dictionaries (interned values, null marks).  The arrays go into named
# shared-memory blocks -- the worker maps them in place -- and only the
# dictionaries travel through the task pickle.  Lifecycle protocol:
#
#   parent:  payload = export_shard(relation)      (creates the blocks)
#   worker:  relation = attach_shard(payload)      (maps, no copy)
#   worker:  ... compute; results must not alias the mapped arrays ...
#   parent:  release_payload(payload)              (close + unlink, once all
#                                                   workers are done)
#
# Ownership: the parent creates every block and unlinks it exactly once.
# CPython 3.10-3.12 registers shared memory with the resource tracker on
# *attach* as well as on create.  Under the preferred ``fork`` start method
# parent and workers share one tracker, so the worker's duplicate
# registration collapses into the same name-set entry and the parent's
# unlink-time unregister clears it -- workers must NOT unregister there (a
# second unregister makes the tracker log KeyError noise).  Under ``spawn``
# each worker owns a private tracker that would hold the name forever and
# warn about "leaked shared_memory objects" at worker exit, so there -- and
# only there -- the worker unregisters its attachment.


@dataclass(frozen=True)
class _ColumnPayload:
    """One column's shipping manifest: array locations plus the dictionary.

    ``dictionary`` is either ``("pickled", values...)`` -- the values ride
    the task pickle -- or ``("packed",)``, in which case two extra entries
    in ``arrays`` (a fixed-width unicode text array and a null mask) carry
    the dictionary through shared memory instead.  Packing matters at
    scale: a 10^5-distinct-key table would otherwise push hundreds of
    kilobytes of strings through the (serial) task pickle per shard.
    """

    kind: str  # "base" | "num"
    #: ``(shm name, dtype str, shape)`` per array, or inline ndarray
    #: fallbacks when shared memory is unavailable on the platform.
    arrays: tuple
    dictionary: tuple


@dataclass(frozen=True)
class ShardPayload:
    """A pickled-to-workers description of one shard relation."""

    schema: object  # RelationSchema; typed loosely to keep pickling cheap
    rows: int
    columns: tuple[_ColumnPayload, ...]


def _pack_dictionary(values) -> Optional[tuple[np.ndarray, np.ndarray]]:
    """Encode a str/``BaseNull`` dictionary as fixed-width arrays, or ``None``.

    Interned base dictionaries are overwhelmingly strings (plus marked
    nulls); those pack losslessly into a fixed-width unicode array and a
    null mask, both of which ship through shared memory.  Dictionaries
    containing any other constant kind -- or empty ones, where NumPy cannot
    infer a text dtype -- fall back to riding the task pickle.  So does any
    dictionary the encoding cannot round-trip exactly: NumPy's fixed-width
    unicode strips trailing NUL characters, which would merge ``"a\\x00"``
    with ``"a"`` and silently change join results, so the round trip is
    verified before the packed path is chosen.
    """
    if not values:
        return None
    texts = []
    null_mask = []
    for value in values:
        if isinstance(value, BaseNull):
            texts.append(value.name)
            null_mask.append(True)
        elif isinstance(value, str):
            texts.append(value)
            null_mask.append(False)
        else:
            return None
    encoded = np.asarray(texts)
    if encoded.tolist() != texts:
        return None
    return encoded, np.asarray(null_mask, dtype=bool)


def _new_block(array: np.ndarray):
    from multiprocessing import shared_memory

    block = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
    view[:] = array
    return block


def export_shard(relation: ColumnarRelation) -> tuple[ShardPayload, list]:
    """Ship a shard's sealed arrays into shared memory.

    Returns ``(payload, blocks)``: the payload is what the worker task
    receives (picklable, small), ``blocks`` are the live handles the parent
    must keep until every worker finished, then hand to
    :func:`release_payload`.  When shared memory cannot be created (e.g. a
    platform without ``/dev/shm``), arrays are embedded in the payload and
    travel by pickle instead -- slower, never wrong.
    """
    blocks: list = []

    def ship(array: np.ndarray):
        array = np.ascontiguousarray(array)
        try:
            block = _new_block(array)
        except (OSError, ImportError):
            return ("inline", array)
        blocks.append(block)
        return ("shm", block.name, array.dtype.str, array.shape)

    columns = []
    for position, attribute in enumerate(relation.schema.attributes):
        data = relation.column_data(attribute.name)
        if isinstance(data, BaseColumnData):
            if data.packed is None:
                encoded = _pack_dictionary(data.values)
                data.packed = False if encoded is None else encoded
            packed = data.packed or None
            if packed is not None:
                texts, null_mask = packed
                columns.append(_ColumnPayload(
                    kind="base",
                    arrays=(ship(data.codes), ship(texts), ship(null_mask)),
                    dictionary=("packed",)))
            else:
                columns.append(_ColumnPayload(
                    kind="base",
                    arrays=(ship(data.codes),),
                    dictionary=("pickled",) + tuple(data.values)))
        else:
            columns.append(_ColumnPayload(
                kind="num",
                arrays=(ship(data.values), ship(data.null_codes)),
                dictionary=("pickled",) + tuple(data.nulls)))
    payload = ShardPayload(schema=relation.schema, rows=len(relation),
                           columns=tuple(columns))
    return payload, blocks


def _attach_array(spec, keepalive: list) -> np.ndarray:
    if spec[0] == "inline":
        return spec[1]
    from multiprocessing import shared_memory

    _, name, dtype, shape = spec
    block = shared_memory.SharedMemory(name=name)
    # See the lifecycle note above: only non-fork workers (private resource
    # tracker) undo the registration their attach just made.
    import multiprocessing

    if multiprocessing.get_start_method(allow_none=True) != "fork":
        try:
            from multiprocessing import resource_tracker
            resource_tracker.unregister(block._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker layout varies
            pass
    keepalive.append(block)
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=block.buf)


def attach_shard(payload: ShardPayload) -> tuple[ColumnarRelation, list]:
    """Reconstruct a shard relation from its payload, mapping shared blocks.

    Returns ``(relation, handles)``; the worker must keep ``handles`` alive
    while it touches the relation and ``close()`` each afterwards (results
    returned to the parent must be fresh arrays, which every NumPy gather /
    ``flatnonzero`` in the engine produces anyway).
    """
    keepalive: list = []
    columns = []
    for column in payload.columns:
        if column.kind == "base":
            codes = _attach_array(column.arrays[0], keepalive)
            if column.dictionary[0] == "packed":
                texts = _attach_array(column.arrays[1], keepalive)
                null_mask = _attach_array(column.arrays[2], keepalive)
                values = [BaseNull(text) if is_null else text
                          for text, is_null in zip(texts.tolist(),
                                                   null_mask.tolist())]
            else:
                values = list(column.dictionary[1:])
            columns.append(BaseColumnData(
                codes=codes, values=values,
                code_of={value: code for code, value in enumerate(values)}))
        else:
            values = _attach_array(column.arrays[0], keepalive)
            null_codes = _attach_array(column.arrays[1], keepalive)
            columns.append(NumericColumnData(
                values=values, null_codes=null_codes,
                nulls=list(column.dictionary[1:])))
    relation = ColumnarRelation(payload.schema)
    relation._columns = columns
    relation._sealed_rows = payload.rows
    relation._seen = None
    return relation, keepalive


def release_payload(blocks: list) -> None:
    """Close and unlink the parent-side handles of an exported shard."""
    for block in blocks:
        try:
            block.close()
            block.unlink()
        except OSError:  # pragma: no cover - already released
            pass
