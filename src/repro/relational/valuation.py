"""Valuations of nulls and the bijective base valuations of Proposition 5.2.

A valuation ``v = (v_base, v_num)`` interprets every base null by a base
constant and every numerical null by a real number; ``v(D)`` is the complete
database obtained by substituting accordingly.  Proposition 5.2 shows that
for the purpose of computing the measure one can fix a single *bijective*
base valuation -- one that maps the base nulls injectively to fresh constants
outside ``C_base(D)`` -- and only reason about the numerical nulls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.relational.database import Database
from repro.relational.values import (
    BaseNull,
    NumNull,
    Value,
    is_base_null,
    is_num_null,
)


class ValuationError(ValueError):
    """Raised when a valuation is asked about a null it does not cover."""


@dataclass(frozen=True)
class Valuation:
    """A pair of maps interpreting base and numerical nulls by constants."""

    base_map: Mapping[BaseNull, object] = field(default_factory=dict)
    num_map: Mapping[NumNull, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "base_map", dict(self.base_map))
        object.__setattr__(self, "num_map",
                           {null: float(value) for null, value in self.num_map.items()})

    def value(self, item: Value) -> Value:
        """Apply the valuation to a single value.

        Constants pass through unchanged.  Nulls not covered by the valuation
        also pass through: valuations may be partial (for instance a
        bijective base valuation leaves the numerical nulls in place, to be
        handled by the constraint translation), and the downstream consumers
        that require completeness -- the query evaluator, most notably --
        check for leftover nulls themselves.
        """
        if is_base_null(item):
            return self.base_map.get(item, item)
        if is_num_null(item):
            return self.num_map.get(item, item)
        return item

    def tuple(self, values: Sequence[Value]) -> tuple[Value, ...]:
        """Apply the valuation to every component of a tuple."""
        return tuple(self.value(item) for item in values)

    def database(self, database: Database) -> Database:
        """The complete(r) database ``v(D)``."""
        return database.map_values(self.value)

    def extend(self, other: "Valuation") -> "Valuation":
        """Combine two valuations over disjoint nulls (later entries win)."""
        base_map = dict(self.base_map)
        base_map.update(other.base_map)
        num_map = dict(self.num_map)
        num_map.update(other.num_map)
        return Valuation(base_map=base_map, num_map=num_map)

    @classmethod
    def numeric(cls, assignment: Mapping[NumNull, float]) -> "Valuation":
        """A valuation that only interprets numerical nulls."""
        return cls(base_map={}, num_map=assignment)


def bijective_base_valuation(database: Database, prefix: str = "fresh") -> Valuation:
    """A bijective valuation of the base nulls (Proposition 5.2).

    Maps each base null to a fresh constant that is distinct from every base
    constant of the database and from the images of the other nulls.  Fresh
    constants are plain strings ``"<prefix>#<null name>"``; if such a string
    already occurs in the database a numeric suffix is appended.
    """
    existing = database.base_constants()
    mapping: dict[BaseNull, object] = {}
    for null in sorted(database.base_nulls(), key=lambda item: item.name):
        candidate = f"{prefix}#{null.name}"
        suffix = 0
        while candidate in existing:
            suffix += 1
            candidate = f"{prefix}#{null.name}.{suffix}"
        existing.add(candidate)
        mapping[null] = candidate
    return Valuation(base_map=mapping, num_map={})
