"""Plain-text (CSV) round-tripping of incomplete databases.

The experimental pipeline of Section 9 loads generated data "into Postgres";
our engine is in-memory, but persisting generated databases to disk is still
useful for inspecting workloads and sharing them between the examples and
the benchmarks.  The format is one CSV file per relation with a header row;
nulls are encoded as ``⊥:name`` (base) and ``⊤:name`` (numerical) so that
marked nulls survive the round trip.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema
from repro.relational.values import BaseNull, NumNull, Value, is_base_null, is_num_null

BASE_NULL_PREFIX = "⊥:"
NUM_NULL_PREFIX = "⊤:"


def _encode(value: Value) -> str:
    if is_base_null(value):
        return f"{BASE_NULL_PREFIX}{value.name}"
    if is_num_null(value):
        return f"{NUM_NULL_PREFIX}{value.name}"
    return str(value)


def _decode(text: str, is_numeric: bool) -> Value:
    if text.startswith(BASE_NULL_PREFIX):
        return BaseNull(name=text[len(BASE_NULL_PREFIX):])
    if text.startswith(NUM_NULL_PREFIX):
        return NumNull(name=text[len(NUM_NULL_PREFIX):])
    if is_numeric:
        return float(text)
    return text


def save_database(database: Database, directory: Union[str, Path]) -> None:
    """Write one ``<relation>.csv`` file per relation into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for relation in database:
        path = directory / f"{relation.name}.csv"
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(relation.schema.attribute_names)
            for row in relation:
                writer.writerow([_encode(value) for value in row])


def load_database(schema: DatabaseSchema, directory: Union[str, Path]) -> Database:
    """Read a database previously written by :func:`save_database`.

    Relations whose file is missing are loaded as empty; extra files in the
    directory are ignored.
    """
    directory = Path(directory)
    database = Database(schema)
    for relation_schema in schema:
        path = directory / f"{relation_schema.name}.csv"
        if not path.exists():
            continue
        numeric_flags = [attribute.is_numeric for attribute in relation_schema.attributes]
        with path.open("r", newline="", encoding="utf-8") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                continue
            if tuple(header) != relation_schema.attribute_names:
                raise ValueError(
                    f"header of {path.name} does not match schema of "
                    f"{relation_schema.name!r}: {header}")
            for row in reader:
                values = [_decode(text, numeric) for text, numeric in zip(row, numeric_flags)]
                database.add(relation_schema.name, values)
    return database
