"""Relations: finite sets of typed tuples, possibly containing nulls."""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.relational.schema import RelationSchema, SchemaError
from repro.relational.values import (
    Value,
    is_base_null,
    is_num_null,
    is_numeric_constant,
)


class Relation:
    """A finite set of tuples conforming to a :class:`RelationSchema`.

    Tuples are kept in insertion order (useful for reproducible candidate
    enumeration and ``LIMIT`` clauses) but duplicate tuples are stored only
    once, matching the set semantics of the paper's model.
    """

    def __init__(self, schema: RelationSchema,
                 tuples: Iterable[Sequence[Value]] = ()) -> None:
        self._schema = schema
        self._tuples: list[tuple[Value, ...]] = []
        self._seen: set[tuple[Value, ...]] = set()
        for values in tuples:
            self.add(values)

    @property
    def schema(self) -> RelationSchema:
        return self._schema

    @property
    def name(self) -> str:
        return self._schema.name

    @property
    def arity(self) -> int:
        return self._schema.arity

    def add(self, values: Sequence[Value]) -> None:
        """Insert a tuple after validating it against the schema."""
        normalised = self._schema.validate_tuple(values)
        if normalised in self._seen:
            return
        self._seen.add(normalised)
        self._tuples.append(normalised)

    def extend(self, tuples: Iterable[Sequence[Value]]) -> None:
        for values in tuples:
            self.add(values)

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[tuple[Value, ...]]:
        return iter(self._tuples)

    def __contains__(self, values: Sequence[Value]) -> bool:
        """Whether the relation holds the tuple, under ``add``'s normalisation.

        The candidate tuple is pushed through the same
        :meth:`~repro.relational.schema.RelationSchema.validate_tuple`
        normalisation that ``add`` applies before storing, so membership
        agrees exactly with what ``add`` would dedupe; tuples that could
        never be stored (wrong arity, ill-typed values such as booleans in
        numerical columns) are simply not members rather than false hits of
        the raw-tuple lookup.
        """
        try:
            normalised = self._schema.validate_tuple(values)
        except SchemaError:
            return False
        return normalised in self._seen

    def tuples(self) -> tuple[tuple[Value, ...], ...]:
        """All tuples, in insertion order."""
        return tuple(self._tuples)

    def column(self, name: str) -> tuple[Value, ...]:
        """All values of the named column, in insertion order."""
        index = self._schema.position(name)
        return tuple(row[index] for row in self._tuples)

    def base_nulls(self) -> set:
        """Base-type nulls occurring anywhere in the relation."""
        return {value for row in self._tuples for value in row if is_base_null(value)}

    def num_nulls(self) -> set:
        """Numerical-type nulls occurring anywhere in the relation."""
        return {value for row in self._tuples for value in row if is_num_null(value)}

    def base_constants(self) -> set:
        """Base-type constants occurring anywhere in the relation."""
        positions = self._schema.base_positions()
        return {row[index] for row in self._tuples for index in positions
                if not is_base_null(row[index])}

    def num_constants(self) -> set[float]:
        """Numerical constants occurring anywhere in the relation."""
        positions = self._schema.numeric_positions()
        return {float(row[index]) for row in self._tuples for index in positions
                if is_numeric_constant(row[index])}

    def copy(self) -> "Relation":
        """A deep copy (tuples are immutable, so sharing them is safe)."""
        duplicate = Relation(self._schema)
        duplicate._tuples = list(self._tuples)
        duplicate._seen = set(self._seen)
        return duplicate

    def map_values(self, mapping) -> "Relation":
        """A new relation with every value passed through ``mapping(value)``."""
        result = Relation(self._schema)
        for row in self._tuples:
            result.add(tuple(mapping(value) for value in row))
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.name}, {len(self)} tuples)"
