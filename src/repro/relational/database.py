"""Incomplete databases over the two-sorted schema.

A :class:`Database` holds one relation per schema relation and exposes the
inventories the paper's definitions are phrased in terms of: the base and
numerical constants appearing in the database (``C_base(D)``, ``C_num(D)``)
and its base and numerical nulls (``N_base(D)``, ``N_num(D)``).

Two storage backends are supported behind the same interface:

* ``backend="rows"`` -- :class:`~repro.relational.relation.Relation`, Python
  tuples in a list.  The reference representation; every code path was
  originally written against it.
* ``backend="columnar"`` -- :class:`~repro.relational.columnar.
  ColumnarRelation`, one NumPy array per column.  The vectorized join
  engine (:mod:`repro.engine.vectorized`) requires it; everything else
  works on either backend through the shared relation protocol.

``with_backend`` converts losslessly in both directions (up to numeric
widening of ``int`` constants to the equal ``float``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Sequence

from repro.relational.columnar import ColumnarRelation
from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, RelationSchema, SchemaError
from repro.relational.values import BaseNull, NumNull, Value

#: The supported storage backends.
BACKENDS = ("rows", "columnar")


class Database:
    """A database instance: one relation per relation schema, nulls allowed.

    ``shards`` declares how many key-aligned partitions the sharded
    execution path (:mod:`repro.relational.sharding`) should split each
    relation into at query time; ``shards=1`` (the default) keeps every
    engine on its unsharded path.  The value is a property of the snapshot,
    not of the storage: partitions are computed lazily per (table, key
    column) when a shardable query first needs them and cached until the
    database is mutated.
    """

    def __init__(self, schema: DatabaseSchema, backend: str = "rows",
                 shards: int = 1) -> None:
        if backend not in BACKENDS:
            raise SchemaError(
                f"unknown storage backend {backend!r}; expected one of {BACKENDS}")
        if shards < 1:
            raise SchemaError(f"shard count must be at least 1, got {shards}")
        relation_class = ColumnarRelation if backend == "columnar" else Relation
        self._schema = schema
        self._backend = backend
        self._shards = int(shards)
        #: ``(table, key column, shard count) -> list[RelationShard]``; small
        #: (one entry per distinct join key actually queried) and dropped on
        #: any mutation.
        self._shard_cache: dict = {}
        self._relations: dict[str, Relation] = {
            relation_schema.name: relation_class(relation_schema)
            for relation_schema in schema
        }
        # -- MVCC version chain (see repro.relational.mutation) -------------
        #: Monotone snapshot counter; bumped by every committed mutation.
        self._data_version = 0
        #: Per-table version of the last mutation touching the table at all
        #: (plan caches key on these, so untouched tables stay warm).
        self._table_versions: dict[str, int] = {
            name: 0 for name in self._relations}
        #: Per-table version of the last *non-append* mutation (deletes and
        #: updates shift row indices; appends do not).  The incremental
        #: frontier maintenance is only sound against snapshots whose
        #: epochs have not moved past the cached version.
        self._table_epochs: dict[str, int] = {
            name: 0 for name in self._relations}
        #: Identity of this snapshot's version chain: shared by every
        #: snapshot committed from this one, distinct for converted copies.
        self._version_token: object = object()

    # -- construction ------------------------------------------------------

    @classmethod
    def from_dict(cls, schema: DatabaseSchema,
                  contents: Mapping[str, Iterable[Sequence[Value]]],
                  backend: str = "rows") -> "Database":
        """Build a database from ``{relation name: iterable of tuples}``."""
        database = cls(schema, backend=backend)
        for name, rows in contents.items():
            for row in rows:
                database.add(name, row)
        return database

    def add(self, relation_name: str, values: Sequence[Value]) -> None:
        """Insert a tuple into the named relation."""
        if relation_name not in self._relations:
            raise SchemaError(f"unknown relation {relation_name!r}")
        self._shard_cache.clear()
        self._relations[relation_name].add(values)

    def install_relation(self, relation) -> None:
        """Replace a relation wholesale with a bulk-built instance.

        The entry point for bulk loaders (the columnar data generator, bulk
        imports) that build a relation outside the database and hand it
        over: the relation must be declared by this database's schema and
        stored in this database's backend, so the per-backend invariants
        the tuple-at-a-time path maintains keep holding.
        """
        name = relation.name
        if name not in self._relations:
            raise SchemaError(f"unknown relation {name!r}")
        if relation.schema != self._schema.relation(name):
            raise SchemaError(
                f"relation {name!r} does not match the database schema")
        expected = ColumnarRelation if self._backend == "columnar" else Relation
        if not isinstance(relation, expected):
            raise SchemaError(
                f"relation {name!r} is not a {expected.__name__}; this "
                f"database uses the {self._backend!r} backend")
        self._shard_cache.clear()
        # Wholesale replacement is indistinguishable from arbitrary deletes
        # and rewrites: start a new version chain, so anything cached
        # against the old chain token never treats the old content as a
        # prefix of the new.
        self._version_token = object()
        self._relations[name] = relation

    def copy(self) -> "Database":
        """A deep copy (tuples are immutable, so sharing them is safe).

        The copy keeps the version numbers but starts its own version
        chain (fresh token): the original and the copy may diverge
        independently, so incremental state cached against one must never
        be applied to the other.
        """
        duplicate = Database(self._schema, backend=self._backend,
                             shards=self._shards)
        for name, relation in self._relations.items():
            duplicate._relations[name] = relation.copy()
        duplicate._data_version = self._data_version
        duplicate._table_versions = dict(self._table_versions)
        duplicate._table_epochs = dict(self._table_epochs)
        return duplicate

    def with_backend(self, backend: str,
                     shards: Optional[int] = None) -> "Database":
        """This database under the requested storage backend.

        Returns ``self`` when the backend (and requested shard count)
        already match (databases are treated as stable snapshots throughout
        the service layer); otherwise converts every relation.  Conversion
        preserves content and tuple order exactly, so query answers and
        lineage formulas are identical across backends.  ``shards``
        overrides the snapshot's shard count; ``None`` carries it over.
        """
        if backend not in BACKENDS:
            raise SchemaError(
                f"unknown storage backend {backend!r}; expected one of {BACKENDS}")
        if backend == self._backend:
            return self if shards is None else self.with_shards(shards)
        converted = Database(self._schema, backend=backend,
                             shards=self._shards if shards is None else shards)
        for name, relation in self._relations.items():
            if backend == "columnar":
                converted._relations[name] = ColumnarRelation.from_relation(relation)
            else:
                converted._relations[name] = relation.to_relation()
        # Same content, same version numbers -- but a fresh chain token:
        # the converted snapshot evolves independently of its source.
        converted._data_version = self._data_version
        converted._table_versions = dict(self._table_versions)
        converted._table_epochs = dict(self._table_epochs)
        return converted

    def with_shards(self, shards: int) -> "Database":
        """A snapshot view of this database with a different shard count.

        Relations are shared, not copied (they are immutable snapshots in
        every sharded code path), so this is cheap enough to call per
        request; the partition cache is *not* shared because its entries
        are keyed by shard count anyway.
        """
        if shards == self._shards:
            return self
        view = Database(self._schema, backend=self._backend, shards=shards)
        view._relations = self._relations
        # Shared on purpose: entries are keyed by shard count, and sharing
        # means a mutation through either view invalidates both.
        view._shard_cache = self._shard_cache
        # A view over the same relations *is* the same snapshot: share the
        # chain identity and the version bookkeeping outright.
        view._data_version = self._data_version
        view._table_versions = self._table_versions
        view._table_epochs = self._table_epochs
        view._version_token = self._version_token
        return view

    # -- access ------------------------------------------------------------

    @property
    def schema(self) -> DatabaseSchema:
        return self._schema

    @property
    def backend(self) -> str:
        """Which storage backend this database uses (``rows`` or ``columnar``)."""
        return self._backend

    @property
    def shards(self) -> int:
        """How many shards the sharded execution path splits relations into."""
        return self._shards

    # -- MVCC version chain --------------------------------------------------

    @property
    def data_version(self) -> int:
        """Monotone version of this snapshot (0 for a freshly built database)."""
        return self._data_version

    @property
    def version_token(self) -> object:
        """Identity of this snapshot's version chain (see the mutation docs)."""
        return self._version_token

    def table_version(self, name: str) -> int:
        """Version of the last committed mutation that touched ``name``."""
        return self._table_versions.get(name, 0)

    def table_epoch(self, name: str) -> int:
        """Version of the last committed *non-append* mutation of ``name``."""
        return self._table_epochs.get(name, 0)

    def version_info(self) -> dict:
        """The snapshot's version metadata, for stats and wire reporting."""
        return {"data_version": self._data_version,
                "table_versions": dict(self._table_versions)}

    def begin_mutation(self):
        """Open a staged mutation against this snapshot.

        Returns a :class:`~repro.relational.mutation.Mutation`; staging
        never modifies this snapshot, and ``commit()`` seals a *new*
        database at ``data_version + 1``.  Writers must be serialised by
        the caller (the service holds a writer lock); readers need no
        coordination at all -- they keep the snapshot they started on.
        """
        from repro.relational.mutation import Mutation
        return Mutation(self)

    def _commit_mutation(self, rebuilt: Mapping[str, object],
                         deltas: Mapping[str, object]) -> "Database":
        """Seal a committed mutation into the next-version snapshot.

        Called by :meth:`Mutation.commit` with the incrementally rebuilt
        relations of the touched tables and their deltas.  Untouched
        tables share their relation objects; the partition cache carries
        over per-shard (extended for append-only tables, dropped only for
        tables with deletes).
        """
        from repro.relational.mutation import extend_shard_cache

        sealed = Database(self._schema, backend=self._backend,
                          shards=self._shards)
        sealed._relations = {
            name: rebuilt.get(name, relation)
            for name, relation in self._relations.items()}
        sealed._data_version = self._data_version + 1
        sealed._version_token = self._version_token
        sealed._table_versions = dict(self._table_versions)
        sealed._table_epochs = dict(self._table_epochs)
        for table, delta in deltas.items():
            sealed._table_versions[table] = sealed._data_version
            if not delta.append_only:
                sealed._table_epochs[table] = sealed._data_version
        # Concurrent readers may be filling the parent's cache right now;
        # copy the dict once so carryover iterates a stable view.
        sealed._shard_cache = extend_shard_cache(
            dict(self._shard_cache), deltas, sealed._relations)
        return sealed

    def table_shards(self, table: str, key_column: Optional[str],
                     shard_count: int):
        """The named table's partition for ``(key_column, shard_count)``.

        Returns ``(shards, hit)`` where ``shards`` is the cached-or-computed
        ``list[RelationShard]`` and ``hit`` says whether the partition cache
        already held it.  Only meaningful on the columnar backend (the
        sharded engine is the sole caller); partitions are invalidated by
        any mutation of the database.
        """
        from repro.relational.sharding import shard_relation

        key = (table, key_column, shard_count)
        cached = self._shard_cache.get(key)
        if cached is not None:
            return cached, True
        key_columns = None if key_column is None else (key_column,)
        computed = shard_relation(self.relation(table), shard_count,
                                  key_columns)
        self._shard_cache[key] = computed
        return computed, False

    def clear_shard_cache(self) -> None:
        """Drop cached partitions (mutations do this automatically)."""
        self._shard_cache.clear()

    def relation(self, name: str) -> Relation:
        if name not in self._relations:
            raise SchemaError(f"unknown relation {name!r}")
        return self._relations[name]

    def relation_schema(self, name: str) -> RelationSchema:
        return self._schema.relation(name)

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations.keys())

    def total_tuples(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(relation) for relation in self._relations.values())

    # -- inventories (C_base(D), C_num(D), N_base(D), N_num(D)) -------------

    def base_constants(self) -> set:
        """``C_base(D)``: base-type constants appearing in the database."""
        constants: set = set()
        for relation in self._relations.values():
            constants.update(relation.base_constants())
        return constants

    def num_constants(self) -> set[float]:
        """``C_num(D)``: numerical constants appearing in the database."""
        constants: set[float] = set()
        for relation in self._relations.values():
            constants.update(relation.num_constants())
        return constants

    def base_nulls(self) -> set[BaseNull]:
        """``N_base(D)``: base-type nulls appearing in the database."""
        nulls: set[BaseNull] = set()
        for relation in self._relations.values():
            nulls.update(relation.base_nulls())
        return nulls

    def num_nulls(self) -> set[NumNull]:
        """``N_num(D)``: numerical-type nulls appearing in the database."""
        nulls: set[NumNull] = set()
        for relation in self._relations.values():
            nulls.update(relation.num_nulls())
        return nulls

    def num_nulls_ordered(self) -> tuple[NumNull, ...]:
        """Numerical nulls in a deterministic order (sorted by name).

        The translation to a constraint formula and the samplers need a fixed
        correspondence between nulls and vector coordinates; sorting by name
        makes that correspondence reproducible across runs.
        """
        return tuple(sorted(self.num_nulls(), key=lambda null: null.name))

    def is_complete(self) -> bool:
        """Whether the database contains no nulls at all."""
        return not self.base_nulls() and not self.num_nulls()

    def map_values(self, mapping) -> "Database":
        """A new database with every stored value passed through ``mapping``."""
        result = Database(self._schema, backend=self._backend)
        for name, relation in self._relations.items():
            result._relations[name] = relation.map_values(mapping)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = ", ".join(f"{name}={len(relation)}"
                           for name, relation in self._relations.items())
        return f"Database({counts})"
