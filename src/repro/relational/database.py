"""Incomplete databases over the two-sorted schema.

A :class:`Database` holds one :class:`~repro.relational.relation.Relation`
per schema relation and exposes the inventories the paper's definitions are
phrased in terms of: the base and numerical constants appearing in the
database (``C_base(D)``, ``C_num(D)``) and its base and numerical nulls
(``N_base(D)``, ``N_num(D)``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.relational.relation import Relation
from repro.relational.schema import DatabaseSchema, RelationSchema, SchemaError
from repro.relational.values import (
    BaseNull,
    NumNull,
    Value,
    is_base_null,
    is_num_null,
    is_numeric_constant,
)


class Database:
    """A database instance: one relation per relation schema, nulls allowed."""

    def __init__(self, schema: DatabaseSchema) -> None:
        self._schema = schema
        self._relations: dict[str, Relation] = {
            relation_schema.name: Relation(relation_schema)
            for relation_schema in schema
        }

    # -- construction ------------------------------------------------------

    @classmethod
    def from_dict(cls, schema: DatabaseSchema,
                  contents: Mapping[str, Iterable[Sequence[Value]]]) -> "Database":
        """Build a database from ``{relation name: iterable of tuples}``."""
        database = cls(schema)
        for name, rows in contents.items():
            for row in rows:
                database.add(name, row)
        return database

    def add(self, relation_name: str, values: Sequence[Value]) -> None:
        """Insert a tuple into the named relation."""
        if relation_name not in self._relations:
            raise SchemaError(f"unknown relation {relation_name!r}")
        self._relations[relation_name].add(values)

    def copy(self) -> "Database":
        """A deep copy (tuples are immutable, so sharing them is safe)."""
        duplicate = Database(self._schema)
        for name, relation in self._relations.items():
            duplicate._relations[name].extend(relation)
        return duplicate

    # -- access ------------------------------------------------------------

    @property
    def schema(self) -> DatabaseSchema:
        return self._schema

    def relation(self, name: str) -> Relation:
        if name not in self._relations:
            raise SchemaError(f"unknown relation {name!r}")
        return self._relations[name]

    def relation_schema(self, name: str) -> RelationSchema:
        return self._schema.relation(name)

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations.keys())

    def total_tuples(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(relation) for relation in self._relations.values())

    # -- inventories (C_base(D), C_num(D), N_base(D), N_num(D)) -------------

    def base_constants(self) -> set:
        """``C_base(D)``: base-type constants appearing in the database."""
        constants: set = set()
        for relation in self._relations.values():
            base_positions = relation.schema.base_positions()
            for row in relation:
                for index in base_positions:
                    value = row[index]
                    if not is_base_null(value):
                        constants.add(value)
        return constants

    def num_constants(self) -> set[float]:
        """``C_num(D)``: numerical constants appearing in the database."""
        constants: set[float] = set()
        for relation in self._relations.values():
            numeric_positions = relation.schema.numeric_positions()
            for row in relation:
                for index in numeric_positions:
                    value = row[index]
                    if is_numeric_constant(value):
                        constants.add(float(value))
        return constants

    def base_nulls(self) -> set[BaseNull]:
        """``N_base(D)``: base-type nulls appearing in the database."""
        nulls: set[BaseNull] = set()
        for relation in self._relations.values():
            nulls.update(relation.base_nulls())
        return nulls

    def num_nulls(self) -> set[NumNull]:
        """``N_num(D)``: numerical-type nulls appearing in the database."""
        nulls: set[NumNull] = set()
        for relation in self._relations.values():
            nulls.update(relation.num_nulls())
        return nulls

    def num_nulls_ordered(self) -> tuple[NumNull, ...]:
        """Numerical nulls in a deterministic order (sorted by name).

        The translation to a constraint formula and the samplers need a fixed
        correspondence between nulls and vector coordinates; sorting by name
        makes that correspondence reproducible across runs.
        """
        return tuple(sorted(self.num_nulls(), key=lambda null: null.name))

    def is_complete(self) -> bool:
        """Whether the database contains no nulls at all."""
        return not self.base_nulls() and not self.num_nulls()

    def map_values(self, mapping) -> "Database":
        """A new database with every stored value passed through ``mapping``."""
        result = Database(self._schema)
        for name, relation in self._relations.items():
            result._relations[name] = relation.map_values(mapping)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = ", ".join(f"{name}={len(relation)}"
                           for name, relation in self._relations.items())
        return f"Database({counts})"
