"""MVCC mutations: versioned snapshots with incremental storage maintenance.

A :class:`Database` is treated as an immutable snapshot throughout the
service and server layers; mutations therefore never modify a snapshot in
place.  :meth:`Database.begin_mutation` opens a :class:`Mutation` against
the current snapshot; the caller stages inserts, deletes and updates
through it; :meth:`Mutation.commit` seals a **new** snapshot carrying the
next ``data_version``.  Readers that captured the old snapshot keep every
object they were handed -- relations, shard partitions, column arrays --
untouched, which is the whole MVCC contract: writers never block readers,
readers never observe a torn version.

The sealed snapshot is built incrementally, not rebuilt:

* untouched tables share their relation objects with the parent snapshot
  outright;
* an append-only table shares its sealed column arrays and appends the new
  rows as a tail segment (:meth:`ColumnarRelation` dictionary merges keep
  existing row codes stable);
* a table with deletes gathers its kept rows with one fancy-indexing pass
  per column (:meth:`ColumnarRelation.take`) -- logically a deletion
  bitmap applied at commit time -- then appends;
* cached shard partitions carry over: untouched tables keep their
  entries, append-only tables extend only the shards the new rows' key
  hashes land in, and only deletes drop a table's partitions.

Row order of the sealed snapshot is exactly the order a from-scratch
rebuild of the same logical content would produce (kept rows in their
original order, inserted rows appended in statement order), which is what
lets the versioned differential harness demand bit-identical candidates,
witness order, lineage digests and certainties at every version.

Errors are typed for the wire protocol: :class:`MutationConflictError`
(``conflict``) for duplicate rows, :class:`MutationValidationError`
(``validation``) for schema/typing violations.  A mutation that raises
leaves the parent snapshot untouched -- statements are atomic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.relational.columnar import ColumnarRelation
from repro.relational.relation import Relation
from repro.relational.schema import SchemaError
from repro.relational.values import Value, is_base_null, is_num_null

__all__ = [
    "Mutation",
    "MutationConflictError",
    "MutationError",
    "MutationValidationError",
    "TableDelta",
]


class MutationError(ValueError):
    """Base class of typed mutation failures; ``code`` is the wire code."""

    code = "validation"


class MutationValidationError(MutationError):
    """The staged change violates the schema or the statement's typing."""

    code = "validation"


class MutationConflictError(MutationError):
    """The staged change collides with an existing row (set semantics)."""

    code = "conflict"


@dataclass(frozen=True)
class TableDelta:
    """What one committed mutation did to one table.

    ``deleted_rows`` holds the removed tuples themselves (not indices):
    the service's delta-driven invalidation needs the nulls those rows
    carried, and the rows are already materialised at delete time.
    ``appended`` counts rows added at the tail; ``old_length`` is the
    table's row count in the parent snapshot.
    """

    table: str
    old_length: int
    appended: int
    deleted_rows: tuple[tuple[Value, ...], ...] = ()

    @property
    def append_only(self) -> bool:
        return not self.deleted_rows

    def touched_nulls(self) -> frozenset[str]:
        """Names of the marked nulls occurring in the deleted rows."""
        names = set()
        for row in self.deleted_rows:
            for value in row:
                if is_base_null(value) or is_num_null(value):
                    names.add(value.name)
        return frozenset(names)


class _TableEdit:
    """The staged state of one table inside an open mutation."""

    def __init__(self, relation) -> None:
        self.relation = relation
        self.old_length = len(relation)
        #: Live membership set: parent rows minus deletes plus inserts.
        #: ``_seen_set`` reuses (and caches) the relation's own set, so a
        #: bulk-loaded table pays the row materialisation once, ever.
        if isinstance(relation, ColumnarRelation):
            self.seen: set[tuple[Value, ...]] = set(relation._seen_set())
        else:
            self.seen = set(relation._seen)
        self.inserts: list[tuple[Value, ...]] = []
        self.deleted: dict[int, tuple[Value, ...]] = {}


class Mutation:
    """Staged inserts/deletes/updates against one database snapshot.

    Obtained from :meth:`Database.begin_mutation`; not thread-safe (the
    service serialises writers).  All staging methods validate eagerly and
    raise typed errors without touching the parent snapshot; only
    :meth:`commit` produces the new version.
    """

    def __init__(self, database) -> None:
        self._database = database
        self._edits: dict[str, _TableEdit] = {}
        self._committed = False

    # -- staging -----------------------------------------------------------

    def _edit(self, table: str) -> _TableEdit:
        if self._committed:
            raise MutationValidationError("mutation already committed")
        if table not in self._database.relation_names():
            raise MutationValidationError(f"unknown relation {table!r}")
        edit = self._edits.get(table)
        if edit is None:
            edit = _TableEdit(self._database.relation(table))
            self._edits[table] = edit
        return edit

    def insert(self, table: str, values: Sequence[Value]) -> tuple[Value, ...]:
        """Stage one row for insertion; returns the normalised tuple."""
        edit = self._edit(table)
        try:
            normalised = edit.relation.schema.validate_tuple(values)
        except SchemaError as error:
            raise MutationValidationError(str(error)) from error
        if normalised in edit.seen:
            raise MutationConflictError(
                f"duplicate row in {table!r}: {normalised!r}")
        edit.seen.add(normalised)
        edit.inserts.append(normalised)
        return normalised

    def delete(self, table: str, row_index: int) -> tuple[Value, ...]:
        """Stage the deletion of the row at ``row_index`` (parent snapshot
        numbering); returns the removed tuple."""
        edit = self._edit(table)
        if not 0 <= row_index < edit.old_length:
            raise MutationValidationError(
                f"row index {row_index} out of range for {table!r} "
                f"({edit.old_length} rows)")
        if row_index in edit.deleted:
            raise MutationConflictError(
                f"row {row_index} of {table!r} deleted twice in one mutation")
        if isinstance(edit.relation, ColumnarRelation):
            row = edit.relation.row(row_index)
        else:
            row = edit.relation.tuples()[row_index]
        edit.deleted[row_index] = row
        edit.seen.discard(row)
        return row

    def update(self, table: str, row_index: int,
               values: Sequence[Value]) -> tuple[Value, ...]:
        """Stage an update as delete-then-insert: the new row lands at the
        tail, exactly where a replayed from-scratch build would put it."""
        self.delete(table, row_index)
        return self.insert(table, values)

    def staged_counts(self) -> dict[str, tuple[int, int]]:
        """``{table: (inserted, deleted)}`` of the changes staged so far."""
        return {table: (len(edit.inserts), len(edit.deleted))
                for table, edit in self._edits.items()}

    # -- sealing -----------------------------------------------------------

    def commit(self):
        """Seal the staged changes into a new immutable snapshot.

        Returns ``(database, deltas)``: the next-version :class:`Database`
        and a ``{table: TableDelta}`` of what changed.  The parent snapshot
        is never modified; committing an empty mutation still produces a
        new version (callers normally avoid that).
        """
        if self._committed:
            raise MutationValidationError("mutation already committed")
        self._committed = True
        deltas: dict[str, TableDelta] = {}
        rebuilt: dict[str, object] = {}
        for table, edit in self._edits.items():
            if not edit.inserts and not edit.deleted:
                continue
            deltas[table] = TableDelta(
                table=table,
                old_length=edit.old_length,
                appended=len(edit.inserts),
                deleted_rows=tuple(edit.deleted[index]
                                   for index in sorted(edit.deleted)))
            rebuilt[table] = self._rebuild(edit)
        return self._database._commit_mutation(rebuilt, deltas), deltas

    def _rebuild(self, edit: _TableEdit):
        relation = edit.relation
        if isinstance(relation, ColumnarRelation):
            if edit.deleted:
                kept = np.setdiff1d(
                    np.arange(edit.old_length, dtype=np.int64),
                    np.asarray(sorted(edit.deleted), dtype=np.int64),
                    assume_unique=True)
                base = relation.take(kept)
            else:
                base = relation
            rebuilt = base.with_appended(edit.inserts)
            # Hand over the membership set maintained while staging, so the
            # next mutation of this table never re-materialises the rows.
            rebuilt._seen = edit.seen
            return rebuilt
        kept_rows = [row for index, row in enumerate(relation.tuples())
                     if index not in edit.deleted]
        rebuilt = Relation(relation.schema)
        rebuilt._tuples = kept_rows + edit.inserts
        rebuilt._seen = edit.seen
        return rebuilt


def extend_shard_cache(parent_cache: dict, deltas: dict[str, TableDelta],
                       relations: dict) -> dict:
    """The new snapshot's partition cache, maintained incrementally.

    * entries of untouched tables carry over unchanged (their shard
      objects reference the very relation the new snapshot shares);
    * entries of append-only tables are *extended*: the new rows are
      hashed with the same key scheme and appended only to the shards they
      land in, preserving ascending offsets and the take-compacted
      relation/offsets contract of :func:`shard_relation`;
    * entries of tables with deletes are dropped (row indices shifted).

    ``relations`` maps table name to the **new** snapshot's relation (used
    to slice out the appended segment for hashing).
    """
    from repro.relational.sharding import RelationShard, partition_rows

    carried: dict = {}
    for key, shard_list in parent_cache.items():
        table, key_column, shard_count = key
        delta = deltas.get(table)
        if delta is None:
            carried[key] = shard_list
            continue
        if not delta.append_only or not isinstance(
                relations.get(table), ColumnarRelation):
            continue  # deletes shift row indices: recompute on demand
        relation = relations[table]
        appended = relation.take(np.arange(
            delta.old_length, delta.old_length + delta.appended,
            dtype=np.int64))
        if key_column is None:
            # Round-robin assignment is by global row index, so the new
            # rows' shards follow from their tail positions directly.
            tail = np.arange(delta.old_length,
                             delta.old_length + delta.appended,
                             dtype=np.uint64)
            partitions = [
                np.flatnonzero(tail % np.uint64(shard_count) ==
                               np.uint64(shard)).astype(np.int64)
                for shard in range(shard_count)]
        else:
            partitions = partition_rows(appended, shard_count, (key_column,))
        extended = []
        for shard, shard_obj in enumerate(shard_list):
            local = partitions[shard]
            if len(local) == 0:
                extended.append(shard_obj)
                continue
            rows = [appended.row(int(index)) for index in local.tolist()]
            extended.append(RelationShard(
                relation=shard_obj.relation.with_appended(rows),
                offsets=np.concatenate([
                    np.asarray(shard_obj.offsets, dtype=np.int64),
                    local + delta.old_length])))
        carried[key] = extended
    return carried
