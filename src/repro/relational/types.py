"""Attribute types of the two-sorted data model (Section 3 of the paper)."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AttributeType(enum.Enum):
    """The two column types of the paper's model.

    ``BASE`` corresponds to the usual single-domain assumption of the
    incomplete-databases literature (values compared only for equality);
    ``NUM`` columns take values in a subset of the real numbers and support
    arithmetic and order comparisons in queries.
    """

    BASE = "base"
    NUM = "num"

    @property
    def is_numeric(self) -> bool:
        return self is AttributeType.NUM


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation."""

    name: str
    type: AttributeType

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("attribute name must be non-empty")

    @classmethod
    def base(cls, name: str) -> "Attribute":
        """A base-type attribute."""
        return cls(name=name, type=AttributeType.BASE)

    @classmethod
    def num(cls, name: str) -> "Attribute":
        """A numerical-type attribute."""
        return cls(name=name, type=AttributeType.NUM)

    @property
    def is_numeric(self) -> bool:
        return self.type.is_numeric

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.name}:{self.type.value}"
