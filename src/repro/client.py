"""Python client for the repro network server (sync and async).

Both clients speak the TCP NDJSON protocol of :mod:`repro.server.protocol`
and decode wire payloads back into the same objects the in-process service
returns -- :class:`~repro.service.answers.AnnotatedAnswer` with a full
:class:`~repro.certainty.result.CertaintyResult` and the canonical-lineage
digest -- so remote answers are drop-in (and, by construction of the
protocol, bit-identical) replacements for local ones.

Synchronous usage::

    from repro.client import ReproClient

    with ReproClient("127.0.0.1", 7464) as client:
        result = client.query("SELECT P.id FROM Products P WHERE P.rrp <= 40")
        for answer in result.answers:
            print(answer.values, answer.certainty.value)

Streaming an adaptive request (each tightened interval as it lands)::

    for event in client.stream("SELECT ...", adaptive=True):
        if isinstance(event, AdaptiveUpdateEvent):
            print(event.lineage, event.interval)
        else:                       # the terminal QueryResult
            result = event

Mutations travel the same connection -- ``client.mutate("INSERT INTO
...")`` returns a :class:`MutationResult` with the committed
``data_version``; typed rejections (``validation``, ``conflict``) raise
:class:`ServerError` with that code.

Asynchronous usage mirrors it one-to-one (``AsyncReproClient``, ``await
client.query(...)``, ``async for event in client.stream(...)``).  One
client drives one connection and one request at a time; open more clients
for concurrency -- the server coalesces duplicate in-flight queries across
connections on its own.
"""

from __future__ import annotations

import asyncio
import socket
from dataclasses import dataclass
from typing import Any, AsyncIterator, Iterator, Optional, Union

from repro.server.protocol import (
    MAX_LINE_BYTES,
    TRACEPARENT_KEY,
    ProtocolError,
    decode_answer,
    dump_line,
    load_line,
)
from repro.service.answers import AnnotatedAnswer


class ClientError(Exception):
    """Transport-level failure: connection refused, dropped, or garbled."""


class ServerError(ClientError):
    """A typed error event reported by the server."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class OverloadedError(ServerError):
    """The server rejected the request under admission control."""


def _server_error(event: dict) -> ServerError:
    code = event.get("code", "internal")
    message = event.get("message", "")
    if code in ("overloaded", "draining"):
        return OverloadedError(code, message)
    return ServerError(code, message)


@dataclass(frozen=True)
class AdaptiveUpdateEvent:
    """One streamed refinement of one lineage group, as received."""

    lineage: str
    stage: int
    stages: int
    epsilon: Optional[float]
    value: float
    interval: tuple[float, float]
    samples: int
    final: bool


@dataclass(frozen=True)
class QueryResult:
    """Decoded terminal response of one query."""

    answers: tuple[AnnotatedAnswer, ...]
    stats: dict
    raw: dict

    @property
    def trace_id(self) -> Optional[str]:
        """The distributed trace id this query ran under (observing
        servers stamp it on the terminal event; fetch the stitched span
        tree with :meth:`ReproClient.trace_export`)."""
        return self.raw.get("trace_id")


@dataclass(frozen=True)
class MutationResult:
    """Decoded terminal response of one committed mutation statement."""

    operation: str
    table: str
    inserted: int
    deleted: int
    #: The snapshot version the statement committed; queries answered
    #: afterwards see at least this version.
    data_version: int
    raw: dict

    @property
    def trace_id(self) -> Optional[str]:
        return self.raw.get("trace_id")


#: What :meth:`stream` yields: updates while refining, the result last.
StreamEvent = Union[AdaptiveUpdateEvent, QueryResult]


def _decode_update(event: dict) -> AdaptiveUpdateEvent:
    low, high = event["interval"]
    return AdaptiveUpdateEvent(
        lineage=event["lineage"], stage=event["stage"], stages=event["stages"],
        epsilon=event.get("epsilon"), value=event["value"],
        interval=(low, high), samples=event["samples"], final=event["final"])


def _decode_result(event: dict) -> QueryResult:
    return QueryResult(
        answers=tuple(decode_answer(payload) for payload in event["answers"]),
        stats=dict(event.get("stats", {})),
        raw=event)


def _query_message(request_id: Any, sql: str, options: dict,
                   traceparent: Optional[str] = None) -> dict:
    supplied = {key: value for key, value in options.items()
                if value is not None}
    message = {"op": "query", "id": request_id, "sql": sql,
               "options": supplied}
    if traceparent is not None:
        # Trace context rides outside ``options`` on purpose: it must not
        # change the request's coalescing identity.
        message[TRACEPARENT_KEY] = traceparent
    return message


def _decode_mutation(event: dict) -> MutationResult:
    return MutationResult(
        operation=event["operation"], table=event["table"],
        inserted=event["inserted"], deleted=event["deleted"],
        data_version=event["data_version"], raw=event)


class ReproClient:
    """Blocking client over one TCP connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7464,
                 timeout: Optional[float] = 60.0) -> None:
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as error:
            raise ClientError(f"cannot connect to {host}:{port}: {error}")
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # -- plumbing ------------------------------------------------------------

    def _roundtrip_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _send(self, message: dict) -> None:
        try:
            self._file.write(dump_line(message))
            self._file.flush()
        except OSError as error:
            raise ClientError(f"connection lost while sending: {error}")

    def _recv(self, expect_id: Any) -> dict:
        try:
            line = self._file.readline(MAX_LINE_BYTES)
        except OSError as error:
            raise ClientError(f"connection lost while receiving: {error}")
        if not line:
            raise ClientError("server closed the connection")
        try:
            event = load_line(line)
        except ProtocolError as error:
            raise ClientError(f"garbled response: {error}")
        if event.get("id") != expect_id:
            raise ClientError(
                f"response id {event.get('id')!r} does not match "
                f"request id {expect_id!r}")
        return event

    # -- queries -------------------------------------------------------------

    def _drain_request(self, request_id: Any) -> None:
        """Eat a request's remaining events so the connection stays usable.

        Runs when a caller abandons :meth:`stream` before the terminal
        event: the server keeps sending for the old request id, and the
        leftover frames would otherwise surface as id-mismatch errors on
        the next request.  Blocks until the server finishes that request.
        """
        try:
            for _ in range(100_000):  # bounded paranoia, not a real limit
                if self._recv(request_id).get("type") in ("result", "error"):
                    return
        except ClientError:
            pass  # connection already gone; nothing left to protect

    def stream(self, sql: str, *, epsilon: Optional[float] = None,
               delta: Optional[float] = None, method: Optional[str] = None,
               limit: Optional[int] = None, seed: Optional[int] = None,
               adaptive: Optional[bool] = None,
               planner: Optional[str] = None,
               traceparent: Optional[str] = None) -> Iterator[StreamEvent]:
        """Yield adaptive updates as they land, then the final result.

        Abandoning the iterator early (``break``) drains the request's
        remaining events on close, blocking until the server finishes it.
        """
        request_id = self._roundtrip_id()
        terminal = False
        try:
            self._send(_query_message(request_id, sql, dict(
                epsilon=epsilon, delta=delta, method=method, limit=limit,
                seed=seed, adaptive=adaptive, planner=planner),
                traceparent=traceparent))
            while True:
                event = self._recv(request_id)
                kind = event.get("type")
                if kind == "update":
                    yield _decode_update(event)
                elif kind == "result":
                    terminal = True
                    yield _decode_result(event)
                    return
                elif kind == "error":
                    terminal = True
                    raise _server_error(event)
                else:
                    raise ClientError(f"unexpected event type {kind!r}")
        finally:
            if not terminal:
                self._drain_request(request_id)

    def query(self, sql: str, on_update=None, **options) -> QueryResult:
        """Run one query to completion (``on_update`` sees streamed stages)."""
        for event in self.stream(sql, **options):
            if isinstance(event, QueryResult):
                return event
            if on_update is not None:
                on_update(event)
        raise ClientError("stream ended without a result")  # pragma: no cover

    def mutate(self, sql: str) -> MutationResult:
        """Apply one INSERT/DELETE/UPDATE statement on the server.

        Raises :class:`ServerError` with the server's typed code
        (``validation``, ``conflict``, ``invalid_query``) when the
        statement is rejected; the server's snapshot is untouched then.
        """
        request_id = self._roundtrip_id()
        self._send({"op": "mutate", "id": request_id, "sql": sql})
        event = self._recv(request_id)
        kind = event.get("type")
        if kind == "mutation":
            return _decode_mutation(event)
        if kind == "error":
            raise _server_error(event)
        raise ClientError(f"unexpected event type {kind!r}")

    # -- auxiliary ops -------------------------------------------------------

    def stats(self) -> dict:
        request_id = self._roundtrip_id()
        self._send({"op": "stats", "id": request_id})
        return self._recv(request_id)["stats"]

    def metrics(self) -> str:
        """The server's Prometheus text exposition (the ``metrics`` op)."""
        request_id = self._roundtrip_id()
        self._send({"op": "metrics", "id": request_id})
        return self._recv(request_id)["metrics"]

    def health(self) -> dict:
        request_id = self._roundtrip_id()
        self._send({"op": "health", "id": request_id})
        event = self._recv(request_id)
        return {key: value for key, value in event.items()
                if key not in ("id", "type")}

    def ping(self) -> bool:
        request_id = self._roundtrip_id()
        self._send({"op": "ping", "id": request_id})
        return self._recv(request_id).get("type") == "pong"

    # -- observability ops ---------------------------------------------------

    def _typed_op(self, message: dict, expect: str) -> dict:
        request_id = self._roundtrip_id()
        self._send({**message, "id": request_id})
        event = self._recv(request_id)
        kind = event.get("type")
        if kind == "error":
            raise _server_error(event)
        if kind != expect:
            raise ClientError(f"unexpected event type {kind!r}")
        return {key: value for key, value in event.items()
                if key not in ("id", "type")}

    def history(self, seconds: Optional[float] = None) -> dict:
        """The server-side metrics history window (tsdb snapshots)."""
        message: dict = {"op": "history"}
        if seconds is not None:
            message["seconds"] = seconds
        return self._typed_op(message, "history")

    def profile(self, seconds: float = 1.0) -> dict:
        """Sample the server (fleet-wide through a coordinator) for
        ``seconds``; the payload carries flamegraph-ready collapsed stacks."""
        return self._typed_op({"op": "profile", "seconds": seconds},
                              "profile")

    def alerts(self) -> dict:
        """SLO burn-rate alert states plus the rolled-up ``firing`` flag."""
        return self._typed_op({"op": "alerts"}, "alerts")

    def trace(self, trace_id: Optional[str] = None) -> dict:
        """One stored trace's raw spans (the latest without an id)."""
        message: dict = {"op": "trace"}
        if trace_id is not None:
            message["trace_id"] = trace_id
        return self._typed_op(message, "trace")

    def trace_export(self, trace_id: Optional[str] = None) -> dict:
        """One stored trace as a Chrome/Perfetto trace-event document
        (stitched across the whole fleet when answered by a coordinator)."""
        message: dict = {"op": "trace_export"}
        if trace_id is not None:
            message["trace_id"] = trace_id
        return self._typed_op(message, "trace_export")

    # -- cluster admin ops (answered by a coordinator front door) ------------

    def _cluster_op(self, message: dict) -> dict:
        request_id = self._roundtrip_id()
        self._send({**message, "id": request_id})
        event = self._recv(request_id)
        if event.get("type") == "error":
            raise _server_error(event)
        if event.get("type") != "cluster":
            raise ClientError(f"unexpected event type {event.get('type')!r}")
        return {key: value for key, value in event.items()
                if key not in ("id", "type")}

    def cluster(self) -> dict:
        """Cluster status: coordinator counters, per-worker states, ring."""
        return self._cluster_op({"op": "cluster"})

    def cluster_drain(self) -> dict:
        """Rolling restart of the coordinator's local workers.

        Blocks until every worker has drained, respawned and replayed the
        mutation log -- give the client a generous timeout.
        """
        return self._cluster_op({"op": "cluster_drain"})

    def cluster_scale(self, workers: int) -> dict:
        """Grow or shrink the local worker pool to ``workers`` members."""
        return self._cluster_op({"op": "cluster_scale", "workers": workers})

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncReproClient:
    """Asyncio client over one TCP connection; mirror of :class:`ReproClient`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._lock = asyncio.Lock()

    @classmethod
    async def connect(cls, host: str = "127.0.0.1",
                      port: int = 7464) -> "AsyncReproClient":
        try:
            reader, writer = await asyncio.open_connection(
                host, port, limit=MAX_LINE_BYTES)
        except OSError as error:
            raise ClientError(f"cannot connect to {host}:{port}: {error}")
        return cls(reader, writer)

    async def _send(self, message: dict) -> None:
        try:
            self._writer.write(dump_line(message))
            await self._writer.drain()
        except OSError as error:
            raise ClientError(f"connection lost while sending: {error}")

    async def _recv(self, expect_id: Any) -> dict:
        try:
            line = await self._reader.readline()
        except OSError as error:
            raise ClientError(f"connection lost while receiving: {error}")
        if not line:
            raise ClientError("server closed the connection")
        try:
            event = load_line(line)
        except ProtocolError as error:
            raise ClientError(f"garbled response: {error}")
        if event.get("id") != expect_id:
            raise ClientError(
                f"response id {event.get('id')!r} does not match "
                f"request id {expect_id!r}")
        return event

    async def _drain_request(self, request_id: Any) -> None:
        """Async twin of :meth:`ReproClient._drain_request`."""
        try:
            for _ in range(100_000):  # bounded paranoia, not a real limit
                event = await self._recv(request_id)
                if event.get("type") in ("result", "error"):
                    return
        except ClientError:
            pass  # connection already gone; nothing left to protect

    async def stream(self, sql: str, *, epsilon: Optional[float] = None,
                     delta: Optional[float] = None,
                     method: Optional[str] = None,
                     limit: Optional[int] = None, seed: Optional[int] = None,
                     adaptive: Optional[bool] = None,
                     planner: Optional[str] = None,
                     traceparent: Optional[str] = None
                     ) -> AsyncIterator[StreamEvent]:
        """Async iterator of adaptive updates, then the final result.

        An abandoned iterator drains its remaining events (and releases
        the per-connection request lock) when the generator is finalised.
        """
        await self._lock.acquire()  # one request at a time per connection
        self._next_id += 1
        request_id = self._next_id
        terminal = False
        try:
            await self._send(_query_message(request_id, sql, dict(
                epsilon=epsilon, delta=delta, method=method, limit=limit,
                seed=seed, adaptive=adaptive, planner=planner),
                traceparent=traceparent))
            while True:
                event = await self._recv(request_id)
                kind = event.get("type")
                if kind == "update":
                    yield _decode_update(event)
                elif kind == "result":
                    terminal = True
                    yield _decode_result(event)
                    return
                elif kind == "error":
                    terminal = True
                    raise _server_error(event)
                else:
                    raise ClientError(f"unexpected event type {kind!r}")
        finally:
            try:
                if not terminal:
                    await self._drain_request(request_id)
            finally:
                self._lock.release()

    async def query(self, sql: str, on_update=None, **options) -> QueryResult:
        async for event in self.stream(sql, **options):
            if isinstance(event, QueryResult):
                return event
            if on_update is not None:
                on_update(event)
        raise ClientError("stream ended without a result")  # pragma: no cover

    async def mutate(self, sql: str) -> MutationResult:
        """Async twin of :meth:`ReproClient.mutate`."""
        async with self._lock:
            self._next_id += 1
            request_id = self._next_id
            await self._send({"op": "mutate", "id": request_id, "sql": sql})
            event = await self._recv(request_id)
        kind = event.get("type")
        if kind == "mutation":
            return _decode_mutation(event)
        if kind == "error":
            raise _server_error(event)
        raise ClientError(f"unexpected event type {kind!r}")

    async def stats(self) -> dict:
        async with self._lock:
            self._next_id += 1
            request_id = self._next_id
            await self._send({"op": "stats", "id": request_id})
            return (await self._recv(request_id))["stats"]

    async def metrics(self) -> str:
        """The server's Prometheus text exposition (the ``metrics`` op)."""
        async with self._lock:
            self._next_id += 1
            request_id = self._next_id
            await self._send({"op": "metrics", "id": request_id})
            return (await self._recv(request_id))["metrics"]

    async def health(self) -> dict:
        async with self._lock:
            self._next_id += 1
            request_id = self._next_id
            await self._send({"op": "health", "id": request_id})
            event = await self._recv(request_id)
            return {key: value for key, value in event.items()
                    if key not in ("id", "type")}

    async def ping(self) -> bool:
        async with self._lock:
            self._next_id += 1
            request_id = self._next_id
            await self._send({"op": "ping", "id": request_id})
            return (await self._recv(request_id)).get("type") == "pong"

    # -- observability ops ---------------------------------------------------

    async def _typed_op(self, message: dict, expect: str) -> dict:
        async with self._lock:
            self._next_id += 1
            request_id = self._next_id
            await self._send({**message, "id": request_id})
            event = await self._recv(request_id)
        kind = event.get("type")
        if kind == "error":
            raise _server_error(event)
        if kind != expect:
            raise ClientError(f"unexpected event type {kind!r}")
        return {key: value for key, value in event.items()
                if key not in ("id", "type")}

    async def history(self, seconds: Optional[float] = None) -> dict:
        """Async twin of :meth:`ReproClient.history`."""
        message: dict = {"op": "history"}
        if seconds is not None:
            message["seconds"] = seconds
        return await self._typed_op(message, "history")

    async def profile(self, seconds: float = 1.0) -> dict:
        """Async twin of :meth:`ReproClient.profile`."""
        return await self._typed_op({"op": "profile", "seconds": seconds},
                                    "profile")

    async def alerts(self) -> dict:
        """Async twin of :meth:`ReproClient.alerts`."""
        return await self._typed_op({"op": "alerts"}, "alerts")

    async def trace(self, trace_id: Optional[str] = None) -> dict:
        """Async twin of :meth:`ReproClient.trace`."""
        message: dict = {"op": "trace"}
        if trace_id is not None:
            message["trace_id"] = trace_id
        return await self._typed_op(message, "trace")

    async def trace_export(self, trace_id: Optional[str] = None) -> dict:
        """Async twin of :meth:`ReproClient.trace_export`."""
        message: dict = {"op": "trace_export"}
        if trace_id is not None:
            message["trace_id"] = trace_id
        return await self._typed_op(message, "trace_export")

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (OSError, asyncio.CancelledError):  # pragma: no cover
            pass

    async def __aenter__(self) -> "AsyncReproClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
