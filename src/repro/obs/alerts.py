"""Declarative SLOs evaluated as multi-window burn-rate alerts.

The alerting model is the multiwindow, multi-burn-rate recipe from the
Google SRE workbook: an :class:`SLO` states what fraction of events must
be *good* (availability: non-error requests; latency: requests under a
threshold), and an alert fires when the **burn rate** -- the observed bad
fraction divided by the SLO's error budget ``1 - objective`` -- exceeds a
threshold over *both* a short and a long trailing window.  The long
window proves the problem is sustained; the short window makes the alert
reset quickly once the problem stops.  Burn thresholds follow the
workbook's canonical pairs, scaled to the tsdb's ~34 min retention:

* **page**: burn > 14.4 over (1 min, 5 min) -- at this rate a 99.9%
  monthly budget is gone in ~2 days;
* **ticket**: burn > 6 over (5 min, 30 min) -- budget gone in ~5 days.

Everything is computed from :class:`~repro.obs.tsdb.TimeSeriesStore`
snapshots -- counter deltas between the newest snapshot and the one at
the window's far edge -- so evaluation is pure arithmetic over data the
server already keeps, needs no extra instrumentation on the hot path, and
degrades gracefully on young processes (windows clamp to the oldest
snapshot available; fractions, not rates, so partial windows stay
meaningful).  No traffic means no burn: an idle server never alerts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class SLO:
    """One service-level objective over counters kept in the tsdb.

    ``total`` names the sample key (rendered exposition name, labels
    included) counting all events.  Availability SLOs list ``bad`` sample
    keys counting failures; latency SLOs instead name a histogram whose
    bucket at ``threshold_seconds`` counts the good events.  The
    effective latency threshold is quantized up to the smallest histogram
    bucket bound >= ``threshold_seconds`` (the fixed log-spaced buckets
    make this a known, stable bound).
    """

    name: str
    objective: float
    total: str
    bad: tuple[str, ...] = ()
    latency_histogram: Optional[str] = None
    threshold_seconds: Optional[float] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective}")
        if self.latency_histogram is not None \
                and self.threshold_seconds is None:
            raise ValueError(
                f"latency SLO {self.name!r} needs threshold_seconds")

    @property
    def kind(self) -> str:
        return "latency" if self.latency_histogram else "availability"


@dataclass(frozen=True)
class BurnWindow:
    """One (short, long) window pair with its burn threshold."""

    severity: str
    short_seconds: float
    long_seconds: float
    threshold: float


#: The canonical page/ticket window pairs (see module docstring).
DEFAULT_WINDOWS: tuple[BurnWindow, ...] = (
    BurnWindow(severity="page", short_seconds=60.0, long_seconds=300.0,
               threshold=14.4),
    BurnWindow(severity="ticket", short_seconds=300.0, long_seconds=1800.0,
               threshold=6.0),
)


def _value(snapshot: dict, key: str) -> float:
    return float(snapshot.get("samples", {}).get(key, 0.0))


def _window_edges(snapshots: Sequence[dict],
                  seconds: float) -> Optional[tuple[dict, dict]]:
    """(oldest-in-window, newest) snapshots for a trailing window, or
    ``None`` when fewer than two snapshots exist.  Clamps to the oldest
    snapshot when history is younger than the window."""
    if len(snapshots) < 2:
        return None
    newest = snapshots[-1]
    cutoff = float(newest["time"]) - seconds
    start = snapshots[0]
    for snap in snapshots:
        if float(snap["time"]) >= cutoff:
            start = snap
            break
    if start is newest:
        start = snapshots[-2]
    return start, newest


def _latency_good_delta(slo: SLO, start: dict, end: dict) -> float:
    """Delta of the good-event bucket: smallest ``le`` >= the threshold."""
    prefix = f"{slo.latency_histogram}_bucket{{"
    by_bound: dict[float, list[str]] = {}
    for key in end.get("samples", {}):
        if not key.startswith(prefix):
            continue
        marker = key.find('le="')
        if marker < 0:
            continue
        closing = key.find('"', marker + 4)
        if closing < 0:
            continue
        raw = key[marker + 4:closing]
        try:
            bound = float("inf") if raw == "+Inf" else float(raw)
        except ValueError:
            continue
        by_bound.setdefault(bound, []).append(key)
    threshold = float(slo.threshold_seconds or 0.0)
    winner = None
    for bound in sorted(by_bound):
        if bound >= threshold - 1e-12:
            winner = bound
            break
    if winner is None:
        return 0.0
    return sum(_value(end, key) - _value(start, key)
               for key in by_bound[winner])


def bad_fraction(slo: SLO, start: dict, end: dict) -> float:
    """The fraction of events in ``[start, end]`` that violated the SLO."""
    total_key = (f"{slo.latency_histogram}_count"
                 if slo.latency_histogram else slo.total)
    total = _value(end, total_key) - _value(start, total_key)
    if total <= 0:
        return 0.0
    if slo.latency_histogram:
        bad = total - _latency_good_delta(slo, start, end)
    else:
        bad = sum(_value(end, key) - _value(start, key) for key in slo.bad)
    return min(max(bad / total, 0.0), 1.0)


class AlertEvaluator:
    """Evaluate a set of SLOs against tsdb history snapshots."""

    def __init__(self, slos: Sequence[SLO],
                 windows: Sequence[BurnWindow] = DEFAULT_WINDOWS) -> None:
        self.slos = tuple(slos)
        self.windows = tuple(windows)

    @property
    def max_window_seconds(self) -> float:
        """How much history one evaluation needs."""
        return max((window.long_seconds for window in self.windows),
                   default=0.0)

    def evaluate(self, snapshots: Sequence[dict]) -> list[dict]:
        """One alert state per (SLO, window pair), firing or not."""
        alerts: list[dict] = []
        for slo in self.slos:
            budget = 1.0 - slo.objective
            for window in self.windows:
                state = {
                    "slo": slo.name,
                    "kind": slo.kind,
                    "objective": slo.objective,
                    "severity": window.severity,
                    "short_window_seconds": window.short_seconds,
                    "long_window_seconds": window.long_seconds,
                    "burn_threshold": window.threshold,
                    "burn_short": 0.0,
                    "burn_long": 0.0,
                    "firing": False,
                }
                if slo.threshold_seconds is not None:
                    state["threshold_seconds"] = slo.threshold_seconds
                short_edges = _window_edges(snapshots, window.short_seconds)
                long_edges = _window_edges(snapshots, window.long_seconds)
                if short_edges is not None and long_edges is not None:
                    burn_short = bad_fraction(slo, *short_edges) / budget
                    burn_long = bad_fraction(slo, *long_edges) / budget
                    state["burn_short"] = round(burn_short, 4)
                    state["burn_long"] = round(burn_long, 4)
                    state["firing"] = (burn_short > window.threshold
                                       and burn_long > window.threshold)
                alerts.append(state)
        return alerts

    def report(self, snapshots: Sequence[dict]) -> dict:
        """The wire shape: every alert state plus one rolled-up flag."""
        alerts = self.evaluate(snapshots)
        return {"alerts": alerts,
                "firing": any(alert["firing"] for alert in alerts)}


def server_slos(prefix: str = "repro_server") -> tuple[SLO, ...]:
    """The default SLO set for one worker/server process."""
    return (
        SLO(name="availability", objective=0.999,
            total=f"{prefix}_requests_total",
            bad=(f'{prefix}_errors_total{{kind="internal"}}',
                 f"{prefix}_overloads_total"),
            description="99.9% of requests complete without internal "
                        "errors or overload rejections"),
        SLO(name="latency", objective=0.95,
            total="repro_request_seconds_count",
            latency_histogram="repro_request_seconds",
            threshold_seconds=1.6,
            description="95% of requests finish within ~1.6s"),
    )


def cluster_slos() -> tuple[SLO, ...]:
    """The default SLO set for the coordinator's front door."""
    return (
        SLO(name="availability", objective=0.999,
            total="repro_cluster_requests_total",
            bad=('repro_cluster_errors_total{kind="internal"}',
                 'repro_cluster_errors_total{kind="unavailable"}'),
            description="99.9% of cluster requests complete without "
                        "internal errors or exhausted failover"),
        SLO(name="latency", objective=0.95,
            total="repro_cluster_request_seconds_count",
            latency_histogram="repro_cluster_request_seconds",
            threshold_seconds=1.6,
            description="95% of cluster requests finish within ~1.6s"),
    )


def disabled_report() -> dict:
    """What processes running with observability off answer."""
    return {"alerts": [], "firing": False}
