"""W3C-traceparent-style trace context propagation over the wire protocol.

One request that fans coordinator -> worker -> (failover) worker should
produce *one* span tree, not three disconnected per-process traces.  The
glue is a single optional top-level field on NDJSON wire messages::

    {"op": "query", "sql": "...", "traceparent": "00-<32 hex>-<16 hex>-01"}

following the `W3C Trace Context <https://www.w3.org/TR/trace-context/>`_
``traceparent`` header layout: ``version "00"``, a 128-bit ``trace_id``
naming the whole distributed request, the 64-bit span id of the *sender's*
span (the receiver's root spans parent onto it), and the sampled flag.

Deliberate choices:

* The field rides **outside** ``options``: option keys feed
  :func:`~repro.server.protocol.request_key`, and trace context must never
  change coalescing identity -- a traced and an untraced copy of the same
  query must still share one flight (and therefore one computation).
* Ids come from :func:`os.urandom`, never from the seeded NumPy streams the
  estimators consume, so propagation cannot perturb answers -- the same
  bit-identity contract as the rest of :mod:`repro.obs`.
* Parsing is lenient: a malformed ``traceparent`` yields ``None`` and the
  request simply runs untraced, mirroring how real tracing systems treat
  broken inbound headers (drop the context, never the request).
"""

from __future__ import annotations

import os
import string
from dataclasses import dataclass
from typing import Any, Mapping, Optional

#: The top-level wire-message key carrying the context.
TRACEPARENT_KEY = "traceparent"

#: The only version this implementation emits (and the only one it parses).
TRACEPARENT_VERSION = "00"

_HEX = set(string.hexdigits.lower())


def new_trace_id() -> str:
    """A fresh 128-bit trace id as 32 lowercase hex chars."""
    return os.urandom(16).hex()


def new_span_id() -> int:
    """A fresh nonzero 64-bit span id (for remote parents)."""
    value = 0
    while value == 0:
        value = int.from_bytes(os.urandom(8), "big")
    return value


def format_traceparent(trace_id: str, span_id: int) -> str:
    """Render ``00-<trace_id>-<span_id>-01`` for one outbound hop."""
    return f"{TRACEPARENT_VERSION}-{trace_id}-{span_id & (2 ** 64 - 1):016x}-01"


@dataclass(frozen=True)
class TraceContext:
    """A parsed inbound context: which trace, and which remote parent span.

    ``parent_id == 0`` means "trace id assigned, but no parent span yet" --
    the shape a front door uses when it mints a trace id without having
    opened a span of its own.
    """

    trace_id: str
    parent_id: int = 0

    def traceparent(self, span_id: Optional[int] = None) -> str:
        """The outbound header for a child hop (``span_id`` becomes the
        receiver's remote parent; defaults to this context's parent)."""
        return format_traceparent(
            self.trace_id, span_id if span_id is not None else self.parent_id)


def new_context() -> TraceContext:
    """A root context: fresh trace id, no remote parent."""
    return TraceContext(trace_id=new_trace_id(), parent_id=0)


def _is_hex(text: str) -> bool:
    return bool(text) and all(char in _HEX for char in text)


def parse_traceparent(value: Any) -> Optional[TraceContext]:
    """Parse a ``traceparent`` string; ``None`` on anything malformed."""
    if not isinstance(value, str):
        return None
    parts = value.strip().lower().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, parent_hex, flags = parts
    if version != TRACEPARENT_VERSION:
        return None
    if len(trace_id) != 32 or not _is_hex(trace_id):
        return None
    if trace_id == "0" * 32:
        return None
    if len(parent_hex) != 16 or not _is_hex(parent_hex):
        return None
    if len(flags) != 2 or not _is_hex(flags):
        return None
    return TraceContext(trace_id=trace_id, parent_id=int(parent_hex, 16))


def extract_context(message: Mapping[str, Any]) -> Optional[TraceContext]:
    """The trace context carried by one wire message, if any (and valid)."""
    return parse_traceparent(message.get(TRACEPARENT_KEY))


def inject_context(message: dict, trace_id: str, span_id: int) -> dict:
    """Return ``message`` with a ``traceparent`` naming ``span_id`` as the
    receiver's parent (mutates and returns the dict, matching how forward
    messages are built in one expression)."""
    message[TRACEPARENT_KEY] = format_traceparent(trace_id, span_id)
    return message
