"""The ring-buffered slow-query log: "why was that query slow?" after the fact.

A bounded ring of the most recent requests, snapshotted as the top-K by
latency.  Each entry keeps the normalised SQL (truncated), the request's
wall-clock latency, and the per-phase span breakdown
(:meth:`~repro.obs.trace.Trace.phase_totals`), so the answer to "where did
the time go" survives the request itself.  Because the buffer is a ring,
one historic spike ages out instead of pinning the log forever -- the log
answers for *recent* traffic, which is what an operator staring at a live
server needs.

Visible in the ``\\stats`` REPL report, ``GET /stats``, and ``repro top``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

#: Longest SQL text kept per entry (keys the log's memory bound).
MAX_SQL_CHARS = 200


@dataclass(frozen=True)
class SlowQuery:
    """One logged request with its latency breakdown."""

    sql: str
    elapsed_seconds: float
    #: Wall-clock completion time (``time.time()``).
    finished_at: float
    candidates: int = 0
    groups: int = 0
    #: Span-name -> total seconds (``Trace.phase_totals``); empty when the
    #: request ran without a trace.
    phases: dict = field(default_factory=dict)
    #: The distributed trace id this request ran under (``None`` when it
    #: ran untraced) -- the jump-off point from a slowlog line to
    #: ``repro cluster trace`` / ``GET /trace?id=...``.
    trace_id: Optional[str] = None

    def as_dict(self) -> dict:
        return {
            "sql": self.sql,
            "elapsed_seconds": self.elapsed_seconds,
            "finished_at": self.finished_at,
            "candidates": self.candidates,
            "groups": self.groups,
            "phases": {name: round(seconds, 6)
                       for name, seconds in sorted(self.phases.items())},
            "trace_id": self.trace_id,
        }


class SlowQueryLog:
    """Thread-safe ring of recent requests, reported as top-K by latency."""

    def __init__(self, window: int = 128, top_k: int = 10) -> None:
        if window < 1:
            raise ValueError(f"window must be at least 1, got {window}")
        if top_k < 1:
            raise ValueError(f"top_k must be at least 1, got {top_k}")
        self._window = window
        self._top_k = top_k
        self._ring: deque[SlowQuery] = deque(maxlen=window)
        self._lock = threading.Lock()
        self._recorded = 0

    @property
    def top_k(self) -> int:
        return self._top_k

    def record(self, sql: str, elapsed_seconds: float, *,
               candidates: int = 0, groups: int = 0,
               phases: Optional[dict] = None,
               trace_id: Optional[str] = None) -> None:
        entry = SlowQuery(
            sql=sql[:MAX_SQL_CHARS],
            elapsed_seconds=elapsed_seconds,
            finished_at=time.time(),
            candidates=candidates,
            groups=groups,
            phases=dict(phases) if phases else {},
            trace_id=trace_id,
        )
        with self._lock:
            self._ring.append(entry)
            self._recorded += 1

    def snapshot(self, k: Optional[int] = None) -> tuple[SlowQuery, ...]:
        """The top-``k`` slowest requests still in the ring, slowest first."""
        if k is None:
            k = self._top_k
        with self._lock:
            entries = list(self._ring)
        entries.sort(key=lambda entry: entry.elapsed_seconds, reverse=True)
        return tuple(entries[:k])

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def recorded(self) -> int:
        """Lifetime count of recorded requests (the ring may have dropped
        older ones)."""
        with self._lock:
            return self._recorded

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
