"""Structured logging for the serving stack (stdlib ``logging`` only).

Every module logs through ``logging.getLogger("repro.<area>")``;
:func:`configure_logging` wires the root ``repro`` logger to stderr in one
of two formats:

``text``
    ``2026-08-08 12:00:00,123 INFO repro.server: listening ...`` -- the
    classic operator-readable line.

``json``
    One JSON object per line (``ts``, ``level``, ``logger``, ``message``
    plus any ``extra=`` fields), for log shippers and ``jq``.

The handler goes on the ``repro`` logger, not the root logger, so
embedding applications keep their own logging configuration untouched;
``propagate`` is disabled for the same reason.  Calling
:func:`configure_logging` again reconfigures idempotently (the CLI and the
tests both rely on that).
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, Optional, TextIO

#: Log formats the CLI accepts.
LOG_FORMATS = ("text", "json")

#: Levels the CLI accepts (lowercase, mapped onto stdlib levels).
LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

#: Fields of every LogRecord; anything else came in via ``extra=`` and is
#: forwarded into the JSON document.
_RECORD_FIELDS = frozenset(logging.LogRecord(
    "", 0, "", 0, "", (), None).__dict__) | {"message", "asctime",
                                             "taskName"}


class JsonFormatter(logging.Formatter):
    """One JSON object per record; ``extra=`` fields ride along."""

    def format(self, record: logging.LogRecord) -> str:
        document: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RECORD_FIELDS and not key.startswith("_"):
                try:
                    json.dumps(value)
                    document[key] = value
                except (TypeError, ValueError):
                    document[key] = str(value)
        if record.exc_info and record.exc_info[0] is not None:
            document["exception"] = self.formatException(record.exc_info)
        return json.dumps(document, ensure_ascii=False)


def configure_logging(level: str = "info", format: str = "text",
                      stream: Optional[TextIO] = None) -> logging.Logger:
    """Configure the ``repro`` logger tree; returns the configured logger."""
    if level not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {LOG_LEVELS}")
    if format not in LOG_FORMATS:
        raise ValueError(
            f"unknown log format {format!r}; expected one of {LOG_FORMATS}")
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, level.upper()))
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    if format == "json":
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)s %(name)s: %(message)s"))
    # Idempotent reconfiguration: replace our handlers, keep foreign ones
    # (an embedding app may have attached its own).
    for existing in list(logger.handlers):
        if getattr(existing, "_repro_managed", False):
            logger.removeHandler(existing)
    handler._repro_managed = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.propagate = False
    return logger


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` tree (``get_logger("server")``)."""
    if name.startswith("repro"):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")
