"""A dependency-free sampling profiler with collapsed-stack export.

``GET /profile?seconds=N`` answers "where is this process spending its
time *right now*" without py-spy, perf, or any native dependency: a
background thread polls :func:`sys._current_frames` every ``interval``
seconds, walks each thread's frame chain, and counts collapsed stacks --
``outer;middle;inner  count`` lines, the exact input format of Brendan
Gregg's ``flamegraph.pl`` and of speedscope's "collapsed" importer.

Safety properties (why this is fine to run against a serving process):

* **Pure observer.**  The sampler only *reads* frame objects; it never
  traces, patches, or sets ``sys.settrace`` hooks, so the profiled threads
  run at full speed minus GIL contention from the sampler's own wake-ups
  (~100 wake-ups/s at the default 10 ms interval, each microseconds long).
* **Bounded.**  ``seconds`` is clamped to :data:`MAX_SECONDS` and
  ``interval`` floored at :data:`MIN_INTERVAL`, so a fat-fingered request
  cannot pin a sampler thread forever; stack depth is capped at
  :data:`MAX_DEPTH` frames.
* **Torn stacks are acceptable.**  ``sys._current_frames`` returns a
  consistent dict, but a thread may run on while we walk its frames; the
  worst case is one slightly stale sample, which statistical profiles
  absorb by design.  Any frame-walk race that raises is swallowed and the
  sample skipped.

Frames render as ``file.py:function:line`` with spaces stripped, because
the collapsed format separates the count with the *last* space on the
line and stack entries with ``;``.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import Counter
from typing import Iterable, Optional

#: Hard ceiling on one profiling run (seconds).
MAX_SECONDS = 60.0

#: Floor on the sampling interval (seconds); ~200 samples/s at most.
MIN_INTERVAL = 0.005

#: Default sampling interval (seconds).
DEFAULT_INTERVAL = 0.01

#: Deepest stack recorded per sample.
MAX_DEPTH = 128


def _frame_label(frame) -> str:
    code = frame.f_code
    name = (f"{os.path.basename(code.co_filename)}:{code.co_name}:"
            f"{frame.f_lineno}")
    return name.replace(" ", "_").replace(";", "_")


def _collapse_frame_chain(frame) -> Optional[str]:
    """One thread's stack as a collapsed ``outer;...;inner`` string."""
    labels: list[str] = []
    depth = 0
    while frame is not None and depth < MAX_DEPTH:
        labels.append(_frame_label(frame))
        frame = frame.f_back
        depth += 1
    if not labels:
        return None
    labels.reverse()
    return ";".join(labels)


def sample_stacks(skip_threads: Iterable[int] = ()) -> Counter:
    """One sample of every live thread's stack (collapsed), minus the
    thread ids in ``skip_threads`` (the sampler excludes itself)."""
    skip = set(skip_threads)
    counts: Counter = Counter()
    for thread_id, frame in sys._current_frames().items():
        if thread_id in skip:
            continue
        try:
            stack = _collapse_frame_chain(frame)
        except Exception:  # pragma: no cover - frame mutated mid-walk
            continue
        if stack:
            counts[stack] += 1
    return counts


def collect_profile(seconds: float,
                    interval: float = DEFAULT_INTERVAL) -> Counter:
    """Sample every thread's stack for ``seconds``; collapsed-stack counts.

    Blocking -- callers on an event loop run this in an executor (which is
    exactly what the ``/profile`` handlers do).
    """
    seconds = min(max(float(seconds), 0.0), MAX_SECONDS)
    interval = max(float(interval), MIN_INTERVAL)
    own_thread = threading.get_ident()
    counts: Counter = Counter()
    deadline = time.monotonic() + seconds
    while True:
        counts.update(sample_stacks(skip_threads=(own_thread,)))
        if time.monotonic() >= deadline:
            return counts
        time.sleep(min(interval, max(deadline - time.monotonic(), 0.0)))


def render_collapsed(counts: Counter) -> str:
    """Counts as ``stack count`` lines, heaviest stacks first."""
    lines = [f"{stack} {count}" for stack, count in
             sorted(counts.items(), key=lambda item: (-item[1], item[0]))]
    return "\n".join(lines) + ("\n" if lines else "")


def parse_collapsed(text: str) -> Counter:
    """Invert :func:`render_collapsed` (lenient on malformed lines)."""
    counts: Counter = Counter()
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, count_part = line.rpartition(" ")
        if not stack:
            continue
        try:
            count = int(count_part)
        except ValueError:
            continue
        counts[stack] += count
    return counts


def merge_collapsed(texts: Iterable[str]) -> Counter:
    """Sum identical stacks across several collapsed exports -- how the
    coordinator aggregates one profile over the whole fleet."""
    merged: Counter = Counter()
    for text in texts:
        merged.update(parse_collapsed(text))
    return merged


def profile_payload(seconds: float,
                    interval: float = DEFAULT_INTERVAL) -> dict:
    """Run one profile and package it for the wire."""
    seconds = min(max(float(seconds), 0.0), MAX_SECONDS)
    interval = max(float(interval), MIN_INTERVAL)
    counts = collect_profile(seconds, interval)
    return {
        "seconds": seconds,
        "interval_seconds": interval,
        "samples": int(sum(counts.values())),
        "stacks": len(counts),
        "collapsed": render_collapsed(counts),
    }
