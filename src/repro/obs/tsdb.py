"""An in-process time-series store: a ring of periodic metrics snapshots.

``repro top`` used to reconstruct rates and windowed quantiles by diffing
two raw ``/metrics`` scrapes client-side -- which means every console
restart forgets history and two consoles see different windows.  The
:class:`TimeSeriesStore` moves that work server-side: a background thread
snapshots the whole :class:`~repro.obs.metrics.MetricsRegistry` every
``interval`` seconds into a fixed-size ring, and ``GET /history`` serves
the window back so any client can render sparklines, per-worker trends,
and burn rates from the same authoritative record.

Each snapshot is ``{"time": <epoch seconds>, "samples": {key: value}}``
where ``key`` is the exposition sample name with its rendered label set
(``repro_request_seconds_bucket{le="0.0128"}``) -- i.e. exactly the line
prefix :meth:`~repro.obs.metrics.Sample.render` produces, so consumers can
reuse the existing exposition parsing helpers on history data.

Retention math: ``capacity * interval`` seconds of history.  The defaults
(1024 snapshots x 2 s = ~34 min) comfortably cover the longest SLO burn
window (:mod:`repro.obs.alerts` uses 30 min) while holding a few MB even
on a busy registry.  ``sample()`` is also callable on demand -- ``history``
takes a fresh snapshot before answering, so short-lived test servers and
just-started processes never serve an empty window.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Optional

from repro.obs.metrics import MetricsRegistry, _render_labels

#: Default seconds between background snapshots.
DEFAULT_INTERVAL = 2.0

#: Default ring capacity (snapshots kept).
DEFAULT_CAPACITY = 1024


def collect_samples(registry: MetricsRegistry) -> dict[str, float]:
    """One flat ``{rendered-sample-key: value}`` snapshot of a registry."""
    samples: dict[str, float] = {}
    for family in registry.collect():
        for sample in family.samples:
            samples[sample.name + _render_labels(sample.labels)] = \
                float(sample.value)
    return samples


class TimeSeriesStore:
    """A fixed-size ring of periodic registry snapshots.

    Thread-safe: the background sampler, on-demand ``sample()`` callers
    (the ``/history`` handler), and readers all go through one lock, and
    the clock is read *inside* the lock so snapshot times are monotone
    non-decreasing even under concurrent scrapes.
    """

    def __init__(self, registry: MetricsRegistry, *,
                 interval: float = DEFAULT_INTERVAL,
                 capacity: int = DEFAULT_CAPACITY,
                 clock: Callable[[], float] = time.time) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if capacity < 2:
            raise ValueError(f"capacity must be at least 2, got {capacity}")
        self._registry = registry
        self.interval = float(interval)
        self.capacity = int(capacity)
        self._clock = clock
        self._ring: deque[dict] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "TimeSeriesStore":
        """Start the background sampler thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, daemon=True, name="repro-tsdb")
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _run(self) -> None:
        # First snapshot immediately, then one per interval until stopped.
        while True:
            try:
                self.sample()
            except Exception:  # pragma: no cover - collector bugs must not
                pass           # kill the sampler thread
            if self._stop.wait(self.interval):
                return

    # -- sampling and reads ------------------------------------------------

    def sample(self) -> dict:
        """Take one snapshot now and append it to the ring."""
        samples = collect_samples(self._registry)
        with self._lock:
            snapshot = {"time": self._clock(), "samples": samples}
            last = self._ring[-1] if self._ring else None
            if last is not None and snapshot["time"] < last["time"]:
                # A stepped-back wall clock must not break monotonicity:
                # clamp to the previous snapshot's time.
                snapshot["time"] = last["time"]
            self._ring.append(snapshot)
            return snapshot

    def history(self, seconds: Optional[float] = None, *,
                sample_now: bool = True) -> dict:
        """Snapshots within the trailing ``seconds`` window (all when
        ``None``), oldest first, plus the store's retention parameters."""
        if sample_now:
            self.sample()
        with self._lock:
            snapshots = list(self._ring)
        if seconds is not None and snapshots:
            cutoff = snapshots[-1]["time"] - float(seconds)
            snapshots = [snap for snap in snapshots if snap["time"] >= cutoff]
        return {
            "interval_seconds": self.interval,
            "capacity": self.capacity,
            "retention_seconds": self.interval * self.capacity,
            "snapshots": snapshots,
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)
