"""Observability: metrics registry, span tracing, slow-query log, console.

The package is dependency-free (stdlib only) and built around one
contract: *instrumentation must be zero-cost when disabled and must never
perturb answers*.  The disabled path is a pair of shared no-op singletons
(:data:`NULL_RECORDER`, :data:`NULL_TRACE`) so uninstrumented services pay
one attribute check per request; the enabled path never touches random
streams, so traced runs stay bit-identical to untraced ones.

Layers:

* :mod:`repro.obs.metrics` -- counters/gauges/histograms with Prometheus
  text exposition (``GET /metrics``) and scrape-time collectors;
* :mod:`repro.obs.trace` -- per-request span trees with Chrome trace-event
  export (``repro query --trace out.json``), cross-process stitching
  (:func:`spans_to_chrome`) and the per-process :class:`TraceStore`;
* :mod:`repro.obs.propagate` -- W3C-traceparent-style trace context on the
  NDJSON wire protocol (the distributed-tracing handshake);
* :mod:`repro.obs.tsdb` -- the in-process metrics-history ring behind
  ``GET /history`` and the ``repro top`` sparklines;
* :mod:`repro.obs.profiler` -- the sampling profiler behind
  ``GET /profile`` and ``repro profile`` (collapsed-stack export);
* :mod:`repro.obs.alerts` -- declarative SLOs with multi-window burn-rate
  evaluation over the tsdb;
* :mod:`repro.obs.slowlog` -- ring-buffered top-K slow-query log;
* :mod:`repro.obs.logsetup` -- structured stdlib logging (text/json);
* :mod:`repro.obs.recorder` -- the facade the service talks to;
* :mod:`repro.obs.console` -- the ``repro top`` live dashboard.
"""

from repro.obs.alerts import (
    DEFAULT_WINDOWS,
    SLO,
    AlertEvaluator,
    BurnWindow,
    bad_fraction,
    cluster_slos,
    disabled_report,
    server_slos,
)
from repro.obs.console import (
    ConsoleSample,
    fetch_sample,
    history_quantiles,
    qps_series,
    render_frame,
    render_stats_tables,
    render_table,
    run_top,
    snapshot_payload,
    sparkline,
    window_quantiles,
)
from repro.obs.logsetup import (
    LOG_FORMATS,
    LOG_LEVELS,
    JsonFormatter,
    configure_logging,
    get_logger,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    Sample,
    counters_family,
    histogram_quantile,
    parse_exposition,
)
from repro.obs.profiler import (
    collect_profile,
    merge_collapsed,
    parse_collapsed,
    profile_payload,
    render_collapsed,
)
from repro.obs.propagate import (
    TRACEPARENT_KEY,
    TraceContext,
    extract_context,
    format_traceparent,
    inject_context,
    new_context,
    parse_traceparent,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    process_collector,
    service_stats_collector,
)
from repro.obs.slowlog import SlowQuery, SlowQueryLog
from repro.obs.trace import (
    NULL_TRACE,
    AnyTrace,
    NullTrace,
    Span,
    SpanRecord,
    Trace,
    TraceStore,
    spans_to_chrome,
)
from repro.obs.tsdb import TimeSeriesStore, collect_samples

__all__ = [
    "DEFAULT_WINDOWS",
    "LATENCY_BUCKETS",
    "LOG_FORMATS",
    "LOG_LEVELS",
    "NULL_RECORDER",
    "NULL_TRACE",
    "SLO",
    "TRACEPARENT_KEY",
    "AlertEvaluator",
    "AnyTrace",
    "BurnWindow",
    "ConsoleSample",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricFamily",
    "MetricsRegistry",
    "NullRecorder",
    "NullTrace",
    "Recorder",
    "Sample",
    "SlowQuery",
    "SlowQueryLog",
    "Span",
    "SpanRecord",
    "TimeSeriesStore",
    "Trace",
    "TraceContext",
    "TraceStore",
    "bad_fraction",
    "cluster_slos",
    "collect_profile",
    "collect_samples",
    "configure_logging",
    "counters_family",
    "disabled_report",
    "extract_context",
    "fetch_sample",
    "format_traceparent",
    "get_logger",
    "histogram_quantile",
    "history_quantiles",
    "inject_context",
    "merge_collapsed",
    "new_context",
    "parse_collapsed",
    "parse_exposition",
    "parse_traceparent",
    "process_collector",
    "profile_payload",
    "qps_series",
    "render_collapsed",
    "render_frame",
    "render_stats_tables",
    "render_table",
    "run_top",
    "server_slos",
    "service_stats_collector",
    "snapshot_payload",
    "sparkline",
    "spans_to_chrome",
    "window_quantiles",
]
