"""Observability: metrics registry, span tracing, slow-query log, console.

The package is dependency-free (stdlib only) and built around one
contract: *instrumentation must be zero-cost when disabled and must never
perturb answers*.  The disabled path is a pair of shared no-op singletons
(:data:`NULL_RECORDER`, :data:`NULL_TRACE`) so uninstrumented services pay
one attribute check per request; the enabled path never touches random
streams, so traced runs stay bit-identical to untraced ones.

Layers:

* :mod:`repro.obs.metrics` -- counters/gauges/histograms with Prometheus
  text exposition (``GET /metrics``) and scrape-time collectors;
* :mod:`repro.obs.trace` -- per-request span trees with Chrome trace-event
  export (``repro query --trace out.json``);
* :mod:`repro.obs.slowlog` -- ring-buffered top-K slow-query log;
* :mod:`repro.obs.logsetup` -- structured stdlib logging (text/json);
* :mod:`repro.obs.recorder` -- the facade the service talks to;
* :mod:`repro.obs.console` -- the ``repro top`` live dashboard.
"""

from repro.obs.console import (
    ConsoleSample,
    fetch_sample,
    render_frame,
    render_stats_tables,
    render_table,
    run_top,
    window_quantiles,
)
from repro.obs.logsetup import (
    LOG_FORMATS,
    LOG_LEVELS,
    JsonFormatter,
    configure_logging,
    get_logger,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    Sample,
    counters_family,
    histogram_quantile,
    parse_exposition,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    process_collector,
    service_stats_collector,
)
from repro.obs.slowlog import SlowQuery, SlowQueryLog
from repro.obs.trace import NULL_TRACE, AnyTrace, NullTrace, Span, SpanRecord, Trace

__all__ = [
    "LATENCY_BUCKETS",
    "LOG_FORMATS",
    "LOG_LEVELS",
    "NULL_RECORDER",
    "NULL_TRACE",
    "AnyTrace",
    "ConsoleSample",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "MetricFamily",
    "MetricsRegistry",
    "NullRecorder",
    "NullTrace",
    "Recorder",
    "Sample",
    "Span",
    "SpanRecord",
    "SlowQuery",
    "SlowQueryLog",
    "Trace",
    "configure_logging",
    "counters_family",
    "fetch_sample",
    "get_logger",
    "histogram_quantile",
    "parse_exposition",
    "process_collector",
    "render_frame",
    "render_stats_tables",
    "render_table",
    "run_top",
    "service_stats_collector",
    "window_quantiles",
]
