"""Per-request span tracing with Chrome trace-event export.

A :class:`Trace` is one request's span tree: ``parse -> plan (planner
decision) -> enumerate (per-shard fan-out) -> schedule -> estimate (per
group / per fused batch / per adaptive rung) -> serialize``.  Spans are
created with explicit parents (the service passes its request-root span
into worker closures, so spans recorded on executor threads still attach to
the right tree -- no context-variable propagation to get wrong), carry a
small attribute map (planner decisions, cache hits, sample counts), and
record wall-clock anchored ``perf_counter`` timestamps.

Export is the Chrome trace-event JSON format (``chrome://tracing`` /
Perfetto "complete" events, ``ph: "X"``): every span becomes one event
with microsecond ``ts``/``dur``, the recording thread as ``tid``, and the
attributes under ``args``.  ``repro query --trace out.json`` writes exactly
this.

The zero-cost-when-disabled contract is the :data:`NULL_TRACE` singleton:
its ``span()`` hands back a shared no-op context manager, so instrumented
code paths run with no allocation and no branching beyond one attribute
lookup.  Tracing never touches random streams, so traced runs are
bit-identical to untraced ones by construction.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Optional, Union


class SpanRecord:
    """One finished span, as kept in the trace's buffer.

    A plain ``__slots__`` class rather than a dataclass: records are
    allocated on the request hot path (one per span), and the frozen
    dataclass ``__init__`` costs several times more per instance.
    """

    __slots__ = ("name", "span_id", "parent_id", "start", "end", "thread",
                 "attributes")

    def __init__(self, name: str, span_id: int, parent_id: Optional[int],
                 start: float, end: float, thread: int,
                 attributes: Optional[dict] = None) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        #: ``start``/``end`` are seconds on the trace's perf_counter clock.
        self.start = start
        self.end = end
        self.thread = thread
        self.attributes = attributes if attributes is not None else {}

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpanRecord(name={self.name!r}, span_id={self.span_id}, "
                f"parent_id={self.parent_id}, duration={self.duration:.6f})")


class Span:
    """A live span handle; a context manager that records itself on exit."""

    __slots__ = ("_trace", "name", "span_id", "parent_id", "attributes",
                 "_start")

    def __init__(self, trace: "Trace", name: str,
                 parent: Optional[Union["Span", int]] = None,
                 **attributes: Any) -> None:
        self._trace = trace
        self.name = name
        self.span_id = trace._next_id()
        self.parent_id = parent.span_id if isinstance(parent, Span) else parent
        self.attributes = dict(attributes) if attributes else {}
        self._start = time.perf_counter()

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute (shows up under ``args`` on export)."""
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._trace._record(SpanRecord(
            self.name, self.span_id, self.parent_id, self._start,
            time.perf_counter(), threading.get_ident(), self.attributes))


class Trace:
    """One request's spans, appended concurrently from worker threads."""

    def __init__(self, name: str = "request") -> None:
        self.name = name
        #: Wall-clock anchor for export: ``epoch + (start - origin)`` maps a
        #: perf_counter timestamp back onto real time.
        self.origin = time.perf_counter()
        self.epoch = time.time()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._spans: list[SpanRecord] = []

    # -- recording ---------------------------------------------------------

    def _next_id(self) -> int:
        return next(self._ids)

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._spans.append(record)

    def span(self, name: str, parent: Optional[Union[Span, int]] = None,
             **attributes: Any) -> Span:
        """Open a span; use as a context manager (records on ``__exit__``)."""
        return Span(self, name, parent=parent, **attributes)

    def record(self, name: str, start: float, end: float,
               parent: Optional[Union[Span, int]] = None,
               **attributes: Any) -> None:
        """Record an already-timed interval (adaptive rungs are timed by
        their completion callbacks, after the fact)."""
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        self._record(SpanRecord(
            name, self._next_id(), parent_id, start, end,
            threading.get_ident(), dict(attributes) if attributes else {}))

    # -- introspection -----------------------------------------------------

    @property
    def spans(self) -> tuple[SpanRecord, ...]:
        with self._lock:
            return tuple(self._spans)

    def phase_totals(self) -> dict[str, float]:
        """Total seconds per span name (the slow-query-log breakdown).

        Span names double as phase labels; repeated spans of one name (per
        group, per rung) accumulate.
        """
        totals: dict[str, float] = {}
        for record in self.spans:
            totals[record.name] = totals.get(record.name, 0.0) \
                + record.duration
        return totals

    # -- export ------------------------------------------------------------

    def to_chrome(self) -> dict:
        """The trace as a Chrome trace-event JSON object."""
        pid = os.getpid()
        events = [{
            "name": self.name,
            "ph": "M",  # metadata: names the process in the viewer
            "pid": pid,
            "tid": 0,
            "ts": 0,
            "cat": "__metadata",
            "args": {"name": f"repro {self.name}"},
        }]
        for record in self.spans:
            events.append({
                "name": record.name,
                "cat": "repro",
                "ph": "X",
                "pid": pid,
                "tid": record.thread,
                "ts": round((self.epoch + (record.start - self.origin)) * 1e6, 3),
                "dur": round(record.duration * 1e6, 3),
                "args": {
                    "span_id": record.span_id,
                    **({"parent_id": record.parent_id}
                       if record.parent_id is not None else {}),
                    **record.attributes,
                },
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome(self, path: Union[str, Path]) -> Path:
        """Write the Chrome trace-event file ``repro query --trace`` asks for."""
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome(), indent=1,
                                   default=str) + "\n")
        return path


class _NullSpan:
    """The shared no-op span: enter/exit/set all do nothing."""

    __slots__ = ()
    span_id = 0
    parent_id = None
    name = "null"

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTrace:
    """The disabled recorder's trace: every operation is a no-op."""

    name = "null"
    spans: tuple = ()

    def span(self, name: str, parent: Any = None, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def record(self, name: str, start: float, end: float,
               parent: Any = None, **attributes: Any) -> None:
        pass

    def phase_totals(self) -> dict[str, float]:
        return {}

    def to_chrome(self) -> dict:  # pragma: no cover - never exported
        return {"traceEvents": []}


#: The shared disabled trace; ``trace is NULL_TRACE`` is the off switch.
NULL_TRACE = NullTrace()

#: Union accepted wherever instrumented code takes "a trace".
AnyTrace = Union[Trace, NullTrace]
