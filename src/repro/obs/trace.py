"""Per-request span tracing with Chrome trace-event export.

A :class:`Trace` is one request's span tree: ``parse -> plan (planner
decision) -> enumerate (per-shard fan-out) -> schedule -> estimate (per
group / per fused batch / per adaptive rung) -> serialize``.  Spans are
created with explicit parents (the service passes its request-root span
into worker closures, so spans recorded on executor threads still attach to
the right tree -- no context-variable propagation to get wrong), carry a
small attribute map (planner decisions, cache hits, sample counts), and
record wall-clock anchored ``perf_counter`` timestamps.

Export is the Chrome trace-event JSON format (``chrome://tracing`` /
Perfetto "complete" events, ``ph: "X"``): every span becomes one event
with microsecond ``ts``/``dur``, the recording thread as ``tid``, and the
attributes under ``args``.  ``repro query --trace out.json`` writes exactly
this.

Since the distributed tier, a trace can also be one *hop* of a cross-process
request: constructing a :class:`Trace` with a
:class:`~repro.obs.propagate.TraceContext` adopts the sender's 128-bit
``trace_id``, parents local root spans onto the sender's span id, and
offsets local span ids by a random 64-bit base so ids stay unique across
processes.  :func:`spans_to_chrome` stitches per-process span exports
(:meth:`Trace.span_dicts`, wall-clock anchored) back into one Chrome trace,
and :class:`TraceStore` keeps a bounded ring of finished traces per process
so ``repro cluster trace`` can fetch them after the fact.

The zero-cost-when-disabled contract is the :data:`NULL_TRACE` singleton:
its ``span()`` hands back a shared no-op context manager, so instrumented
code paths run with no allocation and no branching beyond one attribute
lookup.  Tracing never touches random streams, so traced runs are
bit-identical to untraced ones by construction.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Iterable, Optional, Union

from repro.obs.propagate import TraceContext


class SpanRecord:
    """One finished span, as kept in the trace's buffer.

    A plain ``__slots__`` class rather than a dataclass: records are
    allocated on the request hot path (one per span), and the frozen
    dataclass ``__init__`` costs several times more per instance.
    """

    __slots__ = ("name", "span_id", "parent_id", "start", "end", "thread",
                 "attributes")

    def __init__(self, name: str, span_id: int, parent_id: Optional[int],
                 start: float, end: float, thread: int,
                 attributes: Optional[dict] = None) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        #: ``start``/``end`` are seconds on the trace's perf_counter clock.
        self.start = start
        self.end = end
        self.thread = thread
        self.attributes = attributes if attributes is not None else {}

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpanRecord(name={self.name!r}, span_id={self.span_id}, "
                f"parent_id={self.parent_id}, duration={self.duration:.6f})")


class Span:
    """A live span handle; a context manager that records itself on exit."""

    __slots__ = ("_trace", "name", "span_id", "parent_id", "attributes",
                 "_start")

    def __init__(self, trace: "Trace", name: str,
                 parent: Optional[Union["Span", int]] = None,
                 **attributes: Any) -> None:
        self._trace = trace
        self.name = name
        self.span_id = trace._next_id()
        if isinstance(parent, Span):
            self.parent_id = parent.span_id
        elif parent is None:
            # Root spans of a propagated hop attach to the sender's span.
            self.parent_id = trace._remote_parent
        else:
            self.parent_id = parent
        # The ``**attributes`` dict is freshly built per call and owned by
        # this span; copying it again would just double the allocation on
        # the request hot path.
        self.attributes = attributes
        self._start = time.perf_counter()

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute (shows up under ``args`` on export)."""
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._trace._record(SpanRecord(
            self.name, self.span_id, self.parent_id, self._start,
            time.perf_counter(), threading.get_ident(), self.attributes))


class Trace:
    """One request's spans, appended concurrently from worker threads."""

    def __init__(self, name: str = "request", *,
                 context: Optional[TraceContext] = None) -> None:
        self.name = name
        #: Wall-clock anchor for export: ``epoch + (start - origin)`` maps a
        #: perf_counter timestamp back onto real time.
        self.origin = time.perf_counter()
        self.epoch = time.time()
        #: The distributed trace id (32 hex chars) when this trace is one
        #: hop of a propagated request; ``None`` for purely local traces.
        self.trace_id = context.trace_id if context is not None else None
        self._remote_parent: Optional[int] = \
            (context.parent_id or None) if context is not None else None
        # Propagated hops draw span ids from a random 64-bit base so ids
        # from different processes never collide when traces are stitched;
        # local traces keep small ids (1, 2, 3 ...) for readability.
        base = (int.from_bytes(os.urandom(6), "big") << 16) \
            if context is not None else 0
        self._ids = itertools.count(base + 1)
        self._lock = threading.Lock()
        self._spans: list[SpanRecord] = []

    # -- recording ---------------------------------------------------------

    def _next_id(self) -> int:
        return next(self._ids)

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._spans.append(record)

    def span(self, name: str, parent: Optional[Union[Span, int]] = None,
             **attributes: Any) -> Span:
        """Open a span; use as a context manager (records on ``__exit__``)."""
        return Span(self, name, parent=parent, **attributes)

    def record(self, name: str, start: float, end: float,
               parent: Optional[Union[Span, int]] = None,
               **attributes: Any) -> None:
        """Record an already-timed interval (adaptive rungs are timed by
        their completion callbacks, after the fact)."""
        if isinstance(parent, Span):
            parent_id = parent.span_id
        elif parent is None:
            parent_id = self._remote_parent
        else:
            parent_id = parent
        self._record(SpanRecord(
            name, self._next_id(), parent_id, start, end,
            threading.get_ident(), dict(attributes) if attributes else {}))

    # -- introspection -----------------------------------------------------

    @property
    def spans(self) -> tuple[SpanRecord, ...]:
        with self._lock:
            return tuple(self._spans)

    def phase_totals(self) -> dict[str, float]:
        """Total seconds per span name (the slow-query-log breakdown).

        Span names double as phase labels; repeated spans of one name (per
        group, per rung) accumulate.
        """
        totals: dict[str, float] = {}
        for record in self.spans:
            totals[record.name] = totals.get(record.name, 0.0) \
                + record.duration
        return totals

    # -- export ------------------------------------------------------------

    def span_dicts(self) -> list[dict]:
        """Finished spans as JSON-safe dicts with wall-clock ``start``/``end``
        (seconds since the epoch), the shape the coordinator collects from
        workers to stitch one cross-process trace."""
        spans: list[dict] = []
        for record in self.spans:
            spans.append({
                "name": record.name,
                "span_id": record.span_id,
                "parent_id": record.parent_id,
                "start": self.epoch + (record.start - self.origin),
                "end": self.epoch + (record.end - self.origin),
                "thread": record.thread,
                "attributes": {
                    key: value if isinstance(value, (str, int, float, bool))
                    or value is None else str(value)
                    for key, value in record.attributes.items()},
            })
        return spans

    def to_chrome(self) -> dict:
        """The trace as a Chrome trace-event JSON object."""
        pid = os.getpid()
        events = [{
            "name": self.name,
            "ph": "M",  # metadata: names the process in the viewer
            "pid": pid,
            "tid": 0,
            "ts": 0,
            "cat": "__metadata",
            "args": {"name": f"repro {self.name}",
                     **({"trace_id": self.trace_id}
                        if self.trace_id else {})},
        }]
        for record in self.spans:
            events.append({
                "name": record.name,
                "cat": "repro",
                "ph": "X",
                "pid": pid,
                "tid": record.thread,
                "ts": round((self.epoch + (record.start - self.origin)) * 1e6, 3),
                "dur": round(record.duration * 1e6, 3),
                "args": {
                    "span_id": record.span_id,
                    **({"parent_id": record.parent_id}
                       if record.parent_id is not None else {}),
                    **record.attributes,
                },
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome(self, path: Union[str, Path]) -> Path:
        """Write the Chrome trace-event file ``repro query --trace`` asks for."""
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome(), indent=1,
                                   default=str) + "\n")
        return path


def spans_to_chrome(trace_id: Optional[str],
                    groups: Iterable[tuple[str, Iterable[dict]]]) -> dict:
    """Stitch per-process span exports into one Chrome trace-event document.

    ``groups`` is ``(process_label, span_dicts)`` pairs -- typically the
    coordinator's own spans plus one group per worker that contributed to
    the trace.  Each group gets its own ``pid`` (named via a metadata
    event); span timestamps are already wall-clock anchored by
    :meth:`Trace.span_dicts`, so events from different processes land on a
    shared timeline and parent links stitch across ``pid`` boundaries
    through the ``span_id``/``parent_id`` args.
    """
    events: list[dict] = []
    for pid, (label, spans) in enumerate(groups, start=1):
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "ts": 0,
            "cat": "__metadata",
            "args": {"name": label},
        })
        for span in spans:
            start = float(span.get("start", 0.0))
            end = float(span.get("end", start))
            parent_id = span.get("parent_id")
            events.append({
                "name": span.get("name", "span"),
                "cat": "repro",
                "ph": "X",
                "pid": pid,
                "tid": span.get("thread", 0),
                "ts": round(start * 1e6, 3),
                "dur": round((end - start) * 1e6, 3),
                "args": {
                    **({"trace_id": trace_id} if trace_id else {}),
                    "span_id": span.get("span_id"),
                    **({"parent_id": parent_id}
                       if parent_id is not None else {}),
                    **(span.get("attributes") or {}),
                },
            })
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"trace_id": trace_id or ""}}


class TraceStore:
    """A bounded ring of finished traces, keyed by trace id.

    Every serving process keeps one so a distributed trace can be fetched
    *after* the request finished (``repro cluster trace``, ``GET /trace``).
    Bounded so an unscraped server never grows without limit; old traces
    age out in insertion order.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._traces: OrderedDict[str, Trace] = OrderedDict()

    def put(self, trace: "Trace") -> None:
        """Keep one finished trace (ignored when it has no trace id)."""
        trace_id = getattr(trace, "trace_id", None)
        if not trace_id:
            return
        with self._lock:
            self._traces.pop(trace_id, None)
            self._traces[trace_id] = trace
            while len(self._traces) > self._capacity:
                self._traces.popitem(last=False)

    def get(self, trace_id: str) -> Optional["Trace"]:
        with self._lock:
            return self._traces.get(trace_id)

    def latest(self) -> Optional["Trace"]:
        """The most recently stored trace (what ``repro cluster trace``
        exports when no explicit id is given)."""
        with self._lock:
            if not self._traces:
                return None
            return next(reversed(self._traces.values()))

    def ids(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._traces)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


class _NullSpan:
    """The shared no-op span: enter/exit/set all do nothing."""

    __slots__ = ()
    span_id = 0
    parent_id = None
    name = "null"

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTrace:
    """The disabled recorder's trace: every operation is a no-op."""

    name = "null"
    spans: tuple = ()
    trace_id = None

    def span(self, name: str, parent: Any = None, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def record(self, name: str, start: float, end: float,
               parent: Any = None, **attributes: Any) -> None:
        pass

    def phase_totals(self) -> dict[str, float]:
        return {}

    def span_dicts(self) -> list[dict]:
        return []

    def to_chrome(self) -> dict:  # pragma: no cover - never exported
        return {"traceEvents": []}


#: The shared disabled trace; ``trace is NULL_TRACE`` is the off switch.
NULL_TRACE = NullTrace()

#: Union accepted wherever instrumented code takes "a trace".
AnyTrace = Union[Trace, NullTrace]
