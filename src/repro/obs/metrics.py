"""A dependency-free metrics registry with Prometheus text exposition.

Three instrument kinds cover everything the serving stack reports:

* **counters** -- monotonically increasing totals (requests served, cache
  hits); by convention their names end in ``_total``;
* **gauges** -- point-in-time levels (active flights, cache sizes);
* **histograms** -- latency distributions over *fixed log-spaced buckets*
  (:data:`LATENCY_BUCKETS`), so two snapshots of the same histogram can be
  subtracted bucket-for-bucket to compute windowed quantiles -- which is
  exactly what ``repro top`` does between polls.

Every instrument is thread-safe (one lock per instrument; the network
server records from worker threads) and supports Prometheus-style labels
via :meth:`_Metric.labels`.  :meth:`MetricsRegistry.render` produces the
`Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ --
``# HELP`` / ``# TYPE`` headers, escaped label values, cumulative
``_bucket{le=...}`` series plus ``_sum``/``_count`` for histograms.

Registries also accept **collector callbacks**: functions returning metric
families built from existing counter structures at scrape time.  The
service's lifetime counters (:meth:`AnnotationService.stats`) are exported
this way -- the hot path keeps its existing ``_counters_lock`` increments
and pays nothing for exposition until someone actually scrapes
``GET /metrics``.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional, Sequence

#: Fixed log-spaced latency buckets (seconds): powers of two from 100 us to
#: ~200 s.  Fixed -- not per-instrument -- so histogram snapshots from any
#: two processes or points in time line up bucket-for-bucket.
LATENCY_BUCKETS: tuple[float, ...] = tuple(
    0.0001 * 2.0 ** exponent for exponent in range(21))

_VALID_TYPES = ("counter", "gauge", "histogram")


def _format_value(value: float) -> str:
    """A metric value in exposition form (integers without the ``.0``)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{name}="{_escape_label(value)}"'
                     for name, value in labels.items())
    return "{" + inner + "}"


@dataclass(frozen=True)
class Sample:
    """One exposition line: ``name{labels} value``."""

    name: str
    labels: Mapping[str, str]
    value: float

    def render(self) -> str:
        return (f"{self.name}{_render_labels(self.labels)} "
                f"{_format_value(self.value)}")


@dataclass(frozen=True)
class MetricFamily:
    """A named metric with help text, type, and its current samples.

    The unit both instruments and collector callbacks produce; ``render``
    order is HELP, TYPE, then every sample.
    """

    name: str
    kind: str
    help: str
    samples: tuple[Sample, ...] = field(default_factory=tuple)

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} {self.kind}"]
        lines.extend(sample.render() for sample in self.samples)
        return lines


class _Metric:
    """Shared label plumbing of the three instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str,
                 labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}
        if not self.labelnames:
            # Label-less instruments act on one implicit child directly.
            self._default = self._child()
            self._children[()] = self._default

    def _child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **labelvalues: str):
        """The child instrument for one label combination (created lazily)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}")
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._child()
                self._children[key] = child
            return child

    def _label_map(self, key: tuple[str, ...]) -> dict[str, str]:
        return dict(zip(self.labelnames, key))

    def collect(self) -> MetricFamily:
        with self._lock:
            children = list(self._children.items())
        samples: list[Sample] = []
        for key, child in children:
            samples.extend(child.samples(self.name, self._label_map(key)))
        return MetricFamily(name=self.name, kind=self.kind, help=self.help,
                            samples=tuple(samples))


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def samples(self, name: str, labels: Mapping[str, str]) -> list[Sample]:
        return [Sample(name, labels, self.value)]


class Counter(_Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def _child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    @property
    def value(self) -> float:
        return self._default.value


class _GaugeChild:
    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def samples(self, name: str, labels: Mapping[str, str]) -> list[Sample]:
        return [Sample(name, labels, self.value)]


class Gauge(_Metric):
    """A level that can go up and down."""

    kind = "gauge"

    def _child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default.set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default.dec(amount)

    @property
    def value(self) -> float:
        return self._default.value


class _HistogramChild:
    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        # Linear scan: ~21 comparisons against bisect's call overhead is a
        # wash, and the scan holds no references the GC must trace.
        index = 0
        for bound in self._bounds:
            if value <= bound:
                break
            index += 1
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> tuple[list[int], float, int]:
        with self._lock:
            return list(self._counts), self._sum, self._count

    def samples(self, name: str, labels: Mapping[str, str]) -> list[Sample]:
        counts, total_sum, total_count = self.snapshot()
        samples: list[Sample] = []
        cumulative = 0
        for bound, count in zip(self._bounds, counts):
            cumulative += count
            samples.append(Sample(f"{name}_bucket",
                                  {**labels, "le": _format_value(bound)},
                                  cumulative))
        samples.append(Sample(f"{name}_bucket", {**labels, "le": "+Inf"},
                              total_count))
        samples.append(Sample(f"{name}_sum", dict(labels), total_sum))
        samples.append(Sample(f"{name}_count", dict(labels), total_count))
        return samples


class Histogram(_Metric):
    """A distribution over fixed buckets (cumulative on exposition)."""

    kind = "histogram"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = LATENCY_BUCKETS) -> None:
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError("histograms need at least one bucket bound")
        self.buckets = bounds
        super().__init__(name, help, labelnames)

    def _child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default.observe(value)


#: A collector callback: metric families computed at scrape time.
Collector = Callable[[], Iterable[MetricFamily]]


class MetricsRegistry:
    """Instrument factory plus the exposition entry point.

    Instrument constructors are get-or-create: asking twice for the same
    name returns the same object (mismatched kind or labels raise), so
    layers can share a registry without coordinating instrument ownership.
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}
        self._collectors: list[Collector] = []

    # -- instrument factories ---------------------------------------------

    def _register(self, cls, name: str, help: str,
                  labelnames: Sequence[str], **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) \
                        or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}")
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str,
                labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str,
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str,
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = LATENCY_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help, labelnames,
                              buckets=buckets)

    def register_collector(self, collector: Collector) -> None:
        """Add a scrape-time callback producing extra metric families."""
        with self._lock:
            self._collectors.append(collector)

    # -- exposition --------------------------------------------------------

    def collect(self) -> list[MetricFamily]:
        with self._lock:
            metrics = list(self._metrics.values())
            collectors = list(self._collectors)
        families = [metric.collect() for metric in metrics]
        for collector in collectors:
            families.extend(collector())
        families.sort(key=lambda family: family.name)
        return families

    def render(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: list[str] = []
        for family in self.collect():
            lines.extend(family.render())
        return "\n".join(lines) + "\n"


def counters_family(name: str, help: str,
                    rows: Iterable[tuple[Mapping[str, str], float]],
                    kind: str = "counter") -> MetricFamily:
    """Convenience for collectors: one family from ``(labels, value)`` rows."""
    if kind not in _VALID_TYPES:
        raise ValueError(f"unknown metric type {kind!r}")
    return MetricFamily(
        name=name, kind=kind, help=help,
        samples=tuple(Sample(name, dict(labels), float(value))
                      for labels, value in rows))


def parse_exposition(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse exposition text back into ``{(name, sorted labels): value}``.

    The inverse ``repro top`` (and the tests) need: enough of the format to
    read back what :meth:`MetricsRegistry.render` produces -- not a general
    Prometheus parser.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            continue
        labels: list[tuple[str, str]] = []
        name = name_part
        if "{" in name_part:
            name, _, label_blob = name_part.partition("{")
            label_blob = label_blob.rstrip("}")
            for item in _split_labels(label_blob):
                key, _, raw = item.partition("=")
                raw = raw.strip()
                if raw.startswith('"') and raw.endswith('"'):
                    raw = raw[1:-1]
                labels.append((key.strip(), _unescape_label(raw)))
        try:
            if value_part == "+Inf":
                number = math.inf
            elif value_part == "-Inf":
                number = -math.inf
            else:
                number = float(value_part)
        except ValueError:
            continue
        samples[(name, tuple(sorted(labels)))] = number
    return samples


def _unescape_label(raw: str) -> str:
    """Invert :func:`_escape_label` in a single pass.

    Sequential ``str.replace`` calls are wrong here: ``\\\\n`` (an escaped
    backslash followed by a literal ``n``) must not turn into a newline.
    """
    out: list[str] = []
    index = 0
    while index < len(raw):
        char = raw[index]
        if char == "\\" and index + 1 < len(raw):
            follower = raw[index + 1]
            out.append("\n" if follower == "n" else follower)
            index += 2
            continue
        out.append(char)
        index += 1
    return "".join(out)


def _split_labels(blob: str) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    parts: list[str] = []
    current: list[str] = []
    in_quotes = False
    escaped = False
    for char in blob:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
        if char == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        parts.append("".join(current))
    return [part for part in (part.strip() for part in parts) if part]


def histogram_quantile(
        buckets: Sequence[tuple[float, float]], quantile: float,
) -> Optional[float]:
    """Estimate a quantile from cumulative ``(le, count)`` histogram buckets.

    Linear interpolation inside the winning bucket, the way PromQL's
    ``histogram_quantile`` does it; ``None`` when the histogram is empty.
    ``buckets`` may be a delta between two snapshots (windowed quantiles) or
    a lifetime snapshot.
    """
    if not 0.0 <= quantile <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {quantile}")
    ordered = sorted(buckets, key=lambda item: item[0])
    if not ordered:
        return None
    total = ordered[-1][1]
    if total <= 0:
        return None
    rank = quantile * total
    previous_bound = 0.0
    previous_count = 0.0
    for bound, cumulative in ordered:
        if cumulative >= rank:
            if math.isinf(bound):
                return previous_bound
            width = bound - previous_bound
            share = cumulative - previous_count
            if share <= 0:
                return bound
            return previous_bound + width * (rank - previous_count) / share
        previous_bound = bound if not math.isinf(bound) else previous_bound
        previous_count = cumulative
    return previous_bound
