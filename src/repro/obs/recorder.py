"""The recorder facade: what instrumented layers talk to.

A :class:`Recorder` bundles the three observability sinks -- a
:class:`~repro.obs.metrics.MetricsRegistry`, a
:class:`~repro.obs.slowlog.SlowQueryLog`, and (optionally) span tracing --
behind the two calls the service makes per request: :meth:`start_trace`
before work begins and :meth:`observe_request` after it ends.  The
:data:`NULL_RECORDER` singleton is the disabled twin: ``enabled`` is
false, ``start_trace`` returns :data:`~repro.obs.trace.NULL_TRACE`, and
``observe_request`` is a no-op -- an uninstrumented
:class:`~repro.service.AnnotationService` pays one attribute check per
request and nothing else, which is what keeps the differential suites'
disabled path byte-identical to the pre-observability code.

The recorder also owns the scrape-side glue:
:func:`service_stats_collector` turns a service's existing lifetime
counters (requests, cache hits, single-flight, fusion, planner, shards)
into Prometheus metric families *at scrape time*, so ``GET /metrics`` adds
zero cost to the request hot path.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional

from repro.obs.metrics import (
    LATENCY_BUCKETS,
    MetricFamily,
    MetricsRegistry,
    Sample,
)
from repro.obs.propagate import TraceContext, new_context
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import NULL_TRACE, AnyTrace, Trace, TraceStore


class Recorder:
    """Live observability sinks plus the per-request recording protocol."""

    enabled = True

    def __init__(self, *, metrics: Optional[MetricsRegistry] = None,
                 tracing: bool = False,
                 slow_log: Optional[SlowQueryLog] = None,
                 trace_store: Optional[TraceStore] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracing = tracing
        self.slow_log = slow_log if slow_log is not None else SlowQueryLog()
        #: Finished traces by trace id (``repro cluster trace`` fetches
        #: from here after the request is gone).
        self.trace_store = trace_store if trace_store is not None \
            else TraceStore()
        self._request_seconds = self.metrics.histogram(
            "repro_request_seconds",
            "End-to-end latency of AnnotationService.submit",
            buckets=LATENCY_BUCKETS)
        self._phase_seconds = self.metrics.histogram(
            "repro_phase_seconds",
            "Per-phase time within one request (parse/plan/enumerate/"
            "schedule/estimate/serialize)",
            labelnames=("phase",), buckets=LATENCY_BUCKETS)
        # Children are created once and live forever, and phase names are a
        # small code-defined set -- memoising them here skips the labelled
        # lookup (tuple build + registry lock) on every finished request.
        self._phase_children: dict = {}

    # -- the per-request protocol -----------------------------------------

    def start_trace(self, name: str = "request",
                    context: Optional[TraceContext] = None) -> AnyTrace:
        """A fresh trace for one request (always real on a live recorder:
        phase histograms and the slow log are fed from its spans even when
        Chrome export was not requested).  Every trace gets a distributed
        trace id -- a propagated inbound ``context`` supplies it, otherwise
        a fresh one is minted -- so slowlog entries and result events can
        always name the trace they belong to."""
        return Trace(name, context=context if context is not None
                     else new_context())

    def observe_request(self, sql: str, elapsed_seconds: float, *,
                        trace: AnyTrace = NULL_TRACE,
                        candidates: int = 0, groups: int = 0) -> None:
        """Fold one finished request into histograms, the slow log, and
        the trace store."""
        phases = trace.phase_totals()
        self._request_seconds.observe(elapsed_seconds)
        for phase, seconds in phases.items():
            child = self._phase_children.get(phase)
            if child is None:
                child = self._phase_children[phase] = \
                    self._phase_seconds.labels(phase=phase)
            child.observe(seconds)
        self.slow_log.record(sql, elapsed_seconds, candidates=candidates,
                             groups=groups, phases=phases,
                             trace_id=trace.trace_id)
        if trace.trace_id is not None:
            self.trace_store.put(trace)


class NullRecorder:
    """The disabled recorder: every operation is free and does nothing."""

    enabled = False
    tracing = False
    metrics = None
    slow_log = None
    trace_store = None

    def start_trace(self, name: str = "request",
                    context: Optional[TraceContext] = None) -> AnyTrace:
        return NULL_TRACE

    def observe_request(self, sql: str, elapsed_seconds: float, *,
                        trace: AnyTrace = NULL_TRACE,
                        candidates: int = 0, groups: int = 0) -> None:
        pass


#: The shared disabled recorder (the default for bare services).
NULL_RECORDER = NullRecorder()


# -- scrape-time collectors ---------------------------------------------------


def service_stats_collector(service) -> "callable":
    """A registry collector exporting a service's lifetime counters.

    Reads :meth:`AnnotationService.stats` at scrape time and renders the
    existing counter structures -- requests, caches, backends, shards,
    single-flight, fusion, planner -- as Prometheus families.  Nothing is
    double-counted on the hot path; the source of truth stays the service's
    ``_counters_lock``-guarded integers.
    """

    def collect() -> Iterable[MetricFamily]:
        stats = service.stats()
        families = [
            _family("repro_service_requests_total", "counter",
                    "Requests served by the annotation service",
                    [({}, stats.requests)]),
            _family("repro_service_answers_total", "counter",
                    "Candidate answers annotated",
                    [({}, stats.answers_served)]),
            _family("repro_service_estimates_computed_total", "counter",
                    "Certainty estimates actually computed",
                    [({}, stats.estimates_computed)]),
            _family("repro_service_estimates_reused_total", "counter",
                    "Certainty estimates served from cache or joined flights",
                    [({}, stats.estimates_reused)]),
            _family("repro_service_tuples_batched_total", "counter",
                    "Tuples that shared another tuple's estimate",
                    [({}, stats.tuples_batched)]),
        ]
        cache_rows = {"hits": [], "misses": [], "evictions": [], "size": []}
        for cache in stats.caches:
            labels = {"cache": cache.name}
            cache_rows["hits"].append((labels, cache.hits))
            cache_rows["misses"].append((labels, cache.misses))
            cache_rows["evictions"].append((labels, cache.evictions))
            cache_rows["size"].append((labels, cache.size))
        families.extend([
            _family("repro_cache_hits_total", "counter",
                    "Cache hits per cache layer", cache_rows["hits"]),
            _family("repro_cache_misses_total", "counter",
                    "Cache misses per cache layer", cache_rows["misses"]),
            _family("repro_cache_evictions_total", "counter",
                    "Cache evictions per cache layer", cache_rows["evictions"]),
            _family("repro_cache_size", "gauge",
                    "Entries currently held per cache layer",
                    cache_rows["size"]),
        ])
        families.append(_family(
            "repro_backend_requests_total", "counter",
            "Requests executed per storage backend",
            [({"backend": backend.backend}, backend.requests)
             for backend in stats.backends]))
        if stats.shards:
            families.append(_family(
                "repro_shard_tasks_total", "counter",
                "Frontier computations per shard",
                [({"shard": str(shard.shard)}, shard.tasks)
                 for shard in stats.shards]))
            families.append(_family(
                "repro_shard_witnesses_total", "counter",
                "Witnesses produced per shard",
                [({"shard": str(shard.shard)}, shard.witnesses)
                 for shard in stats.shards]))
        if stats.single_flight is not None:
            flight = stats.single_flight
            families.append(_family(
                "repro_estimate_flights_total", "counter",
                "Estimate single-flight outcomes",
                [({"outcome": "launched"}, flight.launches),
                 ({"outcome": "joined"}, flight.joins),
                 ({"outcome": "failed"}, flight.failures)]))
            families.append(_family(
                "repro_estimate_flights_in_flight", "gauge",
                "Estimate computations currently in flight",
                [({}, flight.in_flight)]))
        if stats.fusion is not None:
            fusion = stats.fusion
            families.append(_family(
                "repro_fused_kernels_total", "counter",
                "Fused kernel launches", [({}, fusion.kernels_launched)]))
            families.append(_family(
                "repro_fused_tuples_total", "counter",
                "Tuples decided through fused launches",
                [({}, fusion.tuples_fused)]))
            families.append(_family(
                "repro_fused_batches_total", "counter",
                "Fused batches executed", [({}, fusion.batches)]))
        if stats.planner is not None and stats.planner.plans:
            planner = stats.planner
            families.append(_family(
                "repro_planner_plans_total", "counter",
                "Requests planned by the cost-based planner",
                [({}, planner.plans)]))
            families.append(_family(
                "repro_planner_backend_choices_total", "counter",
                "Planner backend decisions",
                [({"backend": backend}, count) for backend, count
                 in sorted(planner.backend_choices.items())]))
            families.append(_family(
                "repro_planner_fused_plans_total", "counter",
                "Plans that enabled kernel fusion",
                [({}, planner.fused_plans)]))
        return families

    return collect


def process_collector() -> "callable":
    """Process-level basics: uptime and (where available) RSS."""
    started = time.time()

    def collect() -> Iterable[MetricFamily]:
        families = [_family(
            "repro_process_uptime_seconds", "gauge",
            "Seconds since the recorder was created",
            [({}, time.time() - started)])]
        try:
            import resource
            rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            families.append(_family(
                "repro_process_max_rss_bytes", "gauge",
                "Peak resident set size", [({}, rss_kb * 1024)]))
        except (ImportError, OSError):  # pragma: no cover - non-Unix
            pass
        return families

    return collect


def _family(name: str, kind: str, help: str, rows) -> MetricFamily:
    return MetricFamily(
        name=name, kind=kind, help=help,
        samples=tuple(Sample(name, dict(labels), float(value))
                      for labels, value in rows))
