"""The live operator console behind ``repro top``.

Polls a running server's ``GET /metrics``, ``GET /stats`` and
``GET /history`` endpoints and renders a refreshing terminal dashboard:
request throughput with a qps sparkline, windowed latency quantiles, SLO
burn-rate alert states, cache hit rates, single-flight coalescing, planner
decisions, fusion counters, per-worker trends (cluster front doors), and
the slow-query log.

Quantiles come from *subtracting histogram snapshots* bucket-for-bucket
and running :func:`~repro.obs.metrics.histogram_quantile` on the delta --
the fixed log-spaced buckets make the subtraction well-defined.  When the
server exports ``/history`` (the in-process tsdb), the window is computed
server-side from its snapshot ring, so even the *first* frame shows
windowed numbers and sparklines; without it the console falls back to
diffing its own consecutive scrapes.

The fetching side is a plain injectable callable so the console is testable
without sockets, and ``count=`` bounds the number of frames so tests (and
``repro top --count 1``) terminate.  ``repro top --json`` emits one
:func:`snapshot_payload` instead of a dashboard -- the machine-readable
form for scripts and check runners.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, TextIO

from repro.obs.metrics import histogram_quantile, parse_exposition

#: ANSI: clear screen + home the cursor (used between frames on a tty).
_CLEAR = "\x1b[2J\x1b[H"

MetricsMap = dict


@dataclass
class ConsoleSample:
    """One poll: wall-clock time plus the endpoint payloads."""

    time: float
    stats: dict
    metrics: MetricsMap = field(default_factory=dict)
    #: The ``/history`` payload (tsdb snapshots); empty when the server
    #: does not export one (observability off, or a pre-tsdb server).
    history: dict = field(default_factory=dict)


def fetch_sample(base_url: str, timeout: float = 5.0) -> ConsoleSample:
    """Poll ``/stats``, ``/metrics`` and ``/history`` over HTTP."""
    base = base_url.rstrip("/")
    with urllib.request.urlopen(f"{base}/stats", timeout=timeout) as response:
        stats = json.loads(response.read().decode("utf-8"))
    metrics: MetricsMap = {}
    try:
        with urllib.request.urlopen(f"{base}/metrics",
                                    timeout=timeout) as response:
            metrics = parse_exposition(response.read().decode("utf-8"))
    except urllib.error.HTTPError:
        # An older server without /metrics still gets a /stats-only console.
        metrics = {}
    history: dict = {}
    try:
        with urllib.request.urlopen(f"{base}/history",
                                    timeout=timeout) as response:
            history = json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError:
        history = {}
    return ConsoleSample(time=time.time(), stats=stats, metrics=metrics,
                         history=history)


# -- derived numbers ----------------------------------------------------------


def _metric(metrics: MetricsMap, name: str, **labels: str) -> Optional[float]:
    exact = metrics.get((name, tuple(sorted(labels.items()))))
    if exact is not None:
        return exact
    # A cluster coordinator re-exports every worker's samples with an extra
    # ``worker`` label; the fleet-wide value is their sum.
    total: Optional[float] = None
    for (metric_name, label_items), value in metrics.items():
        if metric_name != name:
            continue
        label_map = dict(label_items)
        if "worker" not in label_map:
            continue
        label_map.pop("worker")
        if label_map == labels:
            total = value if total is None else total + value
    return total


def _histogram_buckets(metrics: MetricsMap, name: str,
                       **labels: str) -> list[tuple[float, float]]:
    """Cumulative ``(le, count)`` pairs of one histogram child.

    Worker-labelled children (a cluster exposition) are summed per bound,
    so quantiles aggregate over the fleet.
    """
    totals: dict[float, float] = {}
    for (metric_name, label_items), value in metrics.items():
        if metric_name != f"{name}_bucket":
            continue
        label_map = dict(label_items)
        bound_text = label_map.pop("le", None)
        label_map.pop("worker", None)
        if bound_text is None or label_map != labels:
            continue
        bound = float("inf") if bound_text == "+Inf" else float(bound_text)
        totals[bound] = totals.get(bound, 0.0) + value
    return sorted(totals.items())


def _bucket_delta(current: Sequence[tuple[float, float]],
                  previous: Sequence[tuple[float, float]],
                  ) -> list[tuple[float, float]]:
    earlier = dict(previous)
    return [(bound, max(0.0, count - earlier.get(bound, 0.0)))
            for bound, count in current]


def window_quantiles(current: ConsoleSample,
                     previous: Optional[ConsoleSample],
                     name: str = "repro_request_seconds",
                     quantiles: Sequence[float] = (0.5, 0.99),
                     ) -> list[Optional[float]]:
    """Latency quantiles over the window between two polls.

    Falls back to lifetime quantiles on the first frame (no previous
    sample to subtract).
    """
    buckets = _histogram_buckets(current.metrics, name)
    if previous is not None:
        buckets = _bucket_delta(
            buckets, _histogram_buckets(previous.metrics, name))
    return [histogram_quantile(buckets, quantile) for quantile in quantiles]


def _rate(current: ConsoleSample, previous: Optional[ConsoleSample],
          name: str, **labels: str) -> Optional[float]:
    """Per-second increase of a counter between two polls."""
    if previous is None:
        return None
    now = _metric(current.metrics, name, **labels)
    then = _metric(previous.metrics, name, **labels)
    elapsed = current.time - previous.time
    if now is None or then is None or elapsed <= 0:
        return None
    return max(0.0, now - then) / elapsed


# -- server-side history (the tsdb window) ------------------------------------

_SPARK_GLYPHS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 24) -> str:
    """A Unicode sparkline of the last ``width`` values (peak-scaled)."""
    tail = list(values)[-width:]
    if not tail:
        return ""
    peak = max(tail)
    if peak <= 0:
        return _SPARK_GLYPHS[0] * len(tail)
    top = len(_SPARK_GLYPHS) - 1
    return "".join(
        _SPARK_GLYPHS[min(top, int(round(value / peak * top)))]
        for value in tail)


def counter_rate_series(snapshots: Sequence[dict],
                        key: str) -> list[float]:
    """Per-second deltas of one tsdb counter series (one rate per pair of
    consecutive snapshots) -- the data behind the qps sparklines.

    ``key`` is the exposition-line prefix the tsdb snapshots by, e.g.
    ``repro_server_requests_total`` or a labelled child.
    """
    rates: list[float] = []
    for earlier, later in zip(snapshots, snapshots[1:]):
        elapsed = later.get("time", 0.0) - earlier.get("time", 0.0)
        if elapsed <= 0:
            continue
        delta = later.get("samples", {}).get(key, 0.0) \
            - earlier.get("samples", {}).get(key, 0.0)
        rates.append(max(0.0, delta) / elapsed)
    return rates


def _history_buckets(start: dict, end: dict,
                     name: str) -> list[tuple[float, float]]:
    """Cumulative bucket deltas of one histogram between two snapshots."""
    prefix = f"{name}_bucket{{"
    buckets: list[tuple[float, float]] = []
    for key, value in end.get("samples", {}).items():
        if not key.startswith(prefix):
            continue
        marker = key.find('le="')
        if marker < 0:
            continue
        closing = key.find('"', marker + 4)
        if closing < 0:
            continue
        bound_text = key[marker + 4:closing]
        bound = float("inf") if bound_text == "+Inf" else float(bound_text)
        delta = max(0.0, value - start.get("samples", {}).get(key, 0.0))
        buckets.append((bound, delta))
    return sorted(buckets)


def history_quantiles(snapshots: Sequence[dict],
                      name: str = "repro_request_seconds",
                      quantiles: Sequence[float] = (0.5, 0.99),
                      ) -> list[Optional[float]]:
    """Latency quantiles over a tsdb window (oldest to newest snapshot)."""
    if len(snapshots) < 2:
        return [None for _ in quantiles]
    buckets = _history_buckets(snapshots[0], snapshots[-1], name)
    return [histogram_quantile(buckets, quantile) for quantile in quantiles]


def history_window_seconds(snapshots: Sequence[dict]) -> Optional[float]:
    if len(snapshots) < 2:
        return None
    return snapshots[-1].get("time", 0.0) - snapshots[0].get("time", 0.0)


#: Request counters in preference order -- a coordinator's history carries
#: the cluster family, a worker's its server family.
_QPS_COUNTERS = ("repro_cluster_requests_total",
                 "repro_server_requests_total",
                 "repro_service_requests_total")

#: Request-latency histograms, same preference order.
_LATENCY_HISTOGRAMS = ("repro_cluster_request_seconds",
                       "repro_request_seconds")


def qps_series(snapshots: Sequence[dict]) -> list[float]:
    """The request-rate series of whichever request counter the history
    carries (cluster front door or single server)."""
    if not snapshots:
        return []
    values = snapshots[-1].get("samples", {})
    for name in _QPS_COUNTERS:
        if name in values:
            return counter_rate_series(snapshots, name)
    return []


def history_latency(snapshots: Sequence[dict],
                    quantiles: Sequence[float] = (0.5, 0.99),
                    ) -> list[Optional[float]]:
    """Windowed latency quantiles from whichever request histogram the
    history carries."""
    if snapshots:
        values = snapshots[-1].get("samples", {})
        for name in _LATENCY_HISTOGRAMS:
            if any(key.startswith(f"{name}_bucket{{") for key in values):
                return history_quantiles(snapshots, name,
                                         quantiles=quantiles)
    return [None for _ in quantiles]


# -- formatting ---------------------------------------------------------------


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value < 0.001:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def _fmt_rate(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.1f}/s"


def _fmt_ratio(hits: float, misses: float) -> str:
    total = hits + misses
    if total <= 0:
        return "-"
    return f"{100.0 * hits / total:.1f}%"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 ) -> list[str]:
    """Plain aligned columns; first column left-, the rest right-aligned."""
    if not rows:
        rows = []
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        parts = [cells[0].ljust(widths[0])]
        parts.extend(cell.rjust(width)
                     for cell, width in zip(cells[1:], widths[1:]))
        return "  ".join(parts).rstrip()
    lines = [line(headers), line(["-" * width for width in widths])]
    lines.extend(line(row) for row in rows)
    return lines


def _alerts_section(stats: dict) -> list[str]:
    """The SLO burn-rate pane (only when the server reports alerts)."""
    alerts = stats.get("alerts") or []
    if not alerts:
        return []
    rows = [(f"{alert.get('slo', '?')}/{alert.get('severity', '?')}",
             f"{alert.get('burn_short', 0.0):.2f}",
             f"{alert.get('burn_long', 0.0):.2f}",
             f"{alert.get('burn_threshold', 0.0):.1f}",
             "FIRING" if alert.get("firing") else "ok")
            for alert in alerts]
    return ["", *render_table(
        ("slo alert", "burn short", "burn long", "threshold", "state"),
        rows)]


def _worker_trends_section(history: dict) -> list[str]:
    """Per-worker qps sparklines (cluster ``/history`` payloads only)."""
    workers = history.get("workers") or {}
    rows = []
    for worker_id in sorted(workers):
        snapshots = workers[worker_id].get("snapshots", [])
        series = qps_series(snapshots)
        if not series:
            continue
        rows.append((worker_id, sparkline(series),
                     _fmt_rate(series[-1] if series else None)))
    if not rows:
        return []
    return ["", *render_table(("worker trend", "qps history", "qps"), rows)]


def _cluster_sections(stats: dict) -> list[str]:
    """Per-worker rows and coordinator counters (cluster payloads only)."""
    out: list[str] = []
    workers = stats.get("workers")
    if workers:
        rows = [(worker.get("id", "?"), worker.get("state", "?"),
                 str(worker.get("data_version", 0)),
                 str(worker.get("routed", 0)),
                 str(worker.get("requests", 0)),
                 str(worker.get("coalesced", 0)),
                 str(worker.get("active", 0)))
                for worker in workers]
        out.append("")
        out.extend(render_table(
            ("worker", "state", "version", "routed", "requests",
             "coalesced", "active"), rows))
    coordinator = stats.get("coordinator")
    if coordinator:
        out.append("")
        out.extend(render_table(
            ("coordinator", "value"),
            [("launched", str(coordinator.get("launched", 0))),
             ("coalesced", str(coordinator.get("coalesced", 0))),
             ("failovers", str(coordinator.get("failovers", 0))),
             ("worker deaths", str(coordinator.get("worker_deaths", 0))),
             ("respawns", str(coordinator.get("respawns", 0))),
             ("mutations", str(coordinator.get("mutations", 0))),
             ("barrier version",
              str(coordinator.get("barrier_version", 0)))]))
    return out


def render_frame(current: ConsoleSample,
                 previous: Optional[ConsoleSample]) -> str:
    """One full dashboard frame as text."""
    server = current.stats.get("server", {})
    service = current.stats.get("service", {})
    out: list[str] = []

    snapshots = current.history.get("snapshots", [])
    rates = qps_series(snapshots)
    if len(snapshots) >= 2:
        # Server-side window: the tsdb ring, independent of our poll cadence.
        qps: Optional[float] = rates[-1] if rates else None
        p50, p99 = history_latency(snapshots)
        span = history_window_seconds(snapshots) or 0.0
        window = f"{span:.0f}s server-side window"
    else:
        qps = _rate(current, previous, "repro_service_requests_total")
        p50, p99 = window_quantiles(current, previous)
        window = "lifetime" if previous is None \
            else f"{current.time - previous.time:.1f}s window"
    throughput_rows = [
        ("requests total", str(server.get("requests",
                                          service.get("requests", 0)))),
        ("qps", _fmt_rate(qps))]
    if rates:
        throughput_rows.append(("qps history", sparkline(rates)))
    throughput_rows.extend([
        ("p50 latency", _fmt_seconds(p50)),
        ("p99 latency", _fmt_seconds(p99)),
        ("active flights", str(server.get("active", "-"))),
        ("overloads", str(server.get("overloads", 0))),
        ("query errors", str(server.get("query_errors", 0)))])
    out.append(f"repro top  -  {time.strftime('%H:%M:%S', time.localtime(current.time))}"
               f"  ({window})")
    out.append("")
    out.extend(render_table(("throughput", "value"), throughput_rows))

    out.extend(_alerts_section(current.stats))

    launched = server.get("launched", 0)
    coalesced = server.get("coalesced", 0)
    coalescing_rows = [("server flights", str(launched), str(coalesced),
                        _fmt_ratio(coalesced, launched))]
    coordinator = current.stats.get("coordinator")
    if coordinator:
        coalescing_rows.insert(0, (
            "cluster flights", str(coordinator.get("launched", 0)),
            str(coordinator.get("coalesced", 0)),
            _fmt_ratio(coordinator.get("coalesced", 0),
                       coordinator.get("launched", 0))))
    out.append("")
    out.extend(render_table(
        ("coalescing", "launched", "joined", "join rate"), coalescing_rows))

    out.extend(_cluster_sections(current.stats))
    out.extend(_worker_trends_section(current.history))

    caches = service.get("caches", [])
    if caches:
        rows = []
        for cache in caches:
            hits = cache.get("hits", 0)
            misses = cache.get("misses", 0)
            rows.append((cache.get("name", "?"), str(cache.get("size", 0)),
                         str(hits), str(misses), _fmt_ratio(hits, misses)))
        out.append("")
        out.extend(render_table(
            ("cache", "size", "hits", "misses", "hit rate"), rows))

    planner = service.get("planner")
    if planner and planner.get("plans"):
        choices = ", ".join(f"{backend}={count}" for backend, count
                            in sorted(planner.get("backend_choices",
                                                  {}).items()))
        out.append("")
        out.extend(render_table(
            ("planner", "value"),
            [("plans", str(planner.get("plans", 0))),
             ("fused plans", str(planner.get("fused_plans", 0))),
             ("backend choices", choices or "-")]))

    fusion = service.get("fusion")
    if fusion and (fusion.get("batches") or fusion.get("kernels_launched")):
        out.append("")
        out.extend(render_table(
            ("fusion", "value"),
            [("batches", str(fusion.get("batches", 0))),
             ("kernels launched", str(fusion.get("kernels_launched", 0))),
             ("tuples fused", str(fusion.get("tuples_fused", 0)))]))

    slow = service.get("slow_queries", [])
    if slow:
        rows = []
        for entry in slow[:5]:
            phases = entry.get("phases", {})
            top_phase = max(phases.items(), key=lambda item: item[1])[0] \
                if phases else "-"
            trace_id = entry.get("trace_id") or "-"
            rows.append((entry.get("sql", "?")[:48],
                         _fmt_seconds(entry.get("elapsed_seconds")),
                         str(entry.get("candidates", 0)), top_phase,
                         trace_id[:12]))
        out.append("")
        out.extend(render_table(
            ("slow query", "elapsed", "candidates", "hottest phase",
             "trace"), rows))

    return "\n".join(out) + "\n"


def snapshot_payload(sample: ConsoleSample) -> dict:
    """One machine-readable console snapshot (``repro top --json``).

    The fleet rows, alert states and windowed latency/throughput numbers
    of one poll, shaped for scripts: everything the dashboard renders,
    none of the formatting.
    """
    snapshots = sample.history.get("snapshots", [])
    rates = qps_series(snapshots)
    p50, p99 = history_latency(snapshots)
    workers_history = sample.history.get("workers") or {}
    worker_rates = {
        worker_id: series[-1]
        for worker_id, payload in sorted(workers_history.items())
        if (series := qps_series(payload.get("snapshots", [])))}
    return {
        "time": sample.time,
        "window_seconds": history_window_seconds(snapshots),
        "qps": rates[-1] if rates else None,
        "qps_series": rates,
        "p50_seconds": p50,
        "p99_seconds": p99,
        "alerts": sample.stats.get("alerts", []),
        "firing": any(alert.get("firing")
                      for alert in sample.stats.get("alerts", [])),
        "workers": sample.stats.get("workers", []),
        "worker_qps": worker_rates,
        "server": sample.stats.get("server", {}),
        "coordinator": sample.stats.get("coordinator"),
        "service": sample.stats.get("service", {}),
    }


def render_stats_tables(stats: dict) -> str:
    """A ``/stats`` payload as aligned tables (``repro client --probe
    stats`` without ``--json``)."""
    out: list[str] = []
    server = stats.get("server", {})
    if server:
        out.extend(render_table(
            ("server", "value"),
            [(key, str(value)) for key, value in server.items()]))
    cluster = _cluster_sections(stats)
    if cluster:
        out.extend(cluster if out else cluster[1:])
    service = stats.get("service", {})
    scalar_keys = ("requests", "answers_served", "estimates_computed",
                   "estimates_reused", "tuples_batched")
    scalars = [(key, str(service[key])) for key in scalar_keys
               if key in service]
    if scalars:
        out.append("")
        out.extend(render_table(("service", "value"), scalars))
    caches = service.get("caches", [])
    if caches:
        out.append("")
        out.extend(render_table(
            ("cache", "cap", "size", "hits", "misses", "evictions"),
            [(cache.get("name", "?"), str(cache.get("capacity", 0)),
              str(cache.get("size", 0)), str(cache.get("hits", 0)),
              str(cache.get("misses", 0)), str(cache.get("evictions", 0)))
             for cache in caches]))
    backends = service.get("backends", [])
    if backends:
        out.append("")
        out.extend(render_table(
            ("backend", "requests", "plan hits", "plan misses"),
            [(backend.get("backend", "?"), str(backend.get("requests", 0)),
              str(backend.get("plan_hits", 0)),
              str(backend.get("plan_misses", 0)))
             for backend in backends]))
    flight = service.get("single_flight")
    if flight:
        out.append("")
        out.extend(render_table(
            ("single flight", "launched", "joined", "failed", "in flight"),
            [(flight.get("name", "flights"), str(flight.get("launches", 0)),
              str(flight.get("joins", 0)), str(flight.get("failures", 0)),
              str(flight.get("in_flight", 0)))]))
    planner = service.get("planner")
    if planner and planner.get("plans"):
        choices = ", ".join(f"{backend}={count}" for backend, count
                            in sorted(planner.get("backend_choices",
                                                  {}).items()))
        out.append("")
        out.extend(render_table(
            ("planner", "value"),
            [("plans", str(planner.get("plans", 0))),
             ("fused plans", str(planner.get("fused_plans", 0))),
             ("backend choices", choices or "-")]))
    fusion = service.get("fusion")
    if fusion and (fusion.get("batches") or fusion.get("kernels_launched")):
        out.append("")
        out.extend(render_table(
            ("fusion", "value"),
            [("batches", str(fusion.get("batches", 0))),
             ("kernels launched", str(fusion.get("kernels_launched", 0))),
             ("tuples fused", str(fusion.get("tuples_fused", 0)))]))
    slow = service.get("slow_queries", [])
    if slow:
        out.append("")
        out.extend(render_table(
            ("slow query", "elapsed", "candidates"),
            [(entry.get("sql", "?")[:60],
              _fmt_seconds(entry.get("elapsed_seconds")),
              str(entry.get("candidates", 0))) for entry in slow]))
    return "\n".join(out)


def run_top(base_url: str, *, interval: float = 2.0,
            count: Optional[int] = None, stream: Optional[TextIO] = None,
            clear: Optional[bool] = None,
            fetch: Optional[Callable[[str], ConsoleSample]] = None) -> int:
    """Poll and render until interrupted (or ``count`` frames).

    Returns the number of frames rendered.  ``fetch`` is injectable so
    tests can drive the console from canned samples.
    """
    stream = stream if stream is not None else sys.stdout
    fetch = fetch if fetch is not None else fetch_sample
    if clear is None:
        clear = getattr(stream, "isatty", lambda: False)()
    previous: Optional[ConsoleSample] = None
    frames = 0
    try:
        while count is None or frames < count:
            if frames > 0:
                time.sleep(interval)
            current = fetch(base_url)
            if clear:
                stream.write(_CLEAR)
            stream.write(render_frame(current, previous))
            stream.flush()
            previous = current
            frames += 1
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    return frames
