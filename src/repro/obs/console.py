"""The live operator console behind ``repro top``.

Polls a running server's ``GET /metrics`` and ``GET /stats`` endpoints and
renders a refreshing terminal dashboard: request throughput and windowed
latency quantiles (computed by *subtracting consecutive histogram
snapshots* bucket-for-bucket and running
:func:`~repro.obs.metrics.histogram_quantile` on the delta -- the fixed
log-spaced buckets make the subtraction well-defined), cache hit rates,
single-flight coalescing, planner decisions, fusion counters, and the
slow-query log.

The fetching side is a plain injectable callable so the console is testable
without sockets, and ``count=`` bounds the number of frames so tests (and
``repro top --count 1``) terminate.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, TextIO

from repro.obs.metrics import histogram_quantile, parse_exposition

#: ANSI: clear screen + home the cursor (used between frames on a tty).
_CLEAR = "\x1b[2J\x1b[H"

MetricsMap = dict


@dataclass
class ConsoleSample:
    """One poll: wall-clock time plus both endpoint payloads."""

    time: float
    stats: dict
    metrics: MetricsMap = field(default_factory=dict)


def fetch_sample(base_url: str, timeout: float = 5.0) -> ConsoleSample:
    """Poll ``/stats`` and ``/metrics`` over HTTP."""
    base = base_url.rstrip("/")
    with urllib.request.urlopen(f"{base}/stats", timeout=timeout) as response:
        stats = json.loads(response.read().decode("utf-8"))
    metrics: MetricsMap = {}
    try:
        with urllib.request.urlopen(f"{base}/metrics",
                                    timeout=timeout) as response:
            metrics = parse_exposition(response.read().decode("utf-8"))
    except urllib.error.HTTPError:
        # An older server without /metrics still gets a /stats-only console.
        metrics = {}
    return ConsoleSample(time=time.time(), stats=stats, metrics=metrics)


# -- derived numbers ----------------------------------------------------------


def _metric(metrics: MetricsMap, name: str, **labels: str) -> Optional[float]:
    exact = metrics.get((name, tuple(sorted(labels.items()))))
    if exact is not None:
        return exact
    # A cluster coordinator re-exports every worker's samples with an extra
    # ``worker`` label; the fleet-wide value is their sum.
    total: Optional[float] = None
    for (metric_name, label_items), value in metrics.items():
        if metric_name != name:
            continue
        label_map = dict(label_items)
        if "worker" not in label_map:
            continue
        label_map.pop("worker")
        if label_map == labels:
            total = value if total is None else total + value
    return total


def _histogram_buckets(metrics: MetricsMap, name: str,
                       **labels: str) -> list[tuple[float, float]]:
    """Cumulative ``(le, count)`` pairs of one histogram child.

    Worker-labelled children (a cluster exposition) are summed per bound,
    so quantiles aggregate over the fleet.
    """
    totals: dict[float, float] = {}
    for (metric_name, label_items), value in metrics.items():
        if metric_name != f"{name}_bucket":
            continue
        label_map = dict(label_items)
        bound_text = label_map.pop("le", None)
        label_map.pop("worker", None)
        if bound_text is None or label_map != labels:
            continue
        bound = float("inf") if bound_text == "+Inf" else float(bound_text)
        totals[bound] = totals.get(bound, 0.0) + value
    return sorted(totals.items())


def _bucket_delta(current: Sequence[tuple[float, float]],
                  previous: Sequence[tuple[float, float]],
                  ) -> list[tuple[float, float]]:
    earlier = dict(previous)
    return [(bound, max(0.0, count - earlier.get(bound, 0.0)))
            for bound, count in current]


def window_quantiles(current: ConsoleSample,
                     previous: Optional[ConsoleSample],
                     name: str = "repro_request_seconds",
                     quantiles: Sequence[float] = (0.5, 0.99),
                     ) -> list[Optional[float]]:
    """Latency quantiles over the window between two polls.

    Falls back to lifetime quantiles on the first frame (no previous
    sample to subtract).
    """
    buckets = _histogram_buckets(current.metrics, name)
    if previous is not None:
        buckets = _bucket_delta(
            buckets, _histogram_buckets(previous.metrics, name))
    return [histogram_quantile(buckets, quantile) for quantile in quantiles]


def _rate(current: ConsoleSample, previous: Optional[ConsoleSample],
          name: str, **labels: str) -> Optional[float]:
    """Per-second increase of a counter between two polls."""
    if previous is None:
        return None
    now = _metric(current.metrics, name, **labels)
    then = _metric(previous.metrics, name, **labels)
    elapsed = current.time - previous.time
    if now is None or then is None or elapsed <= 0:
        return None
    return max(0.0, now - then) / elapsed


# -- formatting ---------------------------------------------------------------


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value < 0.001:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def _fmt_rate(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.1f}/s"


def _fmt_ratio(hits: float, misses: float) -> str:
    total = hits + misses
    if total <= 0:
        return "-"
    return f"{100.0 * hits / total:.1f}%"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]],
                 ) -> list[str]:
    """Plain aligned columns; first column left-, the rest right-aligned."""
    if not rows:
        rows = []
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        parts = [cells[0].ljust(widths[0])]
        parts.extend(cell.rjust(width)
                     for cell, width in zip(cells[1:], widths[1:]))
        return "  ".join(parts).rstrip()
    lines = [line(headers), line(["-" * width for width in widths])]
    lines.extend(line(row) for row in rows)
    return lines


def _cluster_sections(stats: dict) -> list[str]:
    """Per-worker rows and coordinator counters (cluster payloads only)."""
    out: list[str] = []
    workers = stats.get("workers")
    if workers:
        rows = [(worker.get("id", "?"), worker.get("state", "?"),
                 str(worker.get("data_version", 0)),
                 str(worker.get("routed", 0)),
                 str(worker.get("requests", 0)),
                 str(worker.get("coalesced", 0)),
                 str(worker.get("active", 0)))
                for worker in workers]
        out.append("")
        out.extend(render_table(
            ("worker", "state", "version", "routed", "requests",
             "coalesced", "active"), rows))
    coordinator = stats.get("coordinator")
    if coordinator:
        out.append("")
        out.extend(render_table(
            ("coordinator", "value"),
            [("launched", str(coordinator.get("launched", 0))),
             ("coalesced", str(coordinator.get("coalesced", 0))),
             ("failovers", str(coordinator.get("failovers", 0))),
             ("worker deaths", str(coordinator.get("worker_deaths", 0))),
             ("respawns", str(coordinator.get("respawns", 0))),
             ("mutations", str(coordinator.get("mutations", 0))),
             ("barrier version",
              str(coordinator.get("barrier_version", 0)))]))
    return out


def render_frame(current: ConsoleSample,
                 previous: Optional[ConsoleSample]) -> str:
    """One full dashboard frame as text."""
    server = current.stats.get("server", {})
    service = current.stats.get("service", {})
    out: list[str] = []

    qps = _rate(current, previous, "repro_service_requests_total")
    p50, p99 = window_quantiles(current, previous)
    window = "lifetime" if previous is None \
        else f"{current.time - previous.time:.1f}s window"
    out.append(f"repro top  -  {time.strftime('%H:%M:%S', time.localtime(current.time))}"
               f"  ({window})")
    out.append("")
    out.extend(render_table(
        ("throughput", "value"),
        [("requests total", str(server.get("requests",
                                           service.get("requests", 0)))),
         ("qps", _fmt_rate(qps)),
         ("p50 latency", _fmt_seconds(p50)),
         ("p99 latency", _fmt_seconds(p99)),
         ("active flights", str(server.get("active", "-"))),
         ("overloads", str(server.get("overloads", 0))),
         ("query errors", str(server.get("query_errors", 0)))]))

    launched = server.get("launched", 0)
    coalesced = server.get("coalesced", 0)
    coalescing_rows = [("server flights", str(launched), str(coalesced),
                        _fmt_ratio(coalesced, launched))]
    coordinator = current.stats.get("coordinator")
    if coordinator:
        coalescing_rows.insert(0, (
            "cluster flights", str(coordinator.get("launched", 0)),
            str(coordinator.get("coalesced", 0)),
            _fmt_ratio(coordinator.get("coalesced", 0),
                       coordinator.get("launched", 0))))
    out.append("")
    out.extend(render_table(
        ("coalescing", "launched", "joined", "join rate"), coalescing_rows))

    out.extend(_cluster_sections(current.stats))

    caches = service.get("caches", [])
    if caches:
        rows = []
        for cache in caches:
            hits = cache.get("hits", 0)
            misses = cache.get("misses", 0)
            rows.append((cache.get("name", "?"), str(cache.get("size", 0)),
                         str(hits), str(misses), _fmt_ratio(hits, misses)))
        out.append("")
        out.extend(render_table(
            ("cache", "size", "hits", "misses", "hit rate"), rows))

    planner = service.get("planner")
    if planner and planner.get("plans"):
        choices = ", ".join(f"{backend}={count}" for backend, count
                            in sorted(planner.get("backend_choices",
                                                  {}).items()))
        out.append("")
        out.extend(render_table(
            ("planner", "value"),
            [("plans", str(planner.get("plans", 0))),
             ("fused plans", str(planner.get("fused_plans", 0))),
             ("backend choices", choices or "-")]))

    fusion = service.get("fusion")
    if fusion and (fusion.get("batches") or fusion.get("kernels_launched")):
        out.append("")
        out.extend(render_table(
            ("fusion", "value"),
            [("batches", str(fusion.get("batches", 0))),
             ("kernels launched", str(fusion.get("kernels_launched", 0))),
             ("tuples fused", str(fusion.get("tuples_fused", 0)))]))

    slow = service.get("slow_queries", [])
    if slow:
        rows = []
        for entry in slow[:5]:
            phases = entry.get("phases", {})
            top_phase = max(phases.items(), key=lambda item: item[1])[0] \
                if phases else "-"
            rows.append((entry.get("sql", "?")[:48],
                         _fmt_seconds(entry.get("elapsed_seconds")),
                         str(entry.get("candidates", 0)), top_phase))
        out.append("")
        out.extend(render_table(
            ("slow query", "elapsed", "candidates", "hottest phase"), rows))

    return "\n".join(out) + "\n"


def render_stats_tables(stats: dict) -> str:
    """A ``/stats`` payload as aligned tables (``repro client --probe
    stats`` without ``--json``)."""
    out: list[str] = []
    server = stats.get("server", {})
    if server:
        out.extend(render_table(
            ("server", "value"),
            [(key, str(value)) for key, value in server.items()]))
    cluster = _cluster_sections(stats)
    if cluster:
        out.extend(cluster if out else cluster[1:])
    service = stats.get("service", {})
    scalar_keys = ("requests", "answers_served", "estimates_computed",
                   "estimates_reused", "tuples_batched")
    scalars = [(key, str(service[key])) for key in scalar_keys
               if key in service]
    if scalars:
        out.append("")
        out.extend(render_table(("service", "value"), scalars))
    caches = service.get("caches", [])
    if caches:
        out.append("")
        out.extend(render_table(
            ("cache", "cap", "size", "hits", "misses", "evictions"),
            [(cache.get("name", "?"), str(cache.get("capacity", 0)),
              str(cache.get("size", 0)), str(cache.get("hits", 0)),
              str(cache.get("misses", 0)), str(cache.get("evictions", 0)))
             for cache in caches]))
    backends = service.get("backends", [])
    if backends:
        out.append("")
        out.extend(render_table(
            ("backend", "requests", "plan hits", "plan misses"),
            [(backend.get("backend", "?"), str(backend.get("requests", 0)),
              str(backend.get("plan_hits", 0)),
              str(backend.get("plan_misses", 0)))
             for backend in backends]))
    flight = service.get("single_flight")
    if flight:
        out.append("")
        out.extend(render_table(
            ("single flight", "launched", "joined", "failed", "in flight"),
            [(flight.get("name", "flights"), str(flight.get("launches", 0)),
              str(flight.get("joins", 0)), str(flight.get("failures", 0)),
              str(flight.get("in_flight", 0)))]))
    planner = service.get("planner")
    if planner and planner.get("plans"):
        choices = ", ".join(f"{backend}={count}" for backend, count
                            in sorted(planner.get("backend_choices",
                                                  {}).items()))
        out.append("")
        out.extend(render_table(
            ("planner", "value"),
            [("plans", str(planner.get("plans", 0))),
             ("fused plans", str(planner.get("fused_plans", 0))),
             ("backend choices", choices or "-")]))
    fusion = service.get("fusion")
    if fusion and (fusion.get("batches") or fusion.get("kernels_launched")):
        out.append("")
        out.extend(render_table(
            ("fusion", "value"),
            [("batches", str(fusion.get("batches", 0))),
             ("kernels launched", str(fusion.get("kernels_launched", 0))),
             ("tuples fused", str(fusion.get("tuples_fused", 0)))]))
    slow = service.get("slow_queries", [])
    if slow:
        out.append("")
        out.extend(render_table(
            ("slow query", "elapsed", "candidates"),
            [(entry.get("sql", "?")[:60],
              _fmt_seconds(entry.get("elapsed_seconds")),
              str(entry.get("candidates", 0))) for entry in slow]))
    return "\n".join(out)


def run_top(base_url: str, *, interval: float = 2.0,
            count: Optional[int] = None, stream: Optional[TextIO] = None,
            clear: Optional[bool] = None,
            fetch: Optional[Callable[[str], ConsoleSample]] = None) -> int:
    """Poll and render until interrupted (or ``count`` frames).

    Returns the number of frames rendered.  ``fetch`` is injectable so
    tests can drive the console from canned samples.
    """
    stream = stream if stream is not None else sys.stdout
    fetch = fetch if fetch is not None else fetch_sample
    if clear is None:
        clear = getattr(stream, "isatty", lambda: False)()
    previous: Optional[ConsoleSample] = None
    frames = 0
    try:
        while count is None or frames < count:
            if frames > 0:
                time.sleep(interval)
            current = fetch(base_url)
            if clear:
                stream.write(_CLEAR)
            stream.write(render_frame(current, previous))
            stream.flush()
            previous = current
            frames += 1
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    return frames
