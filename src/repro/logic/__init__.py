"""Two-sorted first-order logic with arithmetic: FO(+, ·, <).

This subpackage implements the query language of Section 3 of the paper:
terms over base and numerical variables with ``+`` and ``·`` (and the derived
``-`` and ``/``), atomic formulae (relation atoms, base equality, numerical
comparisons), Boolean connectives and typed quantifiers.

* :mod:`repro.logic.terms` -- typed variables and arithmetic terms;
* :mod:`repro.logic.formulas` -- formulae and queries;
* :mod:`repro.logic.builder` -- a small DSL for constructing queries in
  Python (operator overloading on terms, ``exists``/``forall`` helpers);
* :mod:`repro.logic.typecheck` -- free-variable computation and sort/schema
  checking;
* :mod:`repro.logic.fragments` -- syntactic fragment classification
  (CQ(<), CQ(+,<), FO(<), FO(+,·,<), ...), which drives the choice of
  algorithm in :mod:`repro.certainty`;
* :mod:`repro.logic.evaluation` -- evaluation over complete databases with
  active-domain quantifier semantics.
"""

from repro.logic.builder import (
    base_var,
    conj,
    disj,
    exists,
    forall,
    implies,
    neg,
    num,
    num_var,
    rel,
)
from repro.logic.evaluation import evaluate_boolean, evaluate_query
from repro.logic.formulas import (
    BaseEquality,
    Comparison as NumericComparison,
    Exists,
    FOAnd,
    FONot,
    FOOr,
    Forall,
    Formula,
    Query,
    RelationAtom,
)
from repro.logic.fragments import QueryFragment, classify_query
from repro.logic.parser import FOParseError, parse_formula, parse_query
from repro.logic.terms import (
    BaseConstant,
    NumericConstant,
    Sort,
    Term,
    TermOperation,
    Variable,
)
from repro.logic.typecheck import TypeCheckError, check_query, free_variables

__all__ = [
    "BaseConstant",
    "BaseEquality",
    "Exists",
    "FOAnd",
    "FOParseError",
    "FONot",
    "FOOr",
    "Forall",
    "Formula",
    "NumericComparison",
    "NumericConstant",
    "Query",
    "QueryFragment",
    "RelationAtom",
    "Sort",
    "Term",
    "TermOperation",
    "TypeCheckError",
    "Variable",
    "base_var",
    "check_query",
    "classify_query",
    "conj",
    "disj",
    "evaluate_boolean",
    "evaluate_query",
    "exists",
    "forall",
    "free_variables",
    "implies",
    "neg",
    "num",
    "num_var",
    "parse_formula",
    "parse_query",
    "rel",
]
