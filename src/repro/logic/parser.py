"""A text parser for FO(+, ·, <) queries.

The builder DSL of :mod:`repro.logic.builder` is convenient from Python, but
examples, tests and interactive exploration benefit from a plain-text syntax
close to the paper's notation.  The grammar:

.. code-block:: text

    query    :=  NAME '(' params ')' ':=' formula        -- named query
              |  formula                                   -- Boolean query
    params   :=  [ NAME ':' sort (',' NAME ':' sort)* ]
    sort     :=  'base' | 'num'

    formula  :=  implication
    implication := disjunction [ '->' implication ]
    disjunction := conjunction ( ('or' | '|') conjunction )*
    conjunction := unary ( ('and' | '&') unary )*
    unary    :=  ('not' | '!') unary
              |  ('exists' | 'forall') params '.' formula   -- maximal scope
              |  '(' formula ')'
              |  atom
    atom     :=  NAME '(' term (',' term)* ')'             -- relation atom
              |  term op term                               -- comparison
    op       :=  '<' | '<=' | '=' | '!=' | '>=' | '>'
    term     :=  sum of products of: NAME, NUMBER, STRING, '(' term ')'

Variables must be declared with their sort either in the query's parameter
list (free variables) or at their quantifier.  String literals are base-type
constants.  Example::

    q(s: base) := forall i: base, r: num, d: num, i2: base, p: num .
        (Products(i, s, r, d) and not Excluded(i, s) and Competition(i2, s, p))
            -> (r * d <= p and r >= 0 and d >= 0 and p >= 0)
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.logic.formulas import (
    BaseEquality,
    Comparison,
    ComparisonOperator,
    Exists,
    FONot,
    Forall,
    Formula,
    Query,
    RelationAtom,
    make_conjunction,
    make_disjunction,
)
from repro.logic.terms import (
    BaseConstant,
    NumericConstant,
    Sort,
    Term,
    TermOperation,
    TermOperator,
    Variable,
)


class FOParseError(ValueError):
    """Raised for malformed query text."""


_KEYWORDS = {"and", "or", "not", "exists", "forall", "base", "num"}

_TOKEN_PATTERN = re.compile(
    r"""
    (?P<space>\s+)
  | (?P<number>\d+(\.\d+)?([eE][+-]?\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<string>'(?:[^']|'')*')
  | (?P<symbol><=|>=|!=|:=|->|[()<>=.,:+\-*/!&|])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            raise FOParseError(f"unexpected character {text[position]!r} at {position}")
        position = match.end()
        if match.lastgroup == "space":
            continue
        kind = match.lastgroup or "symbol"
        value = match.group()
        if kind == "name" and value.lower() in _KEYWORDS:
            kind = "keyword"
            value = value.lower()
        tokens.append(_Token(kind=kind, text=value, position=match.start()))
    tokens.append(_Token(kind="end", text="", position=len(text)))
    return tokens


_COMPARISONS = {
    "<": ComparisonOperator.LT,
    "<=": ComparisonOperator.LE,
    "=": ComparisonOperator.EQ,
    "!=": ComparisonOperator.NE,
    ">=": ComparisonOperator.GE,
    ">": ComparisonOperator.GT,
}

_TERM_OPERATORS = {
    "+": TermOperator.ADD,
    "-": TermOperator.SUB,
    "*": TermOperator.MUL,
    "/": TermOperator.DIV,
}


class _Parser:
    def __init__(self, tokens: list[_Token]) -> None:
        self._tokens = tokens
        self._index = 0
        self._scopes: list[dict[str, Variable]] = [{}]

    # -- token plumbing ---------------------------------------------------------

    def _peek(self, offset: int = 0) -> _Token:
        return self._tokens[min(self._index + offset, len(self._tokens) - 1)]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        token = self._peek()
        if token.kind == kind and (text is None or token.text == text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self._accept(kind, text)
        if token is None:
            actual = self._peek()
            expectation = text if text is not None else kind
            raise FOParseError(
                f"expected {expectation!r} at position {actual.position}, "
                f"got {actual.text!r}")
        return token

    # -- scope handling ------------------------------------------------------------

    def _declare(self, name: str, sort: Sort) -> Variable:
        variable = Variable(name=name, variable_sort=sort)
        self._scopes[-1][name] = variable
        return variable

    def _lookup(self, name: str) -> Optional[Variable]:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    def _parse_params(self) -> list[Variable]:
        parameters: list[Variable] = []
        if self._peek().kind != "name":
            return parameters
        while True:
            name = self._expect("name").text
            self._expect("symbol", ":")
            sort_token = self._expect("keyword")
            if sort_token.text not in ("base", "num"):
                raise FOParseError(
                    f"expected a sort ('base' or 'num') at position {sort_token.position}")
            sort = Sort.BASE if sort_token.text == "base" else Sort.NUM
            parameters.append(self._declare(name, sort))
            if not self._accept("symbol", ","):
                return parameters

    # -- query ------------------------------------------------------------------

    def parse_query(self) -> Query:
        name = "q"
        head: tuple[Variable, ...] = ()
        # Named form: NAME ( params ) := formula
        if (self._peek().kind == "name" and self._peek(1).text == "("
                and self._looks_like_header()):
            name = self._advance().text
            self._expect("symbol", "(")
            head = tuple(self._parse_params())
            self._expect("symbol", ")")
            self._expect("symbol", ":=")
        body = self.parse_formula()
        self._expect("end")
        return Query(head=head, body=body, name=name)

    def _looks_like_header(self) -> bool:
        """Disambiguate ``q(x: base) := ...`` from a relation atom ``R(x, y)``."""
        depth = 0
        offset = 1
        while True:
            token = self._peek(offset)
            if token.kind == "end":
                return False
            if token.text == "(":
                depth += 1
            elif token.text == ")":
                depth -= 1
                if depth == 0:
                    return self._peek(offset + 1).text == ":="
            offset += 1

    # -- formulae ----------------------------------------------------------------

    def parse_formula(self) -> Formula:
        return self._parse_implication()

    def _parse_implication(self) -> Formula:
        left = self._parse_disjunction()
        if self._accept("symbol", "->"):
            right = self._parse_implication()
            return make_disjunction([FONot(left), right])
        return left

    def _parse_disjunction(self) -> Formula:
        parts = [self._parse_conjunction()]
        while self._accept("keyword", "or") or self._accept("symbol", "|"):
            parts.append(self._parse_conjunction())
        return make_disjunction(parts)

    def _parse_conjunction(self) -> Formula:
        parts = [self._parse_unary()]
        while self._accept("keyword", "and") or self._accept("symbol", "&"):
            parts.append(self._parse_unary())
        return make_conjunction(parts)

    def _parse_unary(self) -> Formula:
        if self._accept("keyword", "not") or self._accept("symbol", "!"):
            return FONot(self._parse_unary())
        quantifier = None
        if self._accept("keyword", "exists"):
            quantifier = Exists
        elif self._accept("keyword", "forall"):
            quantifier = Forall
        if quantifier is not None:
            self._scopes.append({})
            variables = self._parse_params()
            if not variables:
                raise FOParseError(
                    f"quantifier without variables at position {self._peek().position}")
            self._expect("symbol", ".")
            # Quantifiers scope as far to the right as possible, as in the
            # paper's notation (parenthesise the body to limit the scope).
            body = self.parse_formula()
            self._scopes.pop()
            for variable in reversed(variables):
                body = quantifier(variable=variable, body=body)
            return body
        if self._peek().text == "(" and not self._is_term_start():
            self._expect("symbol", "(")
            inner = self.parse_formula()
            self._expect("symbol", ")")
            return inner
        return self._parse_atom()

    def _is_term_start(self) -> bool:
        """Whether an opening parenthesis starts a term (e.g. ``(x + y) < z``).

        Scan to the matching close parenthesis: if the next token after it is
        an arithmetic or comparison operator, the parenthesis belongs to a
        term rather than to a parenthesised formula.
        """
        depth = 0
        offset = 0
        while True:
            token = self._peek(offset)
            if token.kind == "end":
                return False
            if token.text == "(":
                depth += 1
            elif token.text == ")":
                depth -= 1
                if depth == 0:
                    following = self._peek(offset + 1).text
                    return following in _COMPARISONS or following in _TERM_OPERATORS
            offset += 1

    def _parse_atom(self) -> Formula:
        token = self._peek()
        if token.kind == "name" and self._peek(1).text == "(" and self._lookup(token.text) is None:
            relation = self._advance().text
            self._expect("symbol", "(")
            arguments = [self._parse_term()]
            while self._accept("symbol", ","):
                arguments.append(self._parse_term())
            self._expect("symbol", ")")
            return RelationAtom(relation=relation, terms=tuple(arguments))
        left = self._parse_term()
        operator_token = self._peek()
        operator = _COMPARISONS.get(operator_token.text)
        if operator is None:
            raise FOParseError(
                f"expected a comparison operator at position {operator_token.position}, "
                f"got {operator_token.text!r}")
        self._advance()
        right = self._parse_term()
        if left.sort is Sort.BASE or right.sort is Sort.BASE:
            if left.sort is not right.sort:
                raise FOParseError(
                    f"cannot compare base and numerical terms near position "
                    f"{operator_token.position}")
            if operator is ComparisonOperator.EQ:
                return BaseEquality(left, right)
            if operator is ComparisonOperator.NE:
                return FONot(BaseEquality(left, right))
            raise FOParseError(
                f"order comparison on base-typed terms near position "
                f"{operator_token.position}")
        return Comparison(left, operator, right)

    # -- terms --------------------------------------------------------------------

    def _parse_term(self) -> Term:
        term = self._parse_product()
        while True:
            if self._accept("symbol", "+"):
                term = TermOperation(TermOperator.ADD, term, self._parse_product())
            elif self._accept("symbol", "-"):
                term = TermOperation(TermOperator.SUB, term, self._parse_product())
            else:
                return term

    def _parse_product(self) -> Term:
        term = self._parse_factor()
        while True:
            if self._accept("symbol", "*"):
                term = TermOperation(TermOperator.MUL, term, self._parse_factor())
            elif self._accept("symbol", "/"):
                term = TermOperation(TermOperator.DIV, term, self._parse_factor())
            else:
                return term

    def _parse_factor(self) -> Term:
        token = self._peek()
        if self._accept("symbol", "("):
            inner = self._parse_term()
            self._expect("symbol", ")")
            return inner
        if self._accept("symbol", "-"):
            return TermOperation(TermOperator.SUB, NumericConstant(0.0), self._parse_factor())
        if token.kind == "number":
            self._advance()
            return NumericConstant(float(token.text))
        if token.kind == "string":
            self._advance()
            return BaseConstant(token.text[1:-1].replace("''", "'"))
        if token.kind == "name":
            self._advance()
            variable = self._lookup(token.text)
            if variable is None:
                raise FOParseError(
                    f"undeclared variable {token.text!r} at position {token.position}; "
                    "declare it in the query head or at a quantifier")
            return variable
        raise FOParseError(f"unexpected token {token.text!r} at position {token.position}")


def parse_query(text: str) -> Query:
    """Parse a query (named or Boolean) from text."""
    return _Parser(_tokenize(text)).parse_query()


def parse_formula(text: str, variables: dict[str, Sort] | None = None) -> Formula:
    """Parse a bare formula; ``variables`` declares its free variables' sorts."""
    parser = _Parser(_tokenize(text))
    for name, sort in (variables or {}).items():
        parser._declare(name, sort)
    formula = parser.parse_formula()
    parser._expect("end")
    return formula
