"""Evaluation of FO(+, ·, <) queries over complete databases.

Quantifiers follow the active-domain semantics of Section 3: a base-type
quantifier ranges over ``C_base(D)`` and a numerical one over ``C_num(D)``.
The evaluator is deliberately straightforward (nested loops over the active
domains); it is used as the ground truth the measure is defined against --
``v(a) ∈ q(v(D))`` for sampled valuations ``v`` -- and for the examples and
tests, not as the production query path (that is :mod:`repro.engine`).

Base nulls may be present: under the naive-evaluation view they behave as
fresh constants, which is exactly how the 0/1 law of [Libkin, PODS'18]
evaluates them.  Numerical nulls are rejected because arithmetic on an
unknown real is undefined; apply a valuation first.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from repro.logic.formulas import (
    BaseEquality,
    Comparison,
    ComparisonOperator,
    Exists,
    FOAnd,
    FONot,
    FOOr,
    Forall,
    Formula,
    Query,
    RelationAtom,
)
from repro.logic.terms import (
    BaseConstant,
    NumericConstant,
    Sort,
    Term,
    TermOperation,
    TermOperator,
    Variable,
)
from repro.relational.database import Database
from repro.relational.values import Value, is_num_null, is_numeric_constant

#: Tolerance used when comparing evaluated numerical terms for equality.
NUMERIC_EPS = 1e-9


class EvaluationError(ValueError):
    """Raised when a query cannot be evaluated (e.g. numerical nulls present)."""


def _evaluate_term(term: Term, environment: Mapping[Variable, Value]) -> Value:
    if isinstance(term, Variable):
        if term not in environment:
            raise EvaluationError(f"unbound variable {term!r}")
        return environment[term]
    if isinstance(term, NumericConstant):
        return term.value
    if isinstance(term, BaseConstant):
        return term.value
    if isinstance(term, TermOperation):
        left = float(_evaluate_term(term.left, environment))
        right = float(_evaluate_term(term.right, environment))
        if term.operator is TermOperator.ADD:
            return left + right
        if term.operator is TermOperator.SUB:
            return left - right
        if term.operator is TermOperator.MUL:
            return left * right
        if right == 0.0:
            raise ZeroDivisionError("division by zero while evaluating a term")
        return left / right
    raise EvaluationError(f"unknown term node: {type(term).__name__}")


def _values_match(stored: Value, computed: Value) -> bool:
    if is_numeric_constant(stored) and is_numeric_constant(computed):
        return abs(float(stored) - float(computed)) <= NUMERIC_EPS
    return stored == computed


def _compare(left: float, op: ComparisonOperator, right: float) -> bool:
    if op is ComparisonOperator.LT:
        return left < right - NUMERIC_EPS
    if op is ComparisonOperator.LE:
        return left <= right + NUMERIC_EPS
    if op is ComparisonOperator.EQ:
        return abs(left - right) <= NUMERIC_EPS
    if op is ComparisonOperator.NE:
        return abs(left - right) > NUMERIC_EPS
    if op is ComparisonOperator.GE:
        return left >= right - NUMERIC_EPS
    return left > right + NUMERIC_EPS


class _Evaluator:
    """Evaluates formulae over one complete database."""

    def __init__(self, database: Database) -> None:
        if database.num_nulls():
            raise EvaluationError(
                "cannot evaluate a query over a database with numerical nulls; "
                "apply a valuation first")
        self._database = database
        base_domain = set(database.base_constants()) | set(database.base_nulls())
        self._base_domain = tuple(sorted(base_domain, key=repr))
        self._num_domain = tuple(sorted(database.num_constants()))

    def domain(self, sort: Sort) -> tuple[Value, ...]:
        return self._num_domain if sort is Sort.NUM else self._base_domain

    def holds(self, formula: Formula, environment: Mapping[Variable, Value]) -> bool:
        if isinstance(formula, RelationAtom):
            return self._relation_atom_holds(formula, environment)
        if isinstance(formula, BaseEquality):
            return (_evaluate_term(formula.left, environment)
                    == _evaluate_term(formula.right, environment))
        if isinstance(formula, Comparison):
            try:
                left = float(_evaluate_term(formula.left, environment))
                right = float(_evaluate_term(formula.right, environment))
            except ZeroDivisionError:
                return False
            return _compare(left, formula.op, right)
        if isinstance(formula, FONot):
            return not self.holds(formula.body, environment)
        if isinstance(formula, FOAnd):
            return all(self.holds(child, environment) for child in formula.conjuncts)
        if isinstance(formula, FOOr):
            return any(self.holds(child, environment) for child in formula.disjuncts)
        if isinstance(formula, Exists):
            return any(self.holds(formula.body, {**environment, formula.variable: value})
                       for value in self.domain(formula.variable.sort))
        if isinstance(formula, Forall):
            return all(self.holds(formula.body, {**environment, formula.variable: value})
                       for value in self.domain(formula.variable.sort))
        raise EvaluationError(f"unknown formula node: {type(formula).__name__}")

    def _relation_atom_holds(self, atom: RelationAtom,
                             environment: Mapping[Variable, Value]) -> bool:
        relation = self._database.relation(atom.relation)
        try:
            computed = [_evaluate_term(term, environment) for term in atom.terms]
        except ZeroDivisionError:
            return False
        for row in relation:
            if all(_values_match(stored, value) for stored, value in zip(row, computed)):
                return True
        return False


def _head_assignments(evaluator: _Evaluator,
                      head: Sequence[Variable]) -> Iterator[dict[Variable, Value]]:
    if not head:
        yield {}
        return
    first, rest = head[0], head[1:]
    for value in evaluator.domain(first.sort):
        for assignment in _head_assignments(evaluator, rest):
            assignment = dict(assignment)
            assignment[first] = value
            yield assignment


def evaluate_query(query: Query, database: Database) -> set[tuple[Value, ...]]:
    """The answer set ``q(D)`` of a query over a complete database."""
    evaluator = _Evaluator(database)
    answers: set[tuple[Value, ...]] = set()
    for assignment in _head_assignments(evaluator, query.head):
        if evaluator.holds(query.body, assignment):
            answers.add(tuple(assignment[variable] for variable in query.head))
    return answers


def evaluate_boolean(query: Query, database: Database) -> bool:
    """Truth value of a Boolean query over a complete database."""
    if not query.is_boolean:
        raise EvaluationError("evaluate_boolean expects a Boolean (0-ary) query")
    evaluator = _Evaluator(database)
    return evaluator.holds(query.body, {})


def query_holds_for(query: Query, database: Database,
                    candidate: Sequence[Value]) -> bool:
    """Whether ``candidate ∈ q(D)`` for a complete database ``D``.

    This is the predicate the measure of certainty is built from: given a
    valuation ``v``, the support set contains ``v`` exactly when
    ``query_holds_for(q, v(D), v(candidate))`` is true.
    """
    if len(candidate) != query.arity:
        raise EvaluationError(
            f"candidate has {len(candidate)} components for a query of arity {query.arity}")
    evaluator = _Evaluator(database)
    environment = {variable: value for variable, value in zip(query.head, candidate)}
    return evaluator.holds(query.body, environment)
