"""Typed variables and arithmetic terms of FO(+, ·, <).

Terms follow the grammar of Section 3: a base-type variable is a base term;
a numerical variable or numerical constant is a numerical term; and ``t + t'``
and ``t · t'`` are numerical terms when ``t`` and ``t'`` are.  Subtraction and
division are also allowed as term constructors (the paper notes they are
definable); division is eliminated when atomic formulae are normalised into
polynomial constraints (see :mod:`repro.constraints.translate`).

Terms support Python operator overloading so that queries can be written
naturally::

    price, discount = num_var("p"), num_var("d")
    condition = (price * discount <= num(8.0))
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from numbers import Real
from typing import Union


class Sort(enum.Enum):
    """The two sorts of the logic: base and numerical."""

    BASE = "base"
    NUM = "num"


class Term:
    """Base class of all terms.  Numerical terms support arithmetic operators."""

    @property
    def sort(self) -> Sort:
        raise NotImplementedError

    # -- arithmetic (numerical terms only; checked in TermOperation) --------

    def __add__(self, other: "TermLike") -> "Term":
        return TermOperation(TermOperator.ADD, self, _coerce(other))

    def __radd__(self, other: "TermLike") -> "Term":
        return TermOperation(TermOperator.ADD, _coerce(other), self)

    def __sub__(self, other: "TermLike") -> "Term":
        return TermOperation(TermOperator.SUB, self, _coerce(other))

    def __rsub__(self, other: "TermLike") -> "Term":
        return TermOperation(TermOperator.SUB, _coerce(other), self)

    def __mul__(self, other: "TermLike") -> "Term":
        return TermOperation(TermOperator.MUL, self, _coerce(other))

    def __rmul__(self, other: "TermLike") -> "Term":
        return TermOperation(TermOperator.MUL, _coerce(other), self)

    def __truediv__(self, other: "TermLike") -> "Term":
        return TermOperation(TermOperator.DIV, self, _coerce(other))

    def __rtruediv__(self, other: "TermLike") -> "Term":
        return TermOperation(TermOperator.DIV, _coerce(other), self)

    # -- comparisons build formulae; implemented in repro.logic.formulas ----

    def __lt__(self, other: "TermLike"):
        from repro.logic.formulas import Comparison, ComparisonOperator

        return Comparison(self, ComparisonOperator.LT, _coerce(other))

    def __le__(self, other: "TermLike"):
        from repro.logic.formulas import Comparison, ComparisonOperator

        return Comparison(self, ComparisonOperator.LE, _coerce(other))

    def __gt__(self, other: "TermLike"):
        from repro.logic.formulas import Comparison, ComparisonOperator

        return Comparison(self, ComparisonOperator.GT, _coerce(other))

    def __ge__(self, other: "TermLike"):
        from repro.logic.formulas import Comparison, ComparisonOperator

        return Comparison(self, ComparisonOperator.GE, _coerce(other))

    def equals(self, other: "TermLike"):
        """Equality atom (``==`` is kept for Python object identity semantics)."""
        from repro.logic.formulas import BaseEquality, Comparison, ComparisonOperator

        other = _coerce(other)
        if self.sort is Sort.BASE or other.sort is Sort.BASE:
            return BaseEquality(self, other)
        return Comparison(self, ComparisonOperator.EQ, other)

    def not_equals(self, other: "TermLike"):
        """Inequality atom of the appropriate sort."""
        from repro.logic.formulas import Comparison, ComparisonOperator, FONot

        other = _coerce(other)
        if self.sort is Sort.BASE or other.sort is Sort.BASE:
            return FONot(self.equals(other))
        return Comparison(self, ComparisonOperator.NE, other)


TermLike = Union[Term, int, float, str]


def _coerce(value: TermLike) -> Term:
    """Coerce Python numbers to numerical constants and strings to base constants."""
    if isinstance(value, Term):
        return value
    if isinstance(value, Real) and not isinstance(value, bool):
        return NumericConstant(float(value))
    if isinstance(value, str):
        return BaseConstant(value)
    raise TypeError(f"cannot use {value!r} as a term")


@dataclass(frozen=True, eq=True)
class Variable(Term):
    """A typed variable."""

    name: str
    variable_sort: Sort

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")

    @property
    def sort(self) -> Sort:
        return self.variable_sort

    def __repr__(self) -> str:
        return f"{self.name}:{self.variable_sort.value}"


@dataclass(frozen=True, eq=True)
class NumericConstant(Term):
    """A numerical constant (an element of ``C_num``)."""

    value: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", float(self.value))

    @property
    def sort(self) -> Sort:
        return Sort.NUM

    def __repr__(self) -> str:
        return f"{self.value:g}"


@dataclass(frozen=True, eq=True)
class BaseConstant(Term):
    """A base-type constant used directly inside a query."""

    value: object

    @property
    def sort(self) -> Sort:
        return Sort.BASE

    def __repr__(self) -> str:
        return f"{self.value!r}"


class TermOperator(enum.Enum):
    """Arithmetic operations on numerical terms."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"


@dataclass(frozen=True, eq=True)
class TermOperation(Term):
    """An arithmetic combination of two numerical terms."""

    operator: TermOperator
    left: Term
    right: Term

    def __post_init__(self) -> None:
        for side, term in (("left", self.left), ("right", self.right)):
            if term.sort is not Sort.NUM:
                raise TypeError(
                    f"arithmetic requires numerical terms; {side} operand "
                    f"{term!r} has sort {term.sort.value}")

    @property
    def sort(self) -> Sort:
        return Sort.NUM

    def __repr__(self) -> str:
        return f"({self.left!r} {self.operator.value} {self.right!r})"


def term_variables(term: Term) -> frozenset[Variable]:
    """All variables occurring in a term."""
    if isinstance(term, Variable):
        return frozenset({term})
    if isinstance(term, TermOperation):
        return term_variables(term.left) | term_variables(term.right)
    return frozenset()


def uses_multiplication(term: Term) -> bool:
    """Whether a term uses ``·`` (or ``/``) between non-constant operands.

    Multiplication by a constant keeps a term linear, so fragment
    classification (is the query in CQ(+,<)?) must distinguish genuine
    products of variables from scalar multiples.
    """
    if not isinstance(term, TermOperation):
        return False
    if term.operator in (TermOperator.MUL, TermOperator.DIV):
        left_has_vars = bool(term_variables(term.left))
        right_has_vars = bool(term_variables(term.right))
        if term.operator is TermOperator.DIV and right_has_vars:
            return True
        if left_has_vars and right_has_vars:
            return True
    return uses_multiplication(term.left) or uses_multiplication(term.right)


def uses_addition(term: Term) -> bool:
    """Whether a term uses ``+`` or ``-`` (i.e. is not a single scaled variable)."""
    if not isinstance(term, TermOperation):
        return False
    if term.operator in (TermOperator.ADD, TermOperator.SUB):
        return True
    return uses_addition(term.left) or uses_addition(term.right)
