"""Syntactic fragment classification of FO(+, ·, <) queries.

The choice of algorithm in :mod:`repro.certainty` depends on the fragment a
query falls in (Sections 6--8 of the paper):

* CQ(<) and CQ(+,<) admit the multiplicative FPRAS of Theorem 7.1;
* FO(<) has no FPRAS unless NP ⊆ BPP (Theorem 6.3) but μ is always rational;
* every FO(+,·,<) query admits the additive AFPRAS of Theorem 8.1.

A query is *conjunctive* when its body uses only relation atoms, positive
numerical/base atoms, conjunction and existential quantification.  Arithmetic
is classified as: none (order comparisons only), linear (``+``, ``-`` and
multiplication by constants), or polynomial (products of terms containing
variables, or division by such terms).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.logic.formulas import (
    BaseEquality,
    Comparison,
    Exists,
    FOAnd,
    FONot,
    FOOr,
    Forall,
    Formula,
    Query,
    RelationAtom,
)
from repro.logic.terms import Term, TermOperation, uses_multiplication


class ArithmeticLevel(enum.Enum):
    """How much arithmetic a query uses."""

    ORDER_ONLY = "<"
    LINEAR = "+,<"
    POLYNOMIAL = "+,·,<"


@dataclass(frozen=True)
class QueryFragment:
    """The syntactic fragment of a query."""

    conjunctive: bool
    arithmetic: ArithmeticLevel

    @property
    def name(self) -> str:
        prefix = "CQ" if self.conjunctive else "FO"
        return f"{prefix}({self.arithmetic.value})"

    @property
    def has_fpras(self) -> bool:
        """Whether Theorem 7.1's multiplicative FPRAS applies."""
        return self.conjunctive and self.arithmetic is not ArithmeticLevel.POLYNOMIAL

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.name


def _term_arithmetic(term: Term) -> ArithmeticLevel:
    if not isinstance(term, TermOperation):
        return ArithmeticLevel.ORDER_ONLY
    if uses_multiplication(term):
        return ArithmeticLevel.POLYNOMIAL
    return ArithmeticLevel.LINEAR


def _max_level(first: ArithmeticLevel, second: ArithmeticLevel) -> ArithmeticLevel:
    order = [ArithmeticLevel.ORDER_ONLY, ArithmeticLevel.LINEAR, ArithmeticLevel.POLYNOMIAL]
    return max(first, second, key=order.index)


def formula_arithmetic(formula: Formula) -> ArithmeticLevel:
    """Highest arithmetic level used by any term of the formula."""
    level = ArithmeticLevel.ORDER_ONLY
    for atom in formula.atoms():
        terms: tuple[Term, ...]
        if isinstance(atom, RelationAtom):
            terms = atom.terms
        elif isinstance(atom, (Comparison, BaseEquality)):
            terms = (atom.left, atom.right)
        else:
            terms = ()
        for term in terms:
            level = _max_level(level, _term_arithmetic(term))
    return level


def is_conjunctive(formula: Formula) -> bool:
    """Whether a formula is in the ∃,∧ fragment (no ¬, ∨, ∀)."""
    if isinstance(formula, (RelationAtom, BaseEquality, Comparison)):
        return True
    if isinstance(formula, FOAnd):
        return all(is_conjunctive(child) for child in formula.conjuncts)
    if isinstance(formula, Exists):
        return is_conjunctive(formula.body)
    if isinstance(formula, (FOOr, FONot, Forall)):
        return False
    raise TypeError(f"unknown formula node: {type(formula).__name__}")


def classify_query(query: Query) -> QueryFragment:
    """Classify a query into its fragment (e.g. ``CQ(+,<)`` or ``FO(+,·,<)``)."""
    return QueryFragment(
        conjunctive=is_conjunctive(query.body),
        arithmetic=formula_arithmetic(query.body),
    )
