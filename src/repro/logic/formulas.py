"""Formulae and queries of FO(+, ·, <).

Atomic formulae are relation atoms ``R(t_1, ..., t_n)``, equalities between
base terms, and comparisons ``t < t'`` / ``t = t'`` between numerical terms.
Formulae are closed under the Boolean connectives and typed quantifiers, as
in Section 3 of the paper.  A :class:`Query` packages a formula with an
ordered tuple of free variables (its head).

Formulae support ``&``, ``|`` and ``~`` so they compose naturally with the
builder DSL of :mod:`repro.logic.builder`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.logic.terms import Sort, Term, Variable


class ComparisonOperator(enum.Enum):
    """Comparison operators between numerical terms."""

    LT = "<"
    LE = "<="
    EQ = "="
    NE = "!="
    GE = ">="
    GT = ">"


class Formula:
    """Base class of FO(+,·,<) formulae."""

    def __and__(self, other: "Formula") -> "Formula":
        return FOAnd((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return FOOr((self, other))

    def __invert__(self) -> "Formula":
        return FONot(self)

    def children(self) -> tuple["Formula", ...]:
        """Immediate sub-formulae (empty for atoms)."""
        return ()

    def atoms(self) -> Iterator["Formula"]:
        """Iterate over the atomic sub-formulae."""
        stack: list[Formula] = [self]
        while stack:
            node = stack.pop()
            subformulae = node.children()
            if subformulae:
                stack.extend(subformulae)
            else:
                yield node


@dataclass(frozen=True)
class RelationAtom(Formula):
    """The atom ``R(t_1, ..., t_n)``."""

    relation: str
    terms: tuple[Term, ...]

    def __post_init__(self) -> None:
        if not self.relation:
            raise ValueError("relation name must be non-empty")
        object.__setattr__(self, "terms", tuple(self.terms))

    def __repr__(self) -> str:
        arguments = ", ".join(repr(term) for term in self.terms)
        return f"{self.relation}({arguments})"


@dataclass(frozen=True)
class BaseEquality(Formula):
    """Equality between two base-type terms (variables or constants)."""

    left: Term
    right: Term

    def __post_init__(self) -> None:
        for side, term in (("left", self.left), ("right", self.right)):
            if term.sort is not Sort.BASE:
                raise TypeError(
                    f"base equality requires base terms; {side} operand "
                    f"{term!r} has sort {term.sort.value}")

    def __repr__(self) -> str:
        return f"({self.left!r} = {self.right!r})"


@dataclass(frozen=True)
class Comparison(Formula):
    """Comparison ``left op right`` between numerical terms."""

    left: Term
    op: ComparisonOperator
    right: Term

    def __post_init__(self) -> None:
        for side, term in (("left", self.left), ("right", self.right)):
            if term.sort is not Sort.NUM:
                raise TypeError(
                    f"numerical comparison requires numerical terms; {side} "
                    f"operand {term!r} has sort {term.sort.value}")

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op.value} {self.right!r})"


@dataclass(frozen=True)
class FOAnd(Formula):
    """Conjunction."""

    conjuncts: tuple[Formula, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "conjuncts", tuple(self.conjuncts))

    def children(self) -> tuple[Formula, ...]:
        return self.conjuncts

    def __repr__(self) -> str:
        return "(" + " ∧ ".join(repr(child) for child in self.conjuncts) + ")"


@dataclass(frozen=True)
class FOOr(Formula):
    """Disjunction."""

    disjuncts: tuple[Formula, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "disjuncts", tuple(self.disjuncts))

    def children(self) -> tuple[Formula, ...]:
        return self.disjuncts

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(repr(child) for child in self.disjuncts) + ")"


@dataclass(frozen=True)
class FONot(Formula):
    """Negation."""

    body: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.body,)

    def __repr__(self) -> str:
        return f"¬{self.body!r}"


@dataclass(frozen=True)
class Exists(Formula):
    """Existential quantification over a typed variable."""

    variable: Variable
    body: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.body,)

    def __repr__(self) -> str:
        return f"∃{self.variable!r} {self.body!r}"


@dataclass(frozen=True)
class Forall(Formula):
    """Universal quantification over a typed variable."""

    variable: Variable
    body: Formula

    def children(self) -> tuple[Formula, ...]:
        return (self.body,)

    def __repr__(self) -> str:
        return f"∀{self.variable!r} {self.body!r}"


@dataclass(frozen=True)
class Query:
    """A query ``q(head) = body`` with an ordered tuple of head variables.

    A Boolean query has an empty head.  The head may mix base and numerical
    variables; the measure of certainty is asked about candidate tuples of
    matching sorts.
    """

    head: tuple[Variable, ...]
    body: Formula
    name: str = "q"

    def __post_init__(self) -> None:
        head = tuple(self.head)
        if len({variable.name for variable in head}) != len(head):
            raise ValueError("query head contains duplicate variables")
        object.__setattr__(self, "head", head)

    @property
    def arity(self) -> int:
        return len(self.head)

    @property
    def is_boolean(self) -> bool:
        return not self.head

    def head_sorts(self) -> tuple[Sort, ...]:
        return tuple(variable.sort for variable in self.head)

    def __repr__(self) -> str:
        arguments = ", ".join(repr(variable) for variable in self.head)
        return f"{self.name}({arguments}) = {self.body!r}"


def make_conjunction(parts: Sequence[Formula]) -> Formula:
    """Conjunction of formulae with flattening and the obvious simplifications."""
    flattened: list[Formula] = []
    for part in parts:
        if isinstance(part, FOAnd):
            flattened.extend(part.conjuncts)
        else:
            flattened.append(part)
    if not flattened:
        raise ValueError("conjunction of zero formulae is not representable")
    if len(flattened) == 1:
        return flattened[0]
    return FOAnd(tuple(flattened))


def make_disjunction(parts: Sequence[Formula]) -> Formula:
    """Disjunction of formulae with flattening and the obvious simplifications."""
    flattened: list[Formula] = []
    for part in parts:
        if isinstance(part, FOOr):
            flattened.extend(part.disjuncts)
        else:
            flattened.append(part)
    if not flattened:
        raise ValueError("disjunction of zero formulae is not representable")
    if len(flattened) == 1:
        return flattened[0]
    return FOOr(tuple(flattened))
