"""A small DSL for building FO(+, ·, <) queries in Python.

The examples and tests build queries like the paper writes them::

    s = base_var("s")
    i, ip = base_var("i"), base_var("i2")
    r, d, p = num_var("r"), num_var("d"), num_var("p")
    body = forall([i, r, d, ip, p],
                  implies(rel("Products", i, s, r, d)
                          & neg(rel("Excluded", i, s))
                          & rel("Competition", ip, s, p),
                          (r * d <= p) & (r >= 0) & (d >= 0) & (p >= 0)))
    query = Query(head=(s,), body=body, name="competitive_segments")
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from repro.logic.formulas import (
    Exists,
    FOAnd,
    FONot,
    FOOr,
    Forall,
    Formula,
    RelationAtom,
    make_conjunction,
    make_disjunction,
)
from repro.logic.terms import (
    BaseConstant,
    NumericConstant,
    Sort,
    Term,
    Variable,
)


def base_var(name: str) -> Variable:
    """A base-type variable."""
    return Variable(name=name, variable_sort=Sort.BASE)


def num_var(name: str) -> Variable:
    """A numerical-type variable."""
    return Variable(name=name, variable_sort=Sort.NUM)


def num(value: float) -> NumericConstant:
    """A numerical constant term."""
    return NumericConstant(float(value))


def const(value: object) -> BaseConstant:
    """A base-type constant term (e.g. a specific market segment)."""
    return BaseConstant(value)


def _coerce_term(value: Union[Term, int, float, str]) -> Term:
    if isinstance(value, Term):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not database values")
    if isinstance(value, (int, float)):
        return NumericConstant(float(value))
    return BaseConstant(value)


def rel(relation: str, *arguments: Union[Term, int, float, str]) -> RelationAtom:
    """The relation atom ``relation(arguments...)``.

    Plain Python numbers become numerical constants and strings become base
    constants, so ``rel("Products", item, "electronics", 10, d)`` works
    directly.
    """
    return RelationAtom(relation=relation, terms=tuple(_coerce_term(argument)
                                                       for argument in arguments))


def conj(*parts: Formula) -> Formula:
    """Conjunction of one or more formulae."""
    return make_conjunction(list(parts))


def disj(*parts: Formula) -> Formula:
    """Disjunction of one or more formulae."""
    return make_disjunction(list(parts))


def neg(formula: Formula) -> Formula:
    """Negation."""
    return FONot(formula)


def implies(antecedent: Formula, consequent: Formula) -> Formula:
    """Material implication ``antecedent -> consequent``."""
    return FOOr((FONot(antecedent), consequent))


def _quantify(kind, variables: Union[Variable, Sequence[Variable]],
              body: Formula) -> Formula:
    if isinstance(variables, Variable):
        variables = [variables]
    variables = list(variables)
    if not variables:
        return body
    result = body
    for variable in reversed(variables):
        result = kind(variable=variable, body=result)
    return result


def exists(variables: Union[Variable, Sequence[Variable]], body: Formula) -> Formula:
    """Existential quantification over one or several variables."""
    return _quantify(Exists, variables, body)


def forall(variables: Union[Variable, Sequence[Variable]], body: Formula) -> Formula:
    """Universal quantification over one or several variables."""
    return _quantify(Forall, variables, body)


def conjunction_of(parts: Iterable[Formula]) -> Formula:
    """Conjunction of an iterable of formulae (must be non-empty)."""
    return make_conjunction(list(parts))
