"""Free-variable computation and static checking of queries against schemas.

The translation of Proposition 5.3 and the evaluators assume well-formed
queries: every relation atom matches its schema (arity and per-position
sorts), every variable is used consistently with one sort, and the head of a
query consists of free variables of its body.  This module performs those
checks and reports precise errors, so that malformed queries are rejected at
construction time rather than producing silently wrong measures.
"""

from __future__ import annotations

from typing import Optional

from repro.logic.formulas import (
    BaseEquality,
    Comparison,
    Exists,
    FOAnd,
    FONot,
    FOOr,
    Forall,
    Formula,
    Query,
    RelationAtom,
)
from repro.logic.terms import (
    BaseConstant,
    NumericConstant,
    Sort,
    Term,
    TermOperation,
    Variable,
    term_variables,
)
from repro.relational.schema import DatabaseSchema


class TypeCheckError(ValueError):
    """Raised when a query does not match its schema or is ill-sorted."""


def free_variables(formula: Formula) -> frozenset[Variable]:
    """Free variables of a formula (quantified variables are bound in their scope)."""
    if isinstance(formula, RelationAtom):
        names: frozenset[Variable] = frozenset()
        for term in formula.terms:
            names |= term_variables(term)
        return names
    if isinstance(formula, (BaseEquality,)):
        return term_variables(formula.left) | term_variables(formula.right)
    if isinstance(formula, Comparison):
        return term_variables(formula.left) | term_variables(formula.right)
    if isinstance(formula, FONot):
        return free_variables(formula.body)
    if isinstance(formula, FOAnd):
        result: frozenset[Variable] = frozenset()
        for child in formula.conjuncts:
            result |= free_variables(child)
        return result
    if isinstance(formula, FOOr):
        result = frozenset()
        for child in formula.disjuncts:
            result |= free_variables(child)
        return result
    if isinstance(formula, (Exists, Forall)):
        return free_variables(formula.body) - frozenset({formula.variable})
    raise TypeCheckError(f"unknown formula node: {type(formula).__name__}")


def _check_term(term: Term, expected: Optional[Sort] = None) -> None:
    if isinstance(term, (Variable, NumericConstant, BaseConstant)):
        actual = term.sort
    elif isinstance(term, TermOperation):
        _check_term(term.left, Sort.NUM)
        _check_term(term.right, Sort.NUM)
        actual = Sort.NUM
    else:
        raise TypeCheckError(f"unknown term node: {type(term).__name__}")
    if expected is not None and actual is not expected:
        raise TypeCheckError(
            f"term {term!r} has sort {actual.value}, expected {expected.value}")


def _check_variable_sorts(formula: Formula, seen: dict[str, Sort]) -> None:
    """Ensure every variable name is used with a single sort throughout."""
    for atom in formula.atoms():
        if isinstance(atom, RelationAtom):
            variables = frozenset().union(*(term_variables(term) for term in atom.terms)) \
                if atom.terms else frozenset()
        elif isinstance(atom, (BaseEquality, Comparison)):
            variables = term_variables(atom.left) | term_variables(atom.right)
        else:
            variables = frozenset()
        for variable in variables:
            previous = seen.get(variable.name)
            if previous is None:
                seen[variable.name] = variable.sort
            elif previous is not variable.sort:
                raise TypeCheckError(
                    f"variable {variable.name!r} is used with sorts "
                    f"{previous.value} and {variable.sort.value}")


def check_formula(formula: Formula, schema: DatabaseSchema) -> None:
    """Check a formula against a database schema."""
    if isinstance(formula, RelationAtom):
        relation_schema = schema.relation(formula.relation)
        if len(formula.terms) != relation_schema.arity:
            raise TypeCheckError(
                f"atom {formula!r} has {len(formula.terms)} arguments but relation "
                f"{formula.relation!r} has arity {relation_schema.arity}")
        for position, (term, attribute) in enumerate(zip(formula.terms,
                                                         relation_schema.attributes)):
            expected = Sort.NUM if attribute.is_numeric else Sort.BASE
            try:
                _check_term(term, expected)
            except TypeCheckError as error:
                raise TypeCheckError(
                    f"argument {position} of {formula!r}: {error}") from error
        return
    if isinstance(formula, BaseEquality):
        _check_term(formula.left, Sort.BASE)
        _check_term(formula.right, Sort.BASE)
        return
    if isinstance(formula, Comparison):
        _check_term(formula.left, Sort.NUM)
        _check_term(formula.right, Sort.NUM)
        return
    if isinstance(formula, FONot):
        check_formula(formula.body, schema)
        return
    if isinstance(formula, FOAnd):
        for child in formula.conjuncts:
            check_formula(child, schema)
        return
    if isinstance(formula, FOOr):
        for child in formula.disjuncts:
            check_formula(child, schema)
        return
    if isinstance(formula, (Exists, Forall)):
        check_formula(formula.body, schema)
        return
    raise TypeCheckError(f"unknown formula node: {type(formula).__name__}")


def check_query(query: Query, schema: DatabaseSchema) -> None:
    """Check a query: well-formed body, consistent sorts, head ⊆ free variables."""
    check_formula(query.body, schema)
    _check_variable_sorts(query.body, {})
    free = free_variables(query.body)
    free_names = {variable.name for variable in free}
    for variable in query.head:
        if variable.name not in free_names:
            raise TypeCheckError(
                f"head variable {variable.name!r} does not occur free in the body")
        matching = next(item for item in free if item.name == variable.name)
        if matching.sort is not variable.sort:
            raise TypeCheckError(
                f"head variable {variable.name!r} has sort {variable.sort.value} "
                f"but occurs in the body with sort {matching.sort.value}")
