"""A small thread-safe LRU cache with hit/miss/eviction counters.

Both the compiled-kernel memo (:mod:`repro.compile.kernels`) and the
annotation service (:mod:`repro.service`) need bounded caches whose
effectiveness can be reported: a long-lived serving process must not leak
memory through an unbounded memo, and the service's stats report wants hit
rates per cache.  This module provides the one implementation they share.
It deliberately lives below both packages so neither has to import the
other for a utility class.

:class:`SingleFlight` is the cache's concurrent companion: an LRU cache
deduplicates *sequential* repeats, while a single-flight registry
deduplicates *simultaneous* ones -- concurrent requests for the same key
join the computation already in flight instead of racing it, so a burst of
identical cold requests costs one computation and fills the cache once.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator, Optional

#: Returned by :meth:`LruCache.get` misses when no default is supplied; a
#: dedicated sentinel so ``None`` remains a storable value.
_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of one cache's counters."""

    name: str
    capacity: int
    size: int
    hits: int
    misses: int
    evictions: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never used)."""
        total = self.requests
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "capacity": self.capacity,
            "size": self.size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class LruCache:
    """Least-recently-used cache with a fixed capacity and usage counters.

    Lookups and insertions are O(1) (an :class:`~collections.OrderedDict`
    keeps recency order) and guarded by a lock so the service's parallel
    executor can share one instance across worker threads.
    """

    def __init__(self, capacity: int, name: str = "cache") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self._capacity = capacity
        self._name = name
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- core operations ---------------------------------------------------

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (marking it most recently used) or ``default``."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Read an entry without touching counters or recency order.

        For double-checks inside code paths that already counted their
        lookup -- e.g. the single-flight fill re-probing the cache after
        winning flight leadership -- so the hit/miss statistics keep
        meaning "distinct logical lookups".
        """
        with self._lock:
            value = self._entries.get(key, _MISSING)
            return default if value is _MISSING else value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh an entry, evicting the least recently used on overflow."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def get_or_compute(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return the cached value, computing and storing it on a miss.

        ``factory`` runs outside the lock, so two threads racing on the same
        key may both compute; the second insert wins harmlessly (values for
        one key are interchangeable by construction).
        """
        value = self.get(key, _MISSING)
        if value is _MISSING:
            value = factory()
            self.put(key, value)
        return value

    def pop(self, key: Hashable, default: Any = None) -> Any:
        """Remove and return an entry without touching the usage counters.

        Targeted invalidation (the service's delta-driven eviction after a
        database mutation) removes exactly the entries a mutation made
        stale; those removals are accounted by the caller's own counters,
        not as capacity evictions.
        """
        with self._lock:
            value = self._entries.pop(key, _MISSING)
            return default if value is _MISSING else value

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> Iterator[Hashable]:
        with self._lock:
            return iter(tuple(self._entries.keys()))

    # -- management --------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    def resize(self, capacity: int) -> None:
        """Change the capacity, evicting oldest entries if the cache shrank."""
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        with self._lock:
            self._capacity = capacity
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self, reset_counters: bool = False) -> None:
        with self._lock:
            self._entries.clear()
            if reset_counters:
                self._hits = self._misses = self._evictions = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                name=self._name,
                capacity=self._capacity,
                size=len(self._entries),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
            )


@dataclass(frozen=True)
class SingleFlightStats:
    """A point-in-time snapshot of one single-flight registry's counters."""

    name: str
    #: Computations actually launched (one per flight leader).
    launches: int
    #: Callers that joined an already in-flight computation instead of
    #: launching their own -- the work the registry saved.
    joins: int
    #: Leader computations that raised (followers re-raise the same error).
    failures: int
    #: Flights currently in progress.
    in_flight: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "launches": self.launches,
            "joins": self.joins,
            "failures": self.failures,
            "in_flight": self.in_flight,
        }


class _FlightSlot:
    """One in-flight computation: an event the followers wait on."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None


class SingleFlight:
    """Coalesce concurrent computations of the same key onto one leader.

    :meth:`run` returns ``(value, leader)``: the first caller for a key
    becomes the *leader* and executes the factory; callers arriving while
    the leader is still computing block until it finishes and receive the
    leader's value (or re-raise its exception) without computing anything.
    Once a flight lands, the key is forgotten -- persistent memoisation is
    the neighbouring :class:`LruCache`'s job, and the two compose: check
    the cache, and on a miss run the fill inside a flight.
    """

    def __init__(self, name: str = "flights") -> None:
        self._name = name
        self._slots: dict[Hashable, _FlightSlot] = {}
        self._lock = threading.Lock()
        self._launches = 0
        self._joins = 0
        self._failures = 0

    def run(self, key: Hashable, factory: Callable[[], Any]) -> tuple[Any, bool]:
        """Compute ``factory()`` for ``key``, or join the flight doing so."""
        with self._lock:
            slot = self._slots.get(key)
            if slot is None:
                slot = _FlightSlot()
                self._slots[key] = slot
                self._launches += 1
                leader = True
            else:
                self._joins += 1
                leader = False
        if leader:
            try:
                slot.value = factory()
            except BaseException as error:
                slot.error = error
                with self._lock:
                    self._failures += 1
                raise
            finally:
                # Remove before waking followers: a late arrival after the
                # flight lands must start (or cache-hit) afresh, never join
                # a finished slot.
                with self._lock:
                    del self._slots[key]
                slot.event.set()
            return slot.value, True
        slot.event.wait()
        if slot.error is not None:
            raise slot.error
        return slot.value, False

    def __len__(self) -> int:
        with self._lock:
            return len(self._slots)

    def stats(self) -> SingleFlightStats:
        with self._lock:
            return SingleFlightStats(
                name=self._name,
                launches=self._launches,
                joins=self._joins,
                failures=self._failures,
                in_flight=len(self._slots),
            )
