"""A small thread-safe LRU cache with hit/miss/eviction counters.

Both the compiled-kernel memo (:mod:`repro.compile.kernels`) and the
annotation service (:mod:`repro.service`) need bounded caches whose
effectiveness can be reported: a long-lived serving process must not leak
memory through an unbounded memo, and the service's stats report wants hit
rates per cache.  This module provides the one implementation they share.
It deliberately lives below both packages so neither has to import the
other for a utility class.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator, Optional

#: Returned by :meth:`LruCache.get` misses when no default is supplied; a
#: dedicated sentinel so ``None`` remains a storable value.
_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of one cache's counters."""

    name: str
    capacity: int
    size: int
    hits: int
    misses: int
    evictions: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never used)."""
        total = self.requests
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "capacity": self.capacity,
            "size": self.size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class LruCache:
    """Least-recently-used cache with a fixed capacity and usage counters.

    Lookups and insertions are O(1) (an :class:`~collections.OrderedDict`
    keeps recency order) and guarded by a lock so the service's parallel
    executor can share one instance across worker threads.
    """

    def __init__(self, capacity: int, name: str = "cache") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self._capacity = capacity
        self._name = name
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- core operations ---------------------------------------------------

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (marking it most recently used) or ``default``."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh an entry, evicting the least recently used on overflow."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def get_or_compute(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return the cached value, computing and storing it on a miss.

        ``factory`` runs outside the lock, so two threads racing on the same
        key may both compute; the second insert wins harmlessly (values for
        one key are interchangeable by construction).
        """
        value = self.get(key, _MISSING)
        if value is _MISSING:
            value = factory()
            self.put(key, value)
        return value

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> Iterator[Hashable]:
        with self._lock:
            return iter(tuple(self._entries.keys()))

    # -- management --------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    def resize(self, capacity: int) -> None:
        """Change the capacity, evicting oldest entries if the cache shrank."""
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        with self._lock:
            self._capacity = capacity
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self, reset_counters: bool = False) -> None:
        with self._lock:
            self._entries.clear()
            if reset_counters:
                self._hits = self._misses = self._evictions = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                name=self._name,
                capacity=self._capacity,
                size=len(self._entries),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
            )
