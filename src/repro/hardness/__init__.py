"""Executable versions of the paper's lower-bound reductions.

The negative results of Sections 4 and 6 are proved by reductions; this
subpackage implements those reductions as code so that they can be exercised
(on small instances) by the tests and benchmarks:

* :mod:`repro.hardness.booleans` -- tiny propositional-logic toolkit (CNF/DNF
  representations and brute-force model counting used as ground truth);
* :mod:`repro.hardness.counting` -- the Proposition 6.2 / Theorem 6.3 style
  reductions: from a propositional formula ψ over n variables, build an
  FO(<) query and a database D_ψ with ``mu(q, D_ψ) = #ψ / 2^n``;
* :mod:`repro.hardness.diophantine` -- the Proposition 4.1 gadget: from an
  integer polynomial, a CQ(+,·,<) query over a single-tuple database whose
  certain answer (over ℤ) holds iff the polynomial has no integer root.
"""

from repro.hardness.booleans import (
    Clause,
    Literal,
    PropositionalCNF,
    PropositionalDNF,
    count_satisfying_assignments,
)
from repro.hardness.counting import cnf_reduction, dnf_reduction
from repro.hardness.diophantine import diophantine_query, has_integer_root_within

__all__ = [
    "Clause",
    "Literal",
    "PropositionalCNF",
    "PropositionalDNF",
    "cnf_reduction",
    "count_satisfying_assignments",
    "diophantine_query",
    "dnf_reduction",
    "has_integer_root_within",
]
