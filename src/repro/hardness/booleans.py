"""A tiny propositional-logic toolkit for the hardness reductions.

The reductions of Proposition 6.2 and Theorem 6.3 start from propositional
formulae in DNF and CNF respectively.  This module provides the minimal
representations and a brute-force model counter used as the ground truth the
reductions are tested against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence, Union


@dataclass(frozen=True)
class Literal:
    """A propositional literal: a variable or its negation."""

    variable: str
    positive: bool = True

    def __post_init__(self) -> None:
        if not self.variable:
            raise ValueError("literal variable name must be non-empty")

    def negate(self) -> "Literal":
        return Literal(self.variable, not self.positive)

    def satisfied_by(self, assignment: Mapping[str, bool]) -> bool:
        value = assignment[self.variable]
        return value if self.positive else not value

    def __repr__(self) -> str:
        return self.variable if self.positive else f"¬{self.variable}"


#: A clause (for CNF) or a term (for DNF) is just a tuple of literals.
Clause = tuple[Literal, ...]


def _normalise_clauses(clauses: Iterable[Sequence[Literal]]) -> tuple[Clause, ...]:
    normalised = tuple(tuple(clause) for clause in clauses)
    for clause in normalised:
        if not clause:
            raise ValueError("empty clauses/terms are not allowed")
    return normalised


@dataclass(frozen=True)
class PropositionalCNF:
    """A conjunction of disjunctive clauses."""

    clauses: tuple[Clause, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "clauses", _normalise_clauses(self.clauses))

    def variables(self) -> tuple[str, ...]:
        names = sorted({literal.variable for clause in self.clauses for literal in clause})
        return tuple(names)

    def satisfied_by(self, assignment: Mapping[str, bool]) -> bool:
        return all(any(literal.satisfied_by(assignment) for literal in clause)
                   for clause in self.clauses)


@dataclass(frozen=True)
class PropositionalDNF:
    """A disjunction of conjunctive terms."""

    terms: tuple[Clause, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "terms", _normalise_clauses(self.terms))

    def variables(self) -> tuple[str, ...]:
        names = sorted({literal.variable for term in self.terms for literal in term})
        return tuple(names)

    def satisfied_by(self, assignment: Mapping[str, bool]) -> bool:
        return any(all(literal.satisfied_by(assignment) for literal in term)
                   for term in self.terms)


PropositionalFormula = Union[PropositionalCNF, PropositionalDNF]


def count_satisfying_assignments(formula: PropositionalFormula,
                                 variables: Sequence[str] | None = None) -> int:
    """Brute-force ``#formula`` over the given variables (default: its own)."""
    names = tuple(variables) if variables is not None else formula.variables()
    count = 0
    for values in itertools.product((False, True), repeat=len(names)):
        assignment = dict(zip(names, values))
        if formula.satisfied_by(assignment):
            count += 1
    return count
