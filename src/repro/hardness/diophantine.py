"""The Proposition 4.1 gadget: certain answers with arithmetic are undecidable.

Given an integer polynomial ``p(x_1, ..., x_k)``, the query

    q = ∃ x_1 ... x_k .  R(x_1, ..., x_k) ∧ p(x_1, ..., x_k)^2 > 0

over the database whose single relation ``R`` holds one all-null tuple
``(⊤_1, ..., ⊤_k)`` has ``q`` as a certain answer over ``C_num = ℤ`` exactly
when ``p`` has no integer root -- an undecidable property (Hilbert's tenth
problem, undecidable already for 13 variables).  The measure of certainty, by
contrast, is trivially 1 whenever ``p`` is not the zero polynomial (the zero
set of a non-zero polynomial has measure zero), which is precisely the
paper's motivation for moving from absolute certainty to a measure.

This module builds the gadget, provides a bounded brute-force root search to
exercise it on small instances, and exposes the measure-vs-certainty contrast
for the tests and examples.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.constraints.polynomials import Polynomial
from repro.logic.builder import exists, num, num_var, rel
from repro.logic.formulas import Query
from repro.logic.terms import Term
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import NumNull


def polynomial_to_term(polynomial: Polynomial, variables: dict[str, Term]) -> Term:
    """Render a :class:`Polynomial` as an arithmetic term of the query language."""
    term: Term | None = None
    for monomial, coefficient in sorted(polynomial.coefficients.items()):
        factor: Term = num(coefficient)
        for name, exponent in monomial:
            if name not in variables:
                raise ValueError(f"no query variable supplied for {name!r}")
            for _ in range(exponent):
                factor = factor * variables[name]
        term = factor if term is None else term + factor
    return term if term is not None else num(0.0)


def diophantine_query(polynomial: Polynomial) -> tuple[Query, Database]:
    """Build the Proposition 4.1 query and database for ``polynomial``."""
    names = sorted(polynomial.variables())
    if not names:
        raise ValueError("the polynomial must mention at least one variable")
    schema = DatabaseSchema.of(
        RelationSchema.of("R", **{f"x{i}": "num" for i in range(len(names))}))
    database = Database(schema)
    database.add("R", tuple(NumNull(name) for name in names))

    query_variables = {name: num_var(name) for name in names}
    ordered = [query_variables[name] for name in names]
    p_term = polynomial_to_term(polynomial, query_variables)
    body = rel("R", *ordered) & (p_term * p_term > num(0.0))
    query = Query(head=(), body=exists(ordered, body), name="no_integer_root")
    return query, database


def has_integer_root_within(polynomial: Polynomial, bound: int) -> bool:
    """Brute-force search for an integer root with all coordinates in ``[-bound, bound]``.

    The existence of a root (anywhere) is undecidable in general; this bounded
    search is only meant to exercise the gadget on small instances.
    """
    if bound < 0:
        raise ValueError(f"bound must be non-negative, got {bound}")
    names: Sequence[str] = sorted(polynomial.variables())
    for values in itertools.product(range(-bound, bound + 1), repeat=len(names)):
        assignment = dict(zip(names, (float(value) for value in values)))
        if abs(polynomial.evaluate(assignment)) < 1e-9:
            return True
    return False
