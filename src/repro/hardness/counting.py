"""Counting reductions behind Proposition 6.2 and Theorem 6.3.

Both reductions encode a propositional formula ψ over variables
``x_1, ..., x_n`` into an incomplete database so that the measure of a
*fixed* query equals ``#ψ / 2^n`` (data complexity is what the lower bounds
are about, so the query must not depend on ψ).

The encoding uses one pair of numerical nulls ``(⊤_i, ⊤̄_i)`` per variable
and reads the Boolean value of ``x_i`` as the order of the pair:
``x_i = true`` iff ``⊤_i < ⊤̄_i``.  Under the measure, the two orders are
equally likely and independent across variables, so a uniformly random
valuation induces a uniformly random assignment.  A literal is represented
by a *token* tuple ``Lit(token, lo, hi)`` listing the pair in the order that
must hold for the literal to be true -- ``(⊤_i, ⊤̄_i)`` for a positive
literal and ``(⊤̄_i, ⊤_i)`` for a negative one -- so the fixed query only
ever has to check ``lo < hi``, an order comparison.

* For a DNF (Proposition 6.2) the fixed query is the conjunctive CQ(<) query
  "some term's three literal tokens all satisfy ``lo < hi``".
* For a CNF (Theorem 6.3) the fixed query is the FO(<) query "every clause
  has a literal token with ``lo < hi``".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.atoms import Comparison, Constraint
from repro.constraints.formula import Atom, ConstraintFormula, conjunction, disjunction
from repro.constraints.polynomials import Polynomial
from repro.constraints.translate import TranslationResult
from repro.hardness.booleans import Literal, PropositionalCNF, PropositionalDNF
from repro.logic.builder import base_var, exists, forall, implies, num_var, rel
from repro.logic.formulas import Query
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.values import NumNull


@dataclass(frozen=True)
class CountingReduction:
    """The output of a reduction: the fixed query, the database, and ``2^n``."""

    query: Query
    database: Database
    variables: tuple[str, ...]
    #: The Proposition 5.3 constraint formula of the Boolean query, built
    #: directly from the propositional formula.  The generic translator
    #: produces an equivalent formula but expands quantifiers over the whole
    #: active domain, which is exponential in the quantifier rank of the
    #: fixed query; for anything beyond one or two propositional variables
    #: use this field instead (the tests check the two agree on tiny inputs).
    formula: ConstraintFormula

    @property
    def denominator(self) -> int:
        return 2 ** len(self.variables)

    def translation(self) -> TranslationResult:
        """Package the direct constraint formula as a :class:`TranslationResult`."""
        nulls = self.database.num_nulls_ordered()
        all_variables = tuple(null.variable for null in nulls)
        occurring = self.formula.variables()
        return TranslationResult(
            formula=self.formula,
            all_variables=all_variables,
            relevant_variables=tuple(name for name in all_variables if name in occurring),
            null_by_variable={null.variable: null for null in nulls},
        )


def _literal_token(literal: Literal, index: int) -> str:
    polarity = "pos" if literal.positive else "neg"
    return f"{literal.variable}:{polarity}:{index}"


def _pair_nulls(variable: str) -> tuple[NumNull, NumNull]:
    return NumNull(f"{variable}.lo"), NumNull(f"{variable}.hi")


def _literal_tuple(literal: Literal, token: str) -> tuple:
    low, high = _pair_nulls(literal.variable)
    if literal.positive:
        return (token, low, high)
    return (token, high, low)


def _literal_constraint(literal: Literal) -> ConstraintFormula:
    """The constraint ``lo < hi`` of a literal, directly over the pair's variables."""
    low, high = _pair_nulls(literal.variable)
    if literal.positive:
        polynomial = Polynomial.variable(low.variable) - Polynomial.variable(high.variable)
    else:
        polynomial = Polynomial.variable(high.variable) - Polynomial.variable(low.variable)
    return Atom(Constraint(polynomial=polynomial, op=Comparison.LT))


def dnf_reduction(formula: PropositionalDNF) -> CountingReduction:
    """Proposition 6.2: a fixed CQ(<) query whose measure is ``#ψ / 2^n``.

    Terms of the DNF must have at most three literals (shorter terms are
    padded by repeating their last literal), matching the 3DNF form the
    hardness proof reduces from.
    """
    schema = DatabaseSchema.of(
        RelationSchema.of("Term", t="base", l1="base", l2="base", l3="base"),
        RelationSchema.of("Lit", tok="base", lo="num", hi="num"),
    )
    database = Database(schema)
    for term_index, term in enumerate(formula.terms):
        if len(term) > 3:
            raise ValueError("dnf_reduction expects terms of at most three literals (3DNF)")
        padded = list(term) + [term[-1]] * (3 - len(term))
        tokens = []
        for literal_index, literal in enumerate(padded):
            token = _literal_token(literal, literal_index)
            tokens.append(token)
            database.add("Lit", _literal_tuple(literal, token))
        database.add("Term", (f"t{term_index}", *tokens))

    term_id = base_var("t")
    token_vars = [base_var(f"l{i}") for i in (1, 2, 3)]
    low_vars = [num_var(f"a{i}") for i in (1, 2, 3)]
    high_vars = [num_var(f"b{i}") for i in (1, 2, 3)]
    body = rel("Term", term_id, *token_vars)
    for token, low, high in zip(token_vars, low_vars, high_vars):
        body = body & rel("Lit", token, low, high) & (low < high)
    query = Query(
        head=(),
        body=exists([term_id, *token_vars, *low_vars, *high_vars], body),
        name="dnf_satisfied",
    )
    direct = disjunction(
        conjunction(_literal_constraint(literal) for literal in term)
        for term in formula.terms
    )
    return CountingReduction(query=query, database=database,
                             variables=formula.variables(), formula=direct)


def cnf_reduction(formula: PropositionalCNF) -> CountingReduction:
    """Theorem 6.3: a fixed FO(<) query whose measure is ``#ψ / 2^n``."""
    schema = DatabaseSchema.of(
        RelationSchema.of("Clause", c="base"),
        RelationSchema.of("InClause", c="base", tok="base"),
        RelationSchema.of("Lit", tok="base", lo="num", hi="num"),
    )
    database = Database(schema)
    for clause_index, clause in enumerate(formula.clauses):
        clause_id = f"c{clause_index}"
        database.add("Clause", (clause_id,))
        for literal_index, literal in enumerate(clause):
            token = f"{clause_id}:{_literal_token(literal, literal_index)}"
            database.add("InClause", (clause_id, token))
            database.add("Lit", _literal_tuple(literal, token))

    clause_var = base_var("c")
    token_var = base_var("tok")
    low_var = num_var("lo")
    high_var = num_var("hi")
    clause_satisfied = exists(
        [token_var, low_var, high_var],
        rel("InClause", clause_var, token_var)
        & rel("Lit", token_var, low_var, high_var)
        & (low_var < high_var),
    )
    query = Query(
        head=(),
        body=forall([clause_var], implies(rel("Clause", clause_var), clause_satisfied)),
        name="cnf_satisfied",
    )
    direct = conjunction(
        disjunction(_literal_constraint(literal) for literal in clause)
        for clause in formula.clauses
    )
    return CountingReduction(query=query, database=database,
                             variables=formula.variables(), formula=direct)
