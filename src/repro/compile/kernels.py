"""Batched NumPy kernels for compiled constraint formulae.

A :class:`CompiledFormula` replays the flat artefacts of
:mod:`repro.compile.lower` over whole blocks of points:

* :meth:`CompiledFormula.evaluate_batch` decides ``formula(point)`` for every
  row of an ``(m, n)`` block with one (or, for polynomial atoms, a handful
  of) matrix products followed by the boolean program -- the batched
  counterpart of :meth:`ConstraintFormula.evaluate`;
* :meth:`CompiledFormula.asymptotic_truth_batch` decides the Lemma 8.4
  eventual truth value along every direction of an ``(m, n)`` block -- the
  batched counterpart of :func:`repro.constraints.asymptotic.asymptotic_truth`.

Both kernels reproduce the scalar tolerance conventions bit-for-bit at the
decision level: the same ``EVALUATION_EPS`` slack on comparisons, and the
same relative ``RELATIVE_ZERO_EPS`` threshold on directional-profile
coefficients.  (Floating-point *sums* may associate differently than the
scalar dict-order accumulation, so raw polynomial values can differ by ulps;
decisions on generic points are unaffected, which the seeded equivalence
tests assert on randomized formulas.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.caching import CacheStats, LruCache
from repro.compile.lower import (
    OP_AND,
    OP_NOT,
    OP_OR,
    PUSH_ATOM,
    PUSH_FALSE,
    PUSH_TRUE,
    AtomTable,
    Instruction,
    LoweringError,
    lower,
)
from repro.constraints.asymptotic import RELATIVE_ZERO_EPS
from repro.constraints.atoms import EVALUATION_EPS, Comparison
from repro.constraints.formula import ConstraintFormula

#: Default number of points decided per kernel invocation by the blocked
#: helpers; bounds the size of the intermediate ``(m, M)`` monomial matrix.
DEFAULT_BLOCK_SIZE = 65_536

#: Atoms whose asymptotic truth is *true* when the directional polynomial is
#: identically zero (Lemma 8.4, the ``identically_zero`` branch of
#: :meth:`Comparison.holds_for_sign`).
_ZERO_TRUE_OPS = (Comparison.LE, Comparison.EQ, Comparison.GE)


@dataclass(frozen=True)
class CompiledFormula:
    """A constraint formula lowered to batched NumPy kernels.

    Instances are produced by :func:`compile_formula`; the attributes are the
    lowering artefacts plus precomputed selector matrices.
    """

    table: AtomTable
    program: tuple[Instruction, ...]
    #: ``(M, A)`` selector: column ``a`` holds the coefficients of atom
    #: ``a``'s monomials, so ``term_values @ value_selector`` sums monomial
    #: values into per-atom polynomial values.
    value_selector: np.ndarray
    #: ``(M, A * (D + 1))`` selector: column ``a * (D + 1) + d`` holds the
    #: coefficients of atom ``a``'s degree-``d`` monomials, so one matrix
    #: product yields every directional profile of Lemma 8.4 at once.
    profile_selector: np.ndarray
    #: Per-atom asymptotic decision codes: -1 needs a negative leading sign,
    #: +1 a positive one, 0 is never true (EQ), 2 is always true (NE).
    sign_codes: np.ndarray
    #: Per-atom truth value when the directional polynomial vanishes.
    zero_truth: np.ndarray
    #: Per-variable multiplication plan for :meth:`_term_values`: tuples of
    #: ``(column, degree-one monomial indices, higher-power indices, powers)``
    #: for every variable that occurs in some monomial.
    term_plan: tuple[tuple[int, np.ndarray, np.ndarray, np.ndarray], ...]
    #: Peephole-fused program for the common flat shapes: ``("and", cols)`` /
    #: ``("or", cols)`` for one connective over plain atoms, ``("atom",
    #: cols)`` for a single atom; ``None`` runs the general stack machine.
    fused_program: tuple[str, np.ndarray] | None

    # -- public API --------------------------------------------------------

    @property
    def variables(self) -> tuple[str, ...]:
        return self.table.variables

    @property
    def dimension(self) -> int:
        return len(self.table.variables)

    def evaluate_batch(self, points: np.ndarray,
                       tolerance: float = EVALUATION_EPS) -> np.ndarray:
        """Truth value of the formula at every row of ``points``.

        ``points`` has shape ``(m, n)`` with one column per compiled
        variable; the result is an ``(m,)`` boolean array.
        """
        points = self._check_points(points)
        values = self._atom_values(points)
        truths = self._apply_comparisons(values, tolerance)
        return self._run_program(truths, points.shape[0])

    def asymptotic_truth_batch(self, directions: np.ndarray) -> np.ndarray:
        """Eventual truth along every direction row of ``directions`` (Lemma 8.4)."""
        directions = self._check_points(directions)
        count = directions.shape[0]
        num_atoms = self.table.num_atoms
        if num_atoms == 0:
            return self._run_program(np.zeros((count, 0), dtype=bool), count)
        width = self.table.max_degree + 1
        if self.table.is_linear and width == 2:
            # Linear fast path: the degree-1 profile coefficient of atom
            # ``a`` along direction ``d`` is the dot product ``d . w_a``, so
            # every profile comes out of one (m, n) @ (n, A) matmul and the
            # leading-sign search collapses to a two-way select.
            degree_one = directions @ self.table.linear_matrix
            degree_zero = self.table.linear_constant
            magnitude_one = np.abs(degree_one)
            scale = np.maximum(magnitude_one, np.abs(degree_zero)[None, :])
            threshold = scale * RELATIVE_ZERO_EPS
            significant_one = magnitude_one > threshold
            significant_zero = np.abs(degree_zero)[None, :] > threshold
            identically_zero = ~significant_one & ~significant_zero
            positive = np.where(significant_one, degree_one > 0.0,
                                degree_zero[None, :] > 0.0)
        else:
            term_values = self._term_values(directions)
            profiles = (term_values @ self.profile_selector).reshape(
                count, num_atoms, width)
            magnitudes = np.abs(profiles)
            scale = magnitudes.max(axis=2)
            significant = magnitudes > (scale * RELATIVE_ZERO_EPS)[:, :, None]
            identically_zero = ~significant.any(axis=2)
            # Highest significant degree per (point, atom); rows that are
            # identically zero get an arbitrary index and are overridden below.
            leading = (width - 1) - np.argmax(significant[:, :, ::-1], axis=2)
            leading_values = np.take_along_axis(profiles, leading[:, :, None],
                                                axis=2)[:, :, 0]
            positive = leading_values > 0.0

        codes = self.sign_codes[None, :]
        truths = ((codes == -1) & ~positive) | ((codes == 1) & positive) | (codes == 2)
        truths = np.where(identically_zero, self.zero_truth[None, :], truths)
        return self._run_program(truths, count)

    def atom_values(self, points: np.ndarray) -> np.ndarray:
        """Polynomial values of every distinct atom at every point, ``(m, A)``."""
        return self._atom_values(self._check_points(points))

    # -- internals ---------------------------------------------------------

    def _check_points(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != self.dimension:
            raise ValueError(
                f"points must have shape (m, {self.dimension}), got {points.shape}")
        return points

    def _term_values(self, points: np.ndarray) -> np.ndarray:
        """Value of every monomial at every point, ``(m, M)``."""
        count = points.shape[0]
        values = np.ones((count, self.table.num_monomials))
        for j, linear_index, power_index, powers in self.term_plan:
            column = points[:, j]
            if linear_index.size:
                values[:, linear_index] *= column[:, None]
            if power_index.size:
                values[:, power_index] *= column[:, None] ** powers[None, :]
        return values

    def _atom_values(self, points: np.ndarray) -> np.ndarray:
        table = self.table
        if table.is_linear:
            return points @ table.linear_matrix + table.linear_constant
        return self._term_values(points) @ self.value_selector

    def _apply_comparisons(self, values: np.ndarray, tolerance: float) -> np.ndarray:
        truths = np.empty(values.shape, dtype=bool)
        for index, op in enumerate(self.table.ops):
            column = values[:, index]
            if op is Comparison.LT:
                truths[:, index] = column < -tolerance
            elif op is Comparison.LE:
                truths[:, index] = column <= tolerance
            elif op is Comparison.EQ:
                truths[:, index] = np.abs(column) <= tolerance
            elif op is Comparison.NE:
                truths[:, index] = np.abs(column) > tolerance
            elif op is Comparison.GE:
                truths[:, index] = column >= -tolerance
            else:  # GT
                truths[:, index] = column > tolerance
        return truths

    def _run_program(self, atom_truths: np.ndarray, count: int) -> np.ndarray:
        if self.fused_program is not None:
            kind, columns = self.fused_program
            if kind == "atom":
                return atom_truths[:, columns[0]]
            if kind == "and":
                return atom_truths[:, columns].all(axis=1)
            return atom_truths[:, columns].any(axis=1)
        stack: list[np.ndarray] = []
        for opcode, operand in self.program:
            if opcode == PUSH_ATOM:
                stack.append(atom_truths[:, operand])
            elif opcode == PUSH_TRUE:
                stack.append(np.ones(count, dtype=bool))
            elif opcode == PUSH_FALSE:
                stack.append(np.zeros(count, dtype=bool))
            elif opcode == OP_NOT:
                stack.append(~stack.pop())
            elif opcode == OP_AND:
                if operand == 0:
                    stack.append(np.ones(count, dtype=bool))
                else:
                    reduced = np.logical_and.reduce(stack[-operand:])
                    del stack[-operand:]
                    stack.append(reduced)
            elif opcode == OP_OR:
                if operand == 0:
                    stack.append(np.zeros(count, dtype=bool))
                else:
                    reduced = np.logical_or.reduce(stack[-operand:])
                    del stack[-operand:]
                    stack.append(reduced)
            else:  # pragma: no cover - the lowering only emits the above
                raise ValueError(f"unknown opcode {opcode}")
        if len(stack) != 1:  # pragma: no cover - structural invariant
            raise RuntimeError(f"boolean program left {len(stack)} values on the stack")
        return stack[0]


def _sign_code(op: Comparison) -> int:
    if op in (Comparison.LT, Comparison.LE):
        return -1
    if op in (Comparison.GT, Comparison.GE):
        return 1
    if op is Comparison.EQ:
        return 0
    return 2  # NE: eventually non-zero, hence eventually true.


def _fuse_program(program: tuple[Instruction, ...]) -> tuple[str, np.ndarray] | None:
    """Recognise a single connective over plain atoms (the dominant shape).

    DNF-ish translations overwhelmingly produce ``And(atoms)`` / ``Or(atoms)``
    or a bare atom; deciding those directly as ``all``/``any`` over a column
    slice skips the stack machine entirely.
    """
    if len(program) == 1 and program[0][0] == PUSH_ATOM:
        return ("atom", np.asarray([program[0][1]], dtype=np.intp))
    if len(program) < 2:
        return None
    *pushes, last = program
    if last[0] not in (OP_AND, OP_OR) or last[1] != len(pushes) or not pushes:
        return None
    if any(opcode != PUSH_ATOM for opcode, _ in pushes):
        return None
    columns = np.asarray([operand for _, operand in pushes], dtype=np.intp)
    return ("and" if last[0] == OP_AND else "or", columns)


def _build_compiled(table: AtomTable, program: tuple[Instruction, ...]) -> CompiledFormula:
    num_atoms = table.num_atoms
    num_monomials = table.num_monomials
    value_selector = np.zeros((num_monomials, num_atoms))
    if num_monomials:
        value_selector[np.arange(num_monomials), table.atom_index] = table.coefficients

    width = table.max_degree + 1
    profile_selector = np.zeros((num_monomials, num_atoms * width))
    if num_monomials:
        columns = table.atom_index * width + table.degrees
        profile_selector[np.arange(num_monomials), columns] = table.coefficients

    sign_codes = np.asarray([_sign_code(op) for op in table.ops], dtype=np.int64)
    zero_truth = np.asarray([op in _ZERO_TRUE_OPS for op in table.ops], dtype=bool)

    term_plan: list[tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []
    for j in range(len(table.variables)):
        column_exponents = table.exponents[:, j]
        linear_index = np.flatnonzero(column_exponents == 1)
        power_index = np.flatnonzero(column_exponents > 1)
        if linear_index.size or power_index.size:
            term_plan.append((j, linear_index, power_index,
                              column_exponents[power_index].astype(float)))

    return CompiledFormula(
        table=table,
        program=program,
        value_selector=value_selector,
        profile_selector=profile_selector,
        sign_codes=sign_codes,
        zero_truth=zero_truth,
        term_plan=tuple(term_plan),
        fused_program=_fuse_program(program),
    )


#: Default capacity of the compilation memo.  Bounded (unlike a plain
#: ``functools.lru_cache`` left at its default in a long-lived server, whose
#: CompiledFormula values -- dense selector matrices -- would accumulate):
#: the annotation service keeps one entry per distinct canonical lineage in
#: flight, and a many-lineage request can carry several hundred distinct
#: skeletons at once -- a capacity below the working set makes the LRU
#: cycle, so every round of every request recompiles everything.
DEFAULT_COMPILE_CACHE_SIZE = 2048

_COMPILE_CACHE = LruCache(DEFAULT_COMPILE_CACHE_SIZE, name="compiled kernels")


def _canonical_key(formula: ConstraintFormula, variables: tuple[str, ...]):
    """The memo key: the canonical lineage digest where one exists.

    Keying by the null-renaming-invariant digest (instead of formula
    identity) lets renamed variants of one skeleton share a single compiled
    artefact: the canonical rename is positional and order-preserving, so
    the artefact's point columns mean the same thing for every variant.
    The import is deferred -- :mod:`repro.service.canonical` sits above this
    package, and by the first compile both packages are fully initialised.
    """
    from repro.service.canonical import CanonicalisationError, canonicalise
    try:
        canonical = canonicalise(formula, variables)
    except CanonicalisationError:
        # Formulas the canonicaliser does not cover (unknown variables or
        # node kinds) keep the identity key; ``lower`` raises its usual
        # error for the truly malformed ones.
        return (formula, variables), formula, variables
    return canonical.digest, canonical.formula, canonical.variables


def compile_formula(formula: ConstraintFormula,
                    variables: Sequence[str],
                    *, digest: Optional[bytes] = None) -> CompiledFormula:
    """Compile ``formula`` over the ordered ``variables`` tuple.

    Compilation is memoised on the *canonical lineage digest* of
    ``(formula, variables)``, so null-renamed variants of one skeleton --
    every tuple of a generated table carrying its own private nulls through
    the same arithmetic -- share one compiled artefact.  The returned kernel
    is compiled over the canonical positional names; since the rename is
    order-preserving, point columns keep their meaning for every variant.
    The memo is a bounded LRU with hit/miss counters; see
    :func:`compile_cache_stats` and :func:`configure_compile_cache`.

    Callers that already hold the canonical digest of ``(formula,
    variables)`` -- the service's schedule groups and fused tasks carry it
    -- may pass it as ``digest``: a memo hit then costs one dict lookup
    instead of a full re-canonicalisation of the lineage.
    """
    variables = tuple(variables)
    if len(set(variables)) != len(variables):
        raise LoweringError(f"duplicate variables in ambient tuple: {variables}")
    if digest is not None:
        def build_from_digest() -> CompiledFormula:
            _, build_formula, build_variables = _canonical_key(formula, variables)
            table, program = lower(build_formula, build_variables)
            return _build_compiled(table, program)

        return _COMPILE_CACHE.get_or_compute(digest, build_from_digest)
    key, build_formula, build_variables = _canonical_key(formula, variables)

    def build() -> CompiledFormula:
        table, program = lower(build_formula, build_variables)
        return _build_compiled(table, program)

    return _COMPILE_CACHE.get_or_compute(key, build)


def compile_cache_stats() -> CacheStats:
    """Hit/miss/eviction counters of the compilation memo (service stats)."""
    return _COMPILE_CACHE.stats()


def configure_compile_cache(capacity: int | None = None,
                            clear: bool = False) -> None:
    """Resize (and optionally flush) the compilation memo.

    Long-lived services with huge distinct-formula churn can lower the
    capacity to bound memory; benchmarks flush it (``clear=True`` with no
    capacity, which leaves the configured capacity untouched) to measure
    cold paths.
    """
    if capacity is not None:
        _COMPILE_CACHE.resize(capacity)
    if clear:
        _COMPILE_CACHE.clear(reset_counters=True)
